//! The abstract's headline claims, asserted end-to-end:
//!
//! "KubeShare can significantly increase GPU utilization and overall
//! system throughput around 2x with less than 10% performance overhead
//! during container initialization and execution."

use kubeshare_repro::bench::fig10;
use kubeshare_repro::bench::fig7;
use kubeshare_repro::bench::fig8::{self, Fig8Config};

/// "...overall system throughput around 2x..."
#[test]
fn throughput_claim_around_2x() {
    let cfg = Fig8Config {
        jobs: 150,
        runs: 1,
        ..Fig8Config::default()
    };
    let heavy = fig8::sweep_frequency(&cfg, &[9.0]).remove(0);
    assert!(
        heavy.speedup() >= 1.8,
        "headline speedup under heavy load: {:.2}x ({:.1} vs {:.1} jobs/min)",
        heavy.speedup(),
        heavy.kubeshare,
        heavy.kubernetes
    );
}

/// "...less than 10% performance overhead during execution" — the device
/// library costs under 5% even at the tightest quota the paper tests.
#[test]
fn execution_overhead_claim_under_10_percent() {
    for p in fig7::run(&[30, 100], 42) {
        assert!(
            p.normalized_throughput > 0.90,
            "quota {} ms: normalized throughput {}",
            p.quota_ms,
            p.normalized_throughput
        );
    }
}

/// "...less than 10% performance overhead during container initialization"
/// — strictly, the paper measures ≈15% without vGPU creation and argues it
/// is negligible for long jobs; we assert the same ≈15% band and that the
/// absolute cost is a fraction of a second.
#[test]
fn initialization_overhead_claim() {
    let p = fig10::run(&[1]).remove(0);
    let relative = p.kubeshare_reuse / p.kubernetes - 1.0;
    assert!(
        (0.10..0.20).contains(&relative),
        "initialization overhead {relative:.3} outside the paper's ≈15% band"
    );
    assert!(
        p.kubeshare_reuse - p.kubernetes < 0.5,
        "absolute overhead must be sub-second: {}s",
        p.kubeshare_reuse - p.kubernetes
    );
}
