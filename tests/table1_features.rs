//! Table 1, executed: each capability row of the paper's comparison is
//! probed against the actual implementations, not just asserted as
//! metadata.

use kubeshare_repro::baselines::extender::{aliyun, deepomatic, gaiagpu, ExtenderSystem};
use kubeshare_repro::baselines::ExtenderError;
use kubeshare_repro::cluster::api::NodeConfig;
use kubeshare_repro::gpu::device::{GpuDevice, GpuSpec};
use kubeshare_repro::gpu::types::CudaError;
use kubeshare_repro::sim_core::prelude::*;
use kubeshare_repro::vgpu::{IsolationMode, ShareSpec, SharedGpu, VgpuConfig, VgpuEvent};

fn single_gpu_nodes(n: usize) -> Vec<NodeConfig> {
    (0..n)
        .map(|i| NodeConfig {
            name: format!("node-{i}"),
            cpu_millis: 8_000,
            memory_bytes: 32 << 30,
            gpus: 1,
            gpu_memory_bytes: 16 << 30,
        })
        .collect()
}

/// Row "Multi-GPUs per node": Deepomatic can't, the others can.
#[test]
fn multi_gpu_node_support() {
    let multi = vec![NodeConfig::p3_8xlarge("node-0")];
    assert!(matches!(
        ExtenderSystem::new(deepomatic(), multi.clone()),
        Err(ExtenderError::MultiGpuUnsupported { .. })
    ));
    assert!(ExtenderSystem::new(aliyun(), multi.clone()).is_ok());
    assert!(ExtenderSystem::new(gaiagpu(), multi).is_ok());
}

/// Row "Fine-grained allocation": extenders round to scaling-factor units;
/// KubeShare reserves the exact fraction.
#[test]
fn fine_grained_allocation_granularity() {
    let deep = ExtenderSystem::new(deepomatic(), single_gpu_nodes(1)).unwrap();
    // 23% demand costs 30% of the GPU under a scaling factor of 10.
    assert!((deep.effective_fraction(0.23) - 0.30).abs() < 1e-12);

    // KubeShare's pool accounts the raw fraction.
    let mut pool = kubeshare_repro::kubeshare::pool::VgpuPool::new();
    let id = pool.fresh_id();
    pool.insert_creating(id.clone());
    pool.mark_ready(&id, "n".into(), "GPU-x".into());
    pool.attach(
        &id,
        kubeshare_repro::cluster::Uid(1),
        0.23,
        0.23,
        None,
        None,
        None,
    );
    assert!((pool.get(&id).unwrap().util_free - 0.77).abs() < 1e-12);
}

/// Row "Memory isolation": with the guard the offender gets the OOM; without
/// it, an innocent co-tenant crashes when the device runs out.
#[test]
fn memory_isolation_probe() {
    // Aliyun-style (memory-only isolation): the over-allocator is stopped
    // at its own quota.
    let dev = GpuDevice::new("n", 0, GpuSpec::test_gpu(1000));
    let mut guarded = SharedGpu::new(dev, VgpuConfig::default(), IsolationMode::MEMORY_ONLY);
    let hog = guarded.attach(ShareSpec::new(0.5, 0.5, 0.5).unwrap());
    let victim = guarded.attach(ShareSpec::new(0.5, 0.5, 0.5).unwrap());
    assert!(matches!(
        guarded.mem_alloc(hog, 700),
        Err(CudaError::OutOfMemory { .. })
    ));
    guarded.mem_alloc(hog, 500).unwrap();
    guarded.mem_alloc(victim, 500).unwrap(); // victim unharmed

    // Deepomatic-style (no isolation): the hog succeeds and the victim
    // crashes with a device-level OOM — the §4.5 failure mode.
    let dev = GpuDevice::new("n", 1, GpuSpec::test_gpu(1000));
    let mut bare = SharedGpu::new(dev, VgpuConfig::default(), IsolationMode::NONE);
    let hog = bare.attach(ShareSpec::new(0.5, 0.5, 0.5).unwrap());
    let victim = bare.attach(ShareSpec::new(0.5, 0.5, 0.5).unwrap());
    bare.mem_alloc(hog, 900).unwrap(); // over its share, nothing stops it
    assert!(matches!(
        bare.mem_alloc(victim, 400),
        Err(CudaError::OutOfMemory { .. })
    ));
}

/// Row "Computation isolation": a greedy co-tenant is throttled to its
/// gpu_limit under the token, and unconstrained without it.
#[test]
fn compute_isolation_probe() {
    struct W {
        gpu: SharedGpu,
        done: Vec<(kubeshare_repro::vgpu::ClientId, SimTime)>,
        remaining: std::collections::HashMap<kubeshare_repro::vgpu::ClientId, u32>,
    }
    struct Ev(VgpuEvent);
    impl SimEvent<W> for Ev {
        fn fire(self, now: SimTime, w: &mut W, q: &mut EventQueue<Self>) {
            let mut out = Vec::new();
            let mut notes = Vec::new();
            w.gpu.handle(now, self.0, &mut out, &mut notes);
            for n in notes {
                let kubeshare_repro::vgpu::VgpuNotice::BurstDone { client, .. } = n;
                let left = w.remaining.get_mut(&client).unwrap();
                if *left > 0 {
                    *left -= 1;
                    w.gpu
                        .submit_burst(now, client, SimDuration::from_millis(10), 0, &mut out);
                } else {
                    w.done.push((client, now));
                }
            }
            for (at, e) in out {
                q.schedule_at(at, Ev(e));
            }
        }
    }

    let run = |mode: IsolationMode| {
        let dev = GpuDevice::new("n", 0, GpuSpec::test_gpu(1 << 30));
        let mut gpu = SharedGpu::new(dev, VgpuConfig::default(), mode);
        // Greedy tenant limited to 30%; quiet tenant with plenty of room.
        let greedy = gpu.attach(ShareSpec::new(0.2, 0.3, 0.4).unwrap());
        let quiet = gpu.attach(ShareSpec::new(0.2, 1.0, 0.4).unwrap());
        let mut eng = Engine::new(W {
            gpu,
            done: Vec::new(),
            remaining: [(greedy, 400u32), (quiet, 100u32)].into_iter().collect(),
        });
        let mut out = Vec::new();
        eng.world.gpu.submit_burst(
            SimTime::ZERO,
            greedy,
            SimDuration::from_millis(10),
            0,
            &mut out,
        );
        eng.world.gpu.submit_burst(
            SimTime::ZERO,
            quiet,
            SimDuration::from_millis(10),
            0,
            &mut out,
        );
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(10_000_000);
        let greedy_end = eng.world.done.iter().find(|(c, _)| *c == greedy).unwrap().1;
        greedy_end.as_secs_f64()
    };

    // 4s of greedy work at a 0.3 cap needs ≥ 13.3s with the token…
    let with_token = run(IsolationMode::FULL);
    assert!(with_token > 12.0, "token must throttle: {with_token}");
    // …and finishes in ~5s (sharing the FIFO with the quiet job) without.
    let without = run(IsolationMode::NONE);
    assert!(without < 6.0, "no isolation → no throttle: {without}");
}

/// Rows "First class with GPU identity" + "Locality constraint": only the
/// KubeShare API exposes them, and they actually separate workloads.
#[test]
fn locality_constraints_probe() {
    use kubeshare_repro::cluster::api::Uid;
    use kubeshare_repro::kubeshare::algorithm::{schedule, Decision, SchedRequest};
    use kubeshare_repro::kubeshare::locality::Locality;
    use kubeshare_repro::kubeshare::pool::VgpuPool;

    let mut pool = VgpuPool::new();
    for i in 0..2 {
        let id = pool.fresh_id();
        pool.insert_creating(id.clone());
        pool.mark_ready(&id, "n".into(), format!("GPU-{i}"));
    }
    // First noisy job lands somewhere; second must land elsewhere.
    let req = |loc: Locality| SchedRequest {
        util: 0.4,
        mem: 0.4,
        locality: loc,
    };
    let d1 = schedule(
        &req(Locality::none().with_anti_affinity("noisy")),
        &mut pool,
    );
    let Decision::Assign(g1) = d1 else {
        panic!("{d1:?}")
    };
    pool.attach(&g1, Uid(1), 0.4, 0.4, None, Some("noisy"), None);
    let d2 = schedule(
        &req(Locality::none().with_anti_affinity("noisy")),
        &mut pool,
    );
    let Decision::Assign(g2) = d2 else {
        panic!("{d2:?}")
    };
    assert_ne!(g1, g2);

    // The extender systems have no field to express this at all:
    // `ExtenderSystem::submit_shared_job` takes only a ShareSpec.
    // (Compile-time absence; nothing to probe at runtime.)
}
