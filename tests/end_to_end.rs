//! Cross-crate integration: the full KubeShare stack from SharePodSpec to
//! kernels on a simulated device, and co-existence with native pods.

use kubeshare_repro::bench::harness::cluster_config;
use kubeshare_repro::bench::harness::jobs::JobSpec;
use kubeshare_repro::bench::harness::ks_world::KsHarness;
use kubeshare_repro::cluster::api::{PodSpec, ResourceList, NVIDIA_GPU};
use kubeshare_repro::kubeshare::locality::Locality;
use kubeshare_repro::kubeshare::sharepod::SharePodPhase;
use kubeshare_repro::kubeshare::system::KsConfig;
use kubeshare_repro::sim_core::prelude::*;
use kubeshare_repro::vgpu::{ShareSpec, VgpuConfig};
use kubeshare_repro::workloads::job::JobKind;

fn train(name: &str, arrival_s: u64, request: f64, steps: u32) -> JobSpec {
    JobSpec {
        name: name.into(),
        kind: JobKind::Training {
            steps,
            kernel: SimDuration::from_millis(20),
            duty: 1.0,
        },
        share: ShareSpec::new(request, 1.0, 0.3).unwrap(),
        locality: Locality::none(),
        arrival: SimTime::from_secs(arrival_s),
    }
}

#[test]
fn sharepod_lifecycle_and_environment() {
    let mut h = KsHarness::new(
        cluster_config(1, 1),
        KsConfig::default(),
        VgpuConfig::default(),
    );
    h.add_job(train("t", 0, 0.5, 50), SimRng::seed_from_u64(1));
    assert_eq!(h.run(1_000_000), RunOutcome::Drained);

    let world = &h.eng.world;
    let job = &world.jobs[0];
    assert!(job.finished.is_some());

    // The sharePod went through the whole lifecycle and its backing pod
    // carries the device environment DevMgr injected.
    let sp_uid = world
        .ks
        .sharepods()
        .iter()
        .map(|(u, _)| u)
        .next()
        .expect("one sharePod");
    let sp = world.ks.sharepod(sp_uid).unwrap();
    assert_eq!(sp.status.phase, SharePodPhase::Terminated);
    let pod_uid = sp.status.pod_uid.expect("backing pod");
    let pod = world.ks.cluster.pod(pod_uid).expect("pod object retained");
    let env = &pod.status.injected_env;
    // DevMgr set the physical UUID explicitly — not the device plugin.
    assert!(env["NVIDIA_VISIBLE_DEVICES"].starts_with("GPU-"));
    assert!(env.contains_key("KUBESHARE_GPUID"));
    assert_eq!(env["KUBESHARE_GPU_REQUEST"], "0.5");
    assert!(env["LD_PRELOAD"].contains("libgemhook"));
    // The backing pod itself requested zero GPUs (the anchor holds it).
    assert_eq!(pod.spec.requests.extended_count(NVIDIA_GPU), 0);
}

#[test]
fn three_tenants_meet_their_requests_on_one_gpu() {
    let mut h = KsHarness::new(
        cluster_config(1, 1),
        KsConfig::default(),
        VgpuConfig::default(),
    );
    // Requests sum to 1.0; all three run long enough to overlap fully.
    h.add_job(train("a", 0, 0.3, 800), SimRng::seed_from_u64(1));
    h.add_job(train("b", 0, 0.4, 800), SimRng::seed_from_u64(2));
    h.add_job(train("c", 0, 0.3, 800), SimRng::seed_from_u64(3));
    assert_eq!(h.run(50_000_000), RunOutcome::Drained);
    // Everyone bound to the same device and completed.
    let gpus: Vec<String> = h
        .eng
        .world
        .jobs
        .iter()
        .map(|j| j.binding.as_ref().unwrap().0.clone())
        .collect();
    assert!(gpus.windows(2).all(|w| w[0] == w[1]));
    // Total work = 3 × 16 s = 48 s on one GPU; makespan ≈ work + overheads.
    let makespan = h.summary().makespan.unwrap().as_secs_f64();
    assert!(
        (48.0..60.0).contains(&makespan),
        "work-conserving sharing: {makespan}"
    );
}

#[test]
fn coexistence_native_pods_and_sharepods() {
    let mut h = KsHarness::new(
        cluster_config(1, 2),
        KsConfig::default(),
        VgpuConfig::default(),
    );
    // A native pod takes one GPU the classic way…
    let now = h.eng.now();
    let mut out = Vec::new();
    let native = h.eng.world.ks.submit_native_pod(
        now,
        "legacy",
        PodSpec::new(
            "cuda:11",
            ResourceList::cpu_mem(1000, 1 << 30).with_extended(NVIDIA_GPU, 1),
        ),
        &mut out,
    );
    for (at, ev) in out {
        h.eng.queue.schedule_at(
            at,
            kubeshare_repro::bench::harness::ks_world::KsWorldEvent::Ks(ev),
        );
    }
    // …and two sharePods share the other.
    h.add_job(train("s1", 0, 0.5, 50), SimRng::seed_from_u64(1));
    h.add_job(train("s2", 0, 0.5, 50), SimRng::seed_from_u64(2));
    h.run(10_000_000);

    let native_pod = h.eng.world.ks.cluster.pod(native).unwrap();
    assert_eq!(
        native_pod.status.phase,
        kubeshare_repro::cluster::PodPhase::Running
    );
    let native_gpu = native_pod.visible_devices().unwrap().to_string();
    for j in &h.eng.world.jobs {
        assert!(j.finished.is_some());
        assert_ne!(
            j.binding.as_ref().unwrap().0,
            native_gpu,
            "sharePods must not touch the natively allocated GPU"
        );
    }
}

#[test]
fn queueing_under_scarcity_preserves_all_work() {
    // 8 whole-GPU-equivalent sharePods on a 2-GPU cluster: they must all
    // finish eventually via the unschedulable-retry path.
    let mut h = KsHarness::new(
        cluster_config(1, 2),
        KsConfig::default(),
        VgpuConfig::default(),
    );
    for i in 0..8 {
        h.add_job(
            train(&format!("q{i}"), 0, 0.8, 100),
            SimRng::seed_from_u64(i),
        );
    }
    assert_eq!(h.run(100_000_000), RunOutcome::Drained);
    let s = h.summary();
    assert_eq!(s.completed, 8);
    // 0.8+0.8 > 1.0 → one job per GPU at a time → 4 sequential waves.
    let makespan = s.makespan.unwrap().as_secs_f64();
    assert!(makespan > 4.0 * 2.0, "serialized waves: {makespan}");
}

#[test]
fn deterministic_replay() {
    let run_once = || {
        let mut h = KsHarness::new(
            cluster_config(2, 2),
            KsConfig::default(),
            VgpuConfig::default(),
        );
        for i in 0..6 {
            h.add_job(
                train(&format!("j{i}"), i, 0.4, 120),
                SimRng::seed_from_u64(100 + i),
            );
        }
        h.run(50_000_000);
        h.eng
            .world
            .jobs
            .iter()
            .map(|j| (j.started.unwrap(), j.finished.unwrap()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run_once(), run_once(), "same seeds → identical trace");
}
