//! The realtime (OS-thread) token backend under genuine concurrency.

use std::thread;
use std::time::{Duration, Instant};

use kubeshare_repro::vgpu::realtime::{RtBackend, RtConfig};
use kubeshare_repro::vgpu::ShareSpec;

#[test]
fn token_is_mutually_exclusive_across_threads() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    let backend = RtBackend::new(RtConfig {
        quota: Duration::from_millis(10),
        window: Duration::from_millis(500),
        memory_bytes: 16 << 30,
    });
    let inside = Arc::new(AtomicU32::new(0));
    let violations = Arc::new(AtomicU32::new(0));
    let stop_at = Instant::now() + Duration::from_millis(300);

    let mut handles = Vec::new();
    for _ in 0..4 {
        let fe = backend.register(ShareSpec::new(0.25, 1.0, 0.25).unwrap());
        let inside = Arc::clone(&inside);
        let violations = Arc::clone(&violations);
        handles.push(thread::spawn(move || {
            while Instant::now() < stop_at {
                let lease = fe.acquire();
                if inside.fetch_add(1, Ordering::SeqCst) != 0 {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                // Hold "the GPU" briefly while the lease is valid.
                let t0 = Instant::now();
                while !lease.expired() && t0.elapsed() < Duration::from_millis(3) {
                    std::hint::spin_loop();
                }
                inside.fetch_sub(1, Ordering::SeqCst);
                drop(lease);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "two threads held a valid, unexpired token at once"
    );
    assert!(backend.grant_count() > 10, "the token circulated");
}

#[test]
fn shares_track_limits_under_contention() {
    let backend = RtBackend::new(RtConfig {
        quota: Duration::from_millis(8),
        window: Duration::from_millis(400),
        memory_bytes: 16 << 30,
    });
    let stop_at = Instant::now() + Duration::from_millis(600);
    let specs = [(0.4, 0.5), (0.2, 0.25)];
    let mut handles = Vec::new();
    for &(req, lim) in &specs {
        let fe = backend.register(ShareSpec::new(req, lim, 0.5).unwrap());
        handles.push(thread::spawn(move || {
            let mut held = Duration::ZERO;
            while Instant::now() < stop_at {
                let lease = fe.acquire();
                let t0 = Instant::now();
                while !lease.expired() && Instant::now() < stop_at {
                    thread::sleep(Duration::from_millis(1));
                }
                held += t0.elapsed();
            }
            held.as_secs_f64()
        }));
    }
    let held: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let total: f64 = held.iter().sum();
    assert!(total > 0.2, "threads made progress: {held:?}");
    // The 0.5-limit thread should hold roughly twice the 0.25-limit one.
    let ratio = held[0] / held[1];
    assert!(
        (1.2..4.0).contains(&ratio),
        "hold ratio {ratio} should reflect the 2:1 limits ({held:?})"
    );
}
