//! Paper §3.1 / Fig. 3: the fragmentation failure mode of device-blind
//! scheduling, demonstrated both analytically and through the actual
//! device-plugin machinery.

use kubeshare_repro::baselines::fragmentation::{
    fig3_demands, place_locality_aware, place_round_robin,
};
use kubeshare_repro::cluster::api::Uid;
use kubeshare_repro::cluster::device_plugin::{
    DeviceManager, FractionalGpuPlugin, UnitAssignPolicy,
};
use kubeshare_repro::gpu::GpuUuid;

#[test]
fn fig3_round_robin_spreads_while_aware_packs() {
    let (rr, aware) = (
        place_round_robin(&fig3_demands(), 4),
        place_locality_aware(&fig3_demands(), 4),
    );
    assert_eq!(rr.active_gpus(), 4, "round robin touches every GPU");
    assert_eq!(aware.active_gpus(), 2, "aware packs into exactly 2");
    assert_eq!(aware.overcommitted_gpus(), 0);
    // Same total load either way.
    let sum = |r: &kubeshare_repro::baselines::PlacementReport| -> f64 { r.gpu_load.iter().sum() };
    assert!((sum(&rr) - sum(&aware)).abs() < 1e-9);
}

/// The same effect through the real kubelet device-manager path: with the
/// scaling-factor plugin and round-robin unit assignment, two half-GPU
/// pods land on different devices even though they'd fit on one, and
/// heavier demand over-commits one device while another idles — all
/// invisible to the aggregate-counting scheduler.
#[test]
fn device_manager_exhibits_fragmentation() {
    let uuids: Vec<GpuUuid> = (0..2).map(|i| GpuUuid::derive("node", i)).collect();
    let plugin = FractionalGpuPlugin::new(uuids, 10, "frac/gpu");
    let mut mgr = DeviceManager::register(Box::new(plugin), UnitAssignPolicy::RoundRobin);

    // Two pods, each wanting 5/10 units (half a GPU).
    mgr.allocate(Uid(1), 5).unwrap();
    mgr.allocate(Uid(2), 5).unwrap();
    let by_dev = mgr.allocation_by_device();
    // Round-robin interleaves the units across both devices: each pod's
    // kernels will land on BOTH physical GPUs — worst-case interference —
    // even though a locality-aware binder would have used one GPU per pod
    // or packed both onto one.
    assert_eq!(by_dev.len(), 2);
    let loads: Vec<u64> = by_dev.values().copied().collect();
    assert_eq!(loads, vec![5, 5]);
    assert!(
        mgr.devices_of_pod(Uid(1)).len() > 1,
        "pod 1's units straddle devices: {:?}",
        mgr.devices_of_pod(Uid(1))
    );
}

/// Aggregate-count blindness: the free count says "5 units" but no single
/// device has 5 contiguous units — a pod that needs one GPU's worth of
/// locality can still be admitted and then splinters.
#[test]
fn aggregate_count_hides_per_device_shape() {
    let uuids: Vec<GpuUuid> = (0..2).map(|i| GpuUuid::derive("node", i)).collect();
    let plugin = FractionalGpuPlugin::new(uuids, 4, "frac/gpu");
    let mut mgr = DeviceManager::register(Box::new(plugin), UnitAssignPolicy::Sequential);
    // Consume 3 of 4 units on device 0 and 0 on device 1 via two pods.
    mgr.allocate(Uid(1), 3).unwrap();
    assert_eq!(mgr.free_count(), 5);
    // A "5-unit" request is admissible by count, but must straddle devices.
    mgr.allocate(Uid(2), 5).unwrap();
    assert_eq!(
        mgr.devices_of_pod(Uid(2)).len(),
        2,
        "no single device could hold it"
    );
}
