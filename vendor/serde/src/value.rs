//! The JSON-like value tree all (de)serialization goes through.

/// A dynamically typed serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Shared `Null` for lookups of missing keys.
pub const NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Map lookup by key; returns `Null` for non-maps or missing keys.
    pub fn field(&self, key: &str) -> &Value {
        match self {
            Value::Map(m) => m
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Numeric payload widened to f64, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Numeric payload as u64, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// Numeric payload as i64, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            Value::I64(x) => Some(x),
            Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(x as i64),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Field access on an object; yields `Null` for missing keys (matching
    /// `serde_json::Value` semantics).
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Element access on an array; yields `Null` out of bounds.
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
