//! Deserialization: conversion out of a [`Value`] tree.

use std::collections::{BTreeMap, HashMap};
use std::convert::TryFrom;
use std::fmt;

use crate::value::Value;

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Type-mismatch helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {what}, got {got:?}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(x).map_err(|_| Error::custom(format!("{x} out of range")))
            }
        }
    )*};
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(x).map_err(|_| Error::custom(format!("{x} out of range")))
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_de_tuple {
    ($n:expr; $($name:ident = $idx:expr),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if a.len() != $n {
                    return Err(Error::custom(format!("expected {}-tuple, got {} elements", $n, a.len())));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    };
}

impl_de_tuple!(1; A = 0);
impl_de_tuple!(2; A = 0, B = 1);
impl_de_tuple!(3; A = 0, B = 1, C = 2);
impl_de_tuple!(4; A = 0, B = 1, C = 2, D = 3);
