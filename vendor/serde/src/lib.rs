//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this crate models serialization
//! as conversion to and from a JSON-like [`Value`] tree: `Serialize`
//! produces a [`Value`], `Deserialize` consumes one. `serde_json` then
//! renders/parses that tree. The derive macros in `serde_derive` generate
//! the conversions for plain structs and enums (no attributes, no
//! generics), which is everything this workspace uses.

mod de;
mod ser;
pub mod value;

pub use de::{Deserialize, Error};
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;
