//! Serialization: conversion into a [`Value`] tree.

use std::collections::{BTreeMap, HashMap};

use crate::value::Value;

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Value::Array(vec![$($name.to_value()),+])
            }
        }
    };
}

impl_ser_tuple!(A);
impl_ser_tuple!(A, B);
impl_ser_tuple!(A, B, C);
impl_ser_tuple!(A, B, C, D);
