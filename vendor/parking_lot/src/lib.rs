//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `Mutex`/`Condvar` API surface this workspace
//! uses. Poisoned std locks are recovered transparently (parking_lot has no
//! poisoning), so a panicking holder does not cascade.

use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// RAII lock guard.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can temporarily take the std guard.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

/// RAII shared-read guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII exclusive-write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Blocks until notified or the deadline passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let dur = timeout.saturating_duration_since(Instant::now());
        let (g, res) = match self.inner.wait_timeout(g, dur) {
            Ok((g, res)) => (g, WaitTimeoutResult(res.timed_out())),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, WaitTimeoutResult(res.timed_out()))
            }
        };
        guard.guard = Some(g);
        res
    }

    /// Blocks until notified or the duration elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        self.wait_until(guard, Instant::now() + timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_until(&mut done, Instant::now() + Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*done);
    }
}
