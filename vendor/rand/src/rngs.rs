//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator: xoshiro256++ seeded via
/// SplitMix64 (the construction the real `rand::rngs::SmallRng` uses on
/// 64-bit platforms).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }
}
