//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace uses `rand` only through `SmallRng` plus the `Rng`,
//! `RngCore`, and `SeedableRng` traits; this crate provides exactly that
//! surface with a deterministic xoshiro256++ generator seeded via
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets, so seeded streams are stable and high quality.

pub mod rngs;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills the buffer with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny bias over a u64 stream is irrelevant for simulation.
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sample range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
