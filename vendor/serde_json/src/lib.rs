//! Offline stand-in for `serde_json`: renders and parses the serde
//! stand-in's [`Value`] tree as JSON text.

mod parse;

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn syntax(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Serializes a value into compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value into two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let tree = parse::Parser::new(input).parse_document()?;
    Ok(T::from_value(&tree)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Round-trippable shortest representation; keep a `.0` so the
        // value re-parses as a float.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json does.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: u64 = from_str("42").unwrap();
        assert_eq!(v, 42);
        let v: f64 = from_str("2.5").unwrap();
        assert!((v - 2.5).abs() < 1e-12);
        let v: String = from_str("\"hi\\nthere\"").unwrap();
        assert_eq!(v, "hi\nthere");
        let v: Option<bool> = from_str("null").unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn roundtrip_containers() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_is_indented() {
        let xs = vec![1u64];
        let s = to_string_pretty(&xs).unwrap();
        assert_eq!(s, "[\n  1\n]");
    }

    #[test]
    fn float_roundtrip_exact() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }
}
