//! A recursive-descent JSON parser producing [`serde::Value`] trees.

use serde::Value;

use crate::Error;

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    pub(crate) fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::syntax(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated UTF-8"))?;
                        s.push_str(
                            std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
