//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: an exact count or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_excl: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_excl - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and length spec.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
