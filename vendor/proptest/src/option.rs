//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `Some` with a configured probability.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    p_some: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < self.p_some {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` with probability 0.5.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.5, inner)
}

/// `Some` with probability `p_some`.
pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> OptionStrategy<S> {
    assert!((0.0..=1.0).contains(&p_some), "probability out of range");
    OptionStrategy { inner, p_some }
}
