//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` test blocks, `prop_assert*` macros, `prop_oneof!`,
//! `Strategy` with `prop_map`/`prop_filter`/`prop_flat_map`/`boxed`,
//! range and tuple strategies, `any::<T>()`, `collection::vec`, and
//! `option::weighted`. Cases are generated deterministically per
//! (test path, case index); there is no shrinking — the failing case's
//! inputs are printed verbatim instead.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Defines property tests. Each `fn` body runs [`test_runner::case_count`]
/// times with freshly generated inputs; a panic aborts the run after
/// printing the inputs that triggered it.
#[macro_export]
macro_rules! proptest {
    (@cases $default:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::case_count_with($default);
                let __hash = $crate::test_runner::hash_name(
                    concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__hash, __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __dump = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg,)+);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body }));
                    if let Err(err) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed with inputs:\n{}",
                            __case + 1, __cases, stringify!($name), __dump);
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases as u64; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases 64u64; $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Uniform (or weighted, with `w => strat` arms) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
