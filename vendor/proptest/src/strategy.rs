//! Value-generation strategies.
//!
//! A [`Strategy`] produces one random value per call; shrinking is not
//! implemented — the failing case is printed instead so it can be pasted
//! into a regression test.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Chains a dependent strategy off each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Reference-counted type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among several boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding the full range of a primitive type.
#[derive(Debug, Clone, Default)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrim(std::marker::PhantomData) }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrim<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite values only: full-range bit patterns produce NaN/inf noise
        // that every property would have to filter out.
        (rng.unit_f64() - 0.5) * 2.0e9
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrim<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
