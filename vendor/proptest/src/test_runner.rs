//! Deterministic RNG and case-count plumbing for generated tests.

/// SplitMix64-based generator used to produce test cases. Deterministic per
/// (test name, case index) so failures reproduce without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a raw state.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives the RNG for one case of one named test.
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        TestRng::new(name_hash.wrapping_add(case.wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// FNV-1a hash of a test path, used to decorrelate per-test streams.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of cases each property runs (default 64, `PROPTEST_CASES`
/// overrides).
pub fn case_count() -> u64 {
    case_count_with(64)
}

/// Like [`case_count`] but with a block-level default (set by
/// `#![proptest_config(...)]`); the env var still wins.
pub fn case_count_with(default: u64) -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
