//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * named-field structs,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default).
//!
//! Not supported (panics at expansion time): generics, `#[serde(...)]`
//! attributes. The parser is hand-rolled over `proc_macro::TokenStream`
//! because no `syn`/`quote` is available offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push(format!(
                        "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(String::from(\"{vname}\"), {payload})]),",
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vname}\"), ::serde::Value::Map(vec![{}]))]),",
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                        .collect();
                    format!(
                        "let a = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", v))?;\n\
                         if a.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity\")); }}\n\
                         Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\"))?")
                        })
                        .collect();
                    format!(
                        "v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", v))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut keyed_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!("\"{vname}\" => return Ok({name}::{vname}),"));
                        // Also accept the externally-tagged map form.
                        keyed_arms.push(format!("\"{vname}\" => return Ok({name}::{vname}),"));
                    }
                    Fields::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(payload)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                                .collect();
                            format!(
                                "{{ let a = payload.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", payload))?;\n\
                                 if a.len() != {n} {{ return Err(::serde::Error::custom(\"wrong variant arity\")); }}\n\
                                 {name}::{vname}({}) }}",
                                elems.join(", ")
                            )
                        };
                        keyed_arms.push(format!("\"{vname}\" => return Ok({expr}),"));
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\"))?"
                                )
                            })
                            .collect();
                        keyed_arms.push(format!(
                            "\"{vname}\" => return Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(s) = v.as_str() {{\n\
                             match s {{ {units} _ => {{}} }}\n\
                         }}\n\
                         if let Some(m) = v.as_map() {{\n\
                             if m.len() == 1 {{\n\
                                 let (tag, payload) = (&m[0].0, &m[0].1);\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{ {keyed} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::expected(\"variant of {name}\", v))\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                keyed = keyed_arms.join("\n"),
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---- hand-rolled parsing over TokenStream ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, got {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, got {t}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive on generic type {name} is not supported by the offline serde stand-in");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("expected enum body, got {t:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        k => panic!("cannot derive on `{k}`"),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':', then skip the type up to a top-level ','.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            t => panic!("expected ':' after field name, got {t:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                // Trailing comma adds no field.
                if i + 1 < tokens.len() {
                    count += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing ','.
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Skips one type expression, stopping after the field's trailing ','
/// (or at end of stream). Tracks `<...>` nesting at token level.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}
