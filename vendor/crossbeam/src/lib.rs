//! Offline stand-in for `crossbeam`.
//!
//! The workspace declares the dependency but currently only needs scoped
//! threads, which std provides since 1.63; `scope` forwards to
//! `std::thread::scope` with crossbeam's spelling.

/// Scoped threads: spawned threads may borrow from the enclosing scope and
/// are joined before `scope` returns.
pub mod thread {
    /// Runs `f` with a scope handle; all threads spawned on the scope are
    /// joined when it ends. Mirrors `crossbeam::thread::scope`, which wraps
    /// the closure result in `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

/// Re-export of std mpsc as a minimal channel module.
pub mod channel {
    pub use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
}
