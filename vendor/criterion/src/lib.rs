//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure for a small fixed number of iterations and
//! prints mean wall-clock time. No statistics, warm-up, or HTML reports —
//! just enough to keep `cargo bench` compiling and producing useful
//! numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    /// Sample-size hint (ignored; kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint (ignored; kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One calibration pass, then a short measured run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed / iters as u32;
    println!("bench {name:<50} {mean:>12.2?}/iter ({iters} iters)");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
