//! Quickstart: share one GPU between two fractional jobs with KubeShare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 1-node/1-GPU simulated Kubernetes cluster, installs KubeShare,
//! submits two sharePods that each request 50 % of the GPU, and shows the
//! full lifecycle: vGPU creation via an anchor pod, explicit GPUID→UUID
//! binding, token-based time sharing, and on-demand release.

use kubeshare_repro::bench::harness::cluster_config;
use kubeshare_repro::bench::harness::jobs::JobSpec;
use kubeshare_repro::bench::harness::ks_world::KsHarness;
use kubeshare_repro::kubeshare::locality::Locality;
use kubeshare_repro::kubeshare::system::KsConfig;
use kubeshare_repro::sim_core::rng::SimRng;
use kubeshare_repro::sim_core::time::{SimDuration, SimTime};
use kubeshare_repro::vgpu::{ShareSpec, VgpuConfig};
use kubeshare_repro::workloads::job::JobKind;

fn main() {
    // An 8-core/1-GPU node running the stock Kubernetes control plane,
    // with KubeShare's two controllers installed next to it.
    let mut harness = KsHarness::new(
        cluster_config(1, 1),
        KsConfig::default(),
        VgpuConfig::default(),
    );

    // Two training jobs, each asking for half the GPU:
    //   gpu_request = 0.5 (guaranteed), gpu_limit = 1.0 (may soak residual),
    //   gpu_mem = 0.4 (40% of the 16 GB device memory).
    let mut rng = SimRng::seed_from_u64(7);
    for name in ["train-a", "train-b"] {
        harness.add_job(
            JobSpec {
                name: name.to_string(),
                kind: JobKind::Training {
                    steps: 200,
                    kernel: SimDuration::from_millis(20),
                    duty: 1.0,
                },
                share: ShareSpec::new(0.5, 1.0, 0.4).unwrap(),
                locality: Locality::none(),
                arrival: SimTime::ZERO,
            },
            rng.fork(),
        );
    }

    harness.run(10_000_000);

    println!("== KubeShare quickstart ==");
    for job in &harness.eng.world.jobs {
        let (uuid, _) = job.binding.as_ref().expect("job was bound");
        println!(
            "{:<8} started {:>6.2}s  finished {:>6.2}s  on physical GPU {}",
            job.spec.name,
            job.started.unwrap().as_secs_f64(),
            job.finished.unwrap().as_secs_f64(),
            uuid,
        );
    }
    let a = &harness.eng.world.jobs[0];
    let b = &harness.eng.world.jobs[1];
    assert_eq!(
        a.binding.as_ref().unwrap().0,
        b.binding.as_ref().unwrap().0,
        "both jobs share the same physical GPU"
    );
    println!(
        "vGPU pool after completion: {} devices (on-demand policy released the GPU)",
        harness.eng.world.ks.pool().len()
    );
    // Each job ran 200 × 20 ms = 4 s of kernels; sharing one GPU, both
    // finish after ≈8 s of execution — twice the work on one device.
    println!(
        "makespan: {:.2}s for 8s of aggregate GPU work on one device",
        harness.summary().makespan.unwrap().as_secs_f64()
    );
}
