//! Scenario: a replicated model-serving deployment on shared GPUs.
//!
//! ```text
//! cargo run --release --example replicated_serving
//! ```
//!
//! The paper's §4.6 compatibility claim in action: a standard-style
//! replication controller manages **sharePods** instead of native pods.
//! Four quarter-GPU replicas of a serving deployment come up on a single
//! physical GPU; when one replica crashes, the control loop replaces it;
//! scaling to six replicas spills onto a second GPU automatically.

use kubeshare_repro::bench::harness::cluster_config;
use kubeshare_repro::cluster::api::{PodSpec, ResourceList};
use kubeshare_repro::kubeshare::replicaset::{ReplicaSetController, ReplicaSetSpec};
use kubeshare_repro::kubeshare::sharepod::{SharePodPhase, SharePodSpec};
use kubeshare_repro::kubeshare::system::{KsConfig, KsEvent, KubeShareSystem};
use kubeshare_repro::sim_core::prelude::*;
use kubeshare_repro::vgpu::ShareSpec;

struct World {
    ks: KubeShareSystem,
    rc: ReplicaSetController,
}

struct Ev(KsEvent);

impl SimEvent<World> for Ev {
    fn fire(self, now: SimTime, w: &mut World, q: &mut EventQueue<Self>) {
        let mut out = Vec::new();
        let mut notes = Vec::new();
        w.ks.handle(now, self.0, &mut out, &mut notes);
        for n in &notes {
            w.rc.observe(now, n, &mut w.ks, &mut out);
        }
        for (at, e) in out {
            q.schedule_at(at, Ev(e));
        }
    }
}

fn status_line(w: &World, label: &str) {
    let running =
        w.ks.sharepods()
            .iter()
            .filter(|(_, sp)| sp.status.phase == SharePodPhase::Running)
            .count();
    println!(
        "{label:<34} running replicas: {running}   vGPUs held: {}",
        w.ks.pool().len()
    );
}

fn main() {
    let cfg = cluster_config(1, 2); // one node, two GPUs
    let mut eng = Engine::new(World {
        ks: KubeShareSystem::new(cfg, KsConfig::default()),
        rc: ReplicaSetController::new(),
    });

    println!("== Replicated serving over sharePods (§4.6 compatibility) ==\n");
    let template = SharePodSpec::new(
        PodSpec::new("deeplab-serving:v3", ResourceList::cpu_mem(500, 2 << 30)),
        ShareSpec::new(0.25, 0.5, 0.25).unwrap(),
    );
    let mut out = Vec::new();
    let id = eng.world.rc.create(
        SimTime::ZERO,
        ReplicaSetSpec {
            name: "deeplab".into(),
            replicas: 4,
            template,
        },
        &mut eng.world.ks,
        &mut out,
    );
    for (at, e) in out {
        eng.queue.schedule_at(at, Ev(e));
    }
    eng.run_to_completion(1_000_000);
    status_line(&eng.world, "4 replicas requested:");

    // A replica "crashes" (we delete it behind the controller's back).
    let victim = eng
        .world
        .ks
        .sharepods()
        .iter()
        .find(|(_, sp)| sp.status.phase == SharePodPhase::Running)
        .map(|(u, _)| u)
        .unwrap();
    let now = eng.now();
    let mut out = Vec::new();
    let mut notes = Vec::new();
    eng.world
        .ks
        .delete_sharepod(now, victim, &mut out, &mut notes);
    for n in &notes {
        eng.world.rc.observe(now, n, &mut eng.world.ks, &mut out);
    }
    for (at, e) in out {
        eng.queue.schedule_at(at, Ev(e));
    }
    eng.run_to_completion(1_000_000);
    status_line(&eng.world, "after one replica crashed:");

    // Scale to 6: 6 × 0.25 = 1.5 GPUs → a second physical GPU is acquired.
    let now = eng.now();
    let mut out = Vec::new();
    let mut notes = Vec::new();
    eng.world
        .rc
        .scale(now, id, 6, &mut eng.world.ks, &mut out, &mut notes);
    for (at, e) in out {
        eng.queue.schedule_at(at, Ev(e));
    }
    eng.run_to_completion(1_000_000);
    status_line(&eng.world, "after scaling to 6 replicas:");

    println!(
        "\nThe controller only ever used the public sharePod API — exactly the\n\
         paper's claim that higher-level controllers integrate by requesting\n\
         a sharePod instead of a native pod."
    );
}
