//! Scenario: a TF-Serving inference fleet on a small GPU cluster.
//!
//! ```text
//! cargo run --release --example inference_serving
//! ```
//!
//! Twelve model-serving jobs with modest request rates (each needs only
//! 15–35 % of a GPU) arrive over two minutes on a 2-node, 4-GPU cluster.
//! Native Kubernetes must give each one a whole GPU; KubeShare packs them
//! by their `gpu_request`. The example prints the throughput and GPU
//! holding of both systems side by side — the paper's §5.3 story at
//! desk scale.

use kubeshare_repro::bench::harness::cluster_config;
use kubeshare_repro::bench::harness::jobs::JobSpec;
use kubeshare_repro::bench::harness::ks_world::KsHarness;
use kubeshare_repro::bench::harness::native_world::NativeHarness;
use kubeshare_repro::kubeshare::locality::Locality;
use kubeshare_repro::kubeshare::system::KsConfig;
use kubeshare_repro::sim_core::rng::SimRng;
use kubeshare_repro::sim_core::time::{SimDuration, SimTime};
use kubeshare_repro::vgpu::{ShareSpec, VgpuConfig};
use kubeshare_repro::workloads::presets::tf_serving;

fn jobs() -> Vec<JobSpec> {
    // Request rates in req/s; each request is a 20 ms forward pass, so a
    // rate of 10/s needs 20% of a GPU.
    let rates = [
        8.0, 12.0, 7.5, 15.0, 10.0, 17.5, 9.0, 11.0, 13.5, 7.0, 16.0, 10.5,
    ];
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let demand = rate * 0.020;
            JobSpec {
                name: format!("serve-{i}"),
                // Each job serves 90 seconds worth of its own traffic.
                kind: tf_serving(rate, (rate * 90.0) as u32),
                share: ShareSpec::new(demand, (demand * 1.5).min(1.0), demand).unwrap(),
                locality: Locality::none(),
                arrival: SimTime::from_secs(i as u64 * 10),
            }
        })
        .collect()
}

fn main() {
    println!("== TF-Serving fleet: 12 services, 4 GPUs ==\n");

    // --- Native Kubernetes: one whole GPU per service ---
    let mut native = NativeHarness::new(cluster_config(2, 2));
    let mut rng = SimRng::seed_from_u64(3);
    for spec in jobs() {
        native.add_job(spec, rng.fork());
    }
    native.enable_sampling(SimDuration::from_secs(10));
    native.run(100_000_000);
    let n = native.summary();

    // --- KubeShare: fractional sharePods ---
    let mut ks = KsHarness::new(
        cluster_config(2, 2),
        KsConfig::default(),
        VgpuConfig::default(),
    );
    let mut rng = SimRng::seed_from_u64(3);
    for spec in jobs() {
        ks.add_job(spec, rng.fork());
    }
    ks.enable_sampling(SimDuration::from_secs(10));
    ks.run(100_000_000);
    let k = ks.summary();

    println!("{:<28}{:>14}{:>14}", "", "Kubernetes", "KubeShare");
    println!(
        "{:<28}{:>14.1}{:>14.1}",
        "makespan (s)",
        n.makespan.unwrap().as_secs_f64(),
        k.makespan.unwrap().as_secs_f64()
    );
    println!(
        "{:<28}{:>14.1}{:>14.1}",
        "throughput (jobs/min)",
        n.jobs_per_minute.unwrap(),
        k.jobs_per_minute.unwrap()
    );
    println!(
        "{:<28}{:>14.2}{:>14.2}",
        "peak mean GPU utilization",
        peak(&native.eng.world.avg_util),
        peak(&ks.eng.world.avg_util)
    );
    println!(
        "{:<28}{:>14.1}{:>14.1}",
        "peak GPUs held",
        peak(&native.eng.world.active_gpus),
        peak(&ks.eng.world.active_gpus)
    );
    println!();
    println!(
        "KubeShare finished {:.0}% sooner holding fewer GPUs — the residual\n\
         capacity exclusive allocation wastes is exactly what sharing recovers.",
        (1.0 - k.makespan.unwrap().as_secs_f64() / n.makespan.unwrap().as_secs_f64()) * 100.0
    );
}

fn peak(series: &kubeshare_repro::sim_core::timeseries::TimeSeries) -> f64 {
    series.points().iter().map(|&(_, v)| v).fold(0.0, f64::max)
}
