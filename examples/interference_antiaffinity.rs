//! Scenario: taming noisy neighbours with anti-affinity labels (§5.5).
//!
//! ```text
//! cargo run --release --example interference_antiaffinity
//! ```
//!
//! Job B under-provisions its request (asks 0.45, uses 0.75), so two B's
//! on one GPU slow each other ≈1.5×. KubeShare's first-class GPUIDs let
//! users attach an anti-affinity label to B — the scheduler then never
//! co-locates two B's, while still sharing GPUs between A's and B's.

use kubeshare_repro::bench::harness::cluster_config;
use kubeshare_repro::bench::harness::jobs::JobSpec;
use kubeshare_repro::bench::harness::ks_world::KsHarness;
use kubeshare_repro::kubeshare::locality::Locality;
use kubeshare_repro::kubeshare::system::KsConfig;
use kubeshare_repro::sim_core::rng::SimRng;
use kubeshare_repro::sim_core::time::SimTime;
use kubeshare_repro::vgpu::VgpuConfig;
use kubeshare_repro::workloads::presets::interference_pair;

fn run(anti_affinity: bool) -> (f64, Vec<(String, String)>) {
    let mut h = KsHarness::new(
        cluster_config(1, 2),
        KsConfig::default(),
        VgpuConfig::default(),
    );
    let (preset_a, preset_b) = interference_pair(60);
    let mut rng = SimRng::seed_from_u64(11);
    // Two A's and two B's on a 2-GPU node.
    for (i, which) in ["B", "B", "A", "A"].iter().enumerate() {
        let preset = if *which == "A" {
            preset_a.clone()
        } else {
            preset_b.clone()
        };
        let locality = if *which == "B" && anti_affinity {
            Locality::none().with_anti_affinity("noisy")
        } else {
            Locality::none()
        };
        h.add_job(
            JobSpec {
                name: format!("{which}-{i}"),
                kind: preset.kind,
                share: preset.share,
                locality,
                arrival: SimTime::from_millis(i as u64 * 100),
            },
            rng.fork(),
        );
    }
    h.run(100_000_000);
    let makespan = h.summary().makespan.unwrap().as_secs_f64();
    let placements = h
        .eng
        .world
        .jobs
        .iter()
        .map(|j| (j.spec.name.clone(), j.binding.as_ref().unwrap().0.clone()))
        .collect();
    (makespan, placements)
}

fn main() {
    println!("== Interference mitigation with anti-affinity ==\n");
    for (label, anti) in [("without labels", false), ("anti-affinity on B", true)] {
        let (makespan, placements) = run(anti);
        println!("-- {label} --");
        for (job, gpu) in &placements {
            println!("  {job:<6} -> {gpu}");
        }
        let b_gpus: Vec<&String> = placements
            .iter()
            .filter(|(j, _)| j.starts_with('B'))
            .map(|(_, g)| g)
            .collect();
        let b_colocated = b_gpus[0] == b_gpus[1];
        println!("  B's co-located: {b_colocated}; all jobs done after {makespan:.1}s\n");
    }
    println!(
        "With the label, the two interference-prone B jobs land on different\n\
         GPUs (each paired with a gentle A instead), so the workload finishes\n\
         sooner — a scheduling capability that requires GPUs to be first-class\n\
         entities with identities users can constrain."
    );
}
