//! The token protocol on real OS threads (no simulation).
//!
//! ```text
//! cargo run --release --example realtime_tokens
//! ```
//!
//! Three "containers" run in their own threads and contend for one GPU
//! through the realtime backend: each thread blocks in `acquire()` exactly
//! as the paper's LD_PRELOAD frontend blocks intercepted CUDA calls, runs
//! "kernels" while its lease is valid, and re-acquires when the quota
//! expires. Afterwards we print each container's measured usage share.

use std::thread;
use std::time::{Duration, Instant};

use kubeshare_repro::vgpu::realtime::{RtBackend, RtConfig};
use kubeshare_repro::vgpu::ShareSpec;

fn main() {
    let backend = RtBackend::new(RtConfig {
        quota: Duration::from_millis(20),
        window: Duration::from_millis(800),
        memory_bytes: 16 << 30,
    });

    // gpu_request / gpu_limit per container.
    let specs = [(0.5, 0.6), (0.3, 0.4), (0.2, 0.3)];
    let run_for = Duration::from_millis(900);
    let start = Instant::now();

    let mut handles = Vec::new();
    for (i, &(request, limit)) in specs.iter().enumerate() {
        let fe = backend.register(ShareSpec::new(request, limit, 0.3).unwrap());
        handles.push(thread::spawn(move || {
            let mut held = Duration::ZERO;
            while start.elapsed() < run_for {
                let lease = fe.acquire();
                let t0 = Instant::now();
                // "Launch kernels" until the quota runs out.
                while !lease.expired() && start.elapsed() < run_for {
                    thread::sleep(Duration::from_millis(2));
                }
                held += t0.elapsed();
                drop(lease); // voluntary release / expiry return
            }
            (i, request, limit, held, fe.usage())
        }));
    }

    println!("== realtime token backend: 3 threads, 20ms quota ==\n");
    println!(
        "{:<10}{:>10}{:>8}{:>14}{:>16}",
        "container", "request", "limit", "held (ms)", "window usage"
    );
    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.sort_by_key(|r| r.0);
    for (i, request, limit, held, usage) in results {
        println!(
            "{:<10}{:>10.2}{:>8.2}{:>14.0}{:>16.2}",
            format!("c{i}"),
            request,
            limit,
            held.as_secs_f64() * 1e3,
            usage
        );
    }
    println!(
        "\ntotal grants: {} (the token really did circulate between threads)",
        backend.grant_count()
    );
}
