//! Umbrella crate for the KubeShare (HPDC '20) reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use a single dependency. See the individual crates for the real APIs:
//!
//! * [`ks_sim_core`] — discrete-event simulation engine
//! * [`ks_gpu`] — simulated GPU devices and CUDA-like API
//! * [`ks_cluster`] — Kubernetes control-plane substrate
//! * [`ks_vgpu`] — token-based vGPU device library
//! * [`kubeshare`] — the paper's contribution (SharePod, Algorithm 1, DevMgr)
//! * [`ks_workloads`] — deep-learning job models and workload generators
//! * [`ks_baselines`] — native Kubernetes and scaling-factor baselines
//! * [`ks_bench`] — per-figure experiment harnesses

pub use ks_baselines as baselines;
pub use ks_bench as bench;
pub use ks_cluster as cluster;
pub use ks_gpu as gpu;
pub use ks_sim_core as sim_core;
pub use ks_vgpu as vgpu;
pub use ks_workloads as workloads;
pub use kubeshare;
