//! Online anomaly detection over the telemetry ring-buffer store.
//!
//! A [`Detector`] holds a declarative catalogue of [`DetectRule`]s and is
//! evaluated once per scrape tick against the [`Tsdb`]. Each rule watches
//! every series of one metric independently: the detector discovers
//! series through [`Tsdb::series_entries`] (deterministic series-id
//! order), so a node that first crashes mid-run grows its own baseline
//! from the moment its series appears — no pre-registration.
//!
//! Two statistical shapes plus one threshold shape cover the catalogue:
//!
//! * [`Signal::RateZScore`] — the windowed per-second rate of a counter
//!   series, scored against a per-series EWMA baseline
//!   ([`ks_sim_core::stats::Ewma`]);
//! * [`Signal::GaugeZScore`] — the windowed average of a gauge series,
//!   scored the same way;
//! * [`Signal::RateThreshold`] — a plain ceiling on a windowed rate, for
//!   signals whose healthy value is a known constant (usually zero).
//!
//! Noise discipline: a rule only *fires* after `persist` consecutive
//! breaching evaluations — a single-sample spike never pages — and the
//! EWMA baseline is frozen while a series is breaching, so a genuine
//! shift cannot absorb itself into the baseline before the persistence
//! count is reached. After `clear` consecutive healthy evaluations the
//! streaks reset and the baseline resumes learning.
//!
//! Everything is deterministic under the DES clock: same scrape history,
//! same verdicts, bit for bit.

use std::collections::BTreeMap;

use ks_sim_core::stats::Ewma;
use ks_sim_core::time::{SimDuration, SimTime};
use ks_telemetry::tsdb::Tsdb;

/// How a rule turns a series' recent points into one scalar observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Signal {
    /// Per-second counter rate over `window`, z-scored against the EWMA.
    RateZScore { window: SimDuration },
    /// Windowed gauge average over `window`, z-scored against the EWMA.
    GaugeZScore { window: SimDuration },
    /// Per-second counter rate over `window` must stay `<= max_per_sec`.
    /// No baseline: the healthy value is known a priori.
    RateThreshold {
        window: SimDuration,
        max_per_sec: f64,
    },
}

/// One detection rule: a metric, a signal shape, and noise discipline.
#[derive(Debug, Clone)]
pub struct DetectRule {
    /// Stable identifier, used as the `rule` label on verdicts.
    pub name: &'static str,
    /// Metric name to watch; every series of it is scored independently.
    pub metric: &'static str,
    pub signal: Signal,
    /// Fire when `|z| > z_thresh` (z-score signals only).
    pub z_thresh: f64,
    /// Floor on the standard deviation used in the z-score, so a
    /// dead-flat baseline cannot make epsilon noise look infinitely
    /// surprising.
    pub min_std: f64,
    /// EWMA smoothing factor in `(0, 1]`; higher adapts faster.
    pub alpha: f64,
    /// Observations a series must accumulate before it may breach.
    pub warmup: u64,
    /// Consecutive breaching evaluations required before firing.
    pub persist: u32,
    /// Consecutive healthy evaluations required before the breach streak
    /// (and the firing latch) resets.
    pub clear: u32,
}

impl DetectRule {
    /// A z-score rule with the catalogue's default noise discipline:
    /// fire on `|z| > z_thresh` sustained for 2 evaluations, after a
    /// 5-observation warmup, clearing after 2 healthy evaluations.
    pub fn zscore(name: &'static str, metric: &'static str, signal: Signal, z_thresh: f64) -> Self {
        DetectRule {
            name,
            metric,
            signal,
            z_thresh,
            min_std: 0.05,
            alpha: 0.3,
            warmup: 5,
            persist: 2,
            clear: 2,
        }
    }

    /// A threshold rule: fire when the windowed rate exceeds the ceiling
    /// for `persist` consecutive evaluations. No baseline, no warmup.
    pub fn threshold(
        name: &'static str,
        metric: &'static str,
        window: SimDuration,
        max_per_sec: f64,
    ) -> Self {
        DetectRule {
            name,
            metric,
            signal: Signal::RateThreshold {
                window,
                max_per_sec,
            },
            z_thresh: 0.0,
            min_std: 0.0,
            alpha: 1.0,
            warmup: 0,
            persist: 2,
            clear: 2,
        }
    }
}

/// A fired verdict: one rule breached persistently on one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    pub rule: &'static str,
    pub metric: &'static str,
    /// The breaching series' full label set (owned; stable order).
    pub labels: Vec<(String, String)>,
    /// The observed signal value at the firing evaluation.
    pub value: f64,
    /// The z-score at the firing evaluation (0 for threshold rules).
    pub z: f64,
    pub at: SimTime,
}

impl Anomaly {
    /// The value of label `key`, if present (e.g. which node breached).
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Per-(rule, series) online state.
#[derive(Debug)]
struct SeriesState {
    ewma: Ewma,
    /// Consecutive breaching evaluations (capped at `persist` once fired).
    breach_streak: u32,
    /// Consecutive healthy evaluations while latched.
    clear_streak: u32,
    /// True once fired; suppresses re-firing until the breach clears.
    latched: bool,
}

/// Evaluates a rule catalogue against the TSDB, one verdict per
/// persistent breach. Re-fires only after the series has been healthy
/// for `clear` consecutive evaluations.
#[derive(Debug)]
pub struct Detector {
    rules: Vec<DetectRule>,
    /// Keyed by `rule_index` then the series' identity string.
    state: BTreeMap<(usize, String), SeriesState>,
    evaluations: u64,
    fired_total: u64,
}

impl Detector {
    pub fn new(rules: Vec<DetectRule>) -> Self {
        for r in &rules {
            assert!(r.persist >= 1, "persist must be >= 1");
            assert!(r.clear >= 1, "clear must be >= 1");
        }
        Detector {
            rules,
            state: BTreeMap::new(),
            evaluations: 0,
            fired_total: 0,
        }
    }

    pub fn rules(&self) -> &[DetectRule] {
        &self.rules
    }

    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Total verdicts fired over the detector's lifetime.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Scores every matching series of every rule at `now`. Returns the
    /// verdicts that crossed their persistence threshold this evaluation,
    /// in (rule, series) order — deterministic for a given scrape history.
    pub fn evaluate(&mut self, now: SimTime, tsdb: &Tsdb) -> Vec<Anomaly> {
        self.evaluations += 1;
        let mut fired = Vec::new();
        let entries = tsdb.series_entries();
        for (ri, rule) in self.rules.iter().enumerate() {
            for (name, labels) in &entries {
                if name != rule.metric {
                    continue;
                }
                let label_refs: Vec<(&str, &str)> = labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                // A stale series (no points inside the window) yields no
                // observation; skip without touching its state.
                let Some(value) = observe(tsdb, rule, &label_refs, now) else {
                    continue;
                };
                let key = (ri, series_key(name, labels));
                let st = self.state.entry(key).or_insert_with(|| SeriesState {
                    ewma: Ewma::new(rule.alpha),
                    breach_streak: 0,
                    clear_streak: 0,
                    latched: false,
                });
                let (breaching, z) = match rule.signal {
                    Signal::RateThreshold { max_per_sec, .. } => (value > max_per_sec, 0.0),
                    _ => {
                        let z = st.ewma.z_score(value, rule.min_std);
                        (st.ewma.count() >= rule.warmup && z.abs() > rule.z_thresh, z)
                    }
                };
                if breaching {
                    st.clear_streak = 0;
                    st.breach_streak = st.breach_streak.saturating_add(1);
                    // Freeze the baseline: a genuine shift must not teach
                    // itself normal before the persistence count is met.
                    if st.breach_streak >= rule.persist && !st.latched {
                        st.latched = true;
                        self.fired_total += 1;
                        fired.push(Anomaly {
                            rule: rule.name,
                            metric: rule.metric,
                            labels: labels.clone(),
                            value,
                            z,
                            at: now,
                        });
                    }
                } else {
                    st.breach_streak = 0;
                    if st.latched {
                        st.clear_streak += 1;
                        if st.clear_streak >= rule.clear {
                            st.latched = false;
                            st.clear_streak = 0;
                        }
                    }
                    st.ewma.push(value);
                }
            }
        }
        fired
    }
}

/// One scalar observation of `rule.metric` for the series identified by
/// `labels`, or `None` when the window holds no usable points.
fn observe(tsdb: &Tsdb, rule: &DetectRule, labels: &[(&str, &str)], now: SimTime) -> Option<f64> {
    match rule.signal {
        Signal::RateZScore { window } | Signal::RateThreshold { window, .. } => {
            tsdb.rate(rule.metric, labels, window, now)
        }
        Signal::GaugeZScore { window } => tsdb
            .gauge_agg(rule.metric, labels, window, now)
            .map(|a| a.avg),
    }
}

/// Stable identity string for a series: name plus its full label set.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}
