//! The remediation controller: verdicts in, graded actions out.
//!
//! The controller is deliberately **decoupled from the control plane**:
//! it consumes [`Anomaly`] verdicts and [`SloStatus`] rows and emits
//! [`Action`] values with string targets; the host (the bench harness, or
//! an operator shim) executes them against [`kubeshare`]'s recovery
//! paths — `cordon_node`, `drain_vgpu`, `Gateway::set_admission_scale`.
//! That keeps the decision logic testable with synthetic inputs and
//! keeps this crate's dependency footprint to `sim-core` + `telemetry`.
//!
//! The escalation ladder, mildest first:
//!
//! 1. **tighten admission** — a breaching gateway SLO shrinks the token
//!    buckets and queue caps by `tighten_scale`, shedding load at the
//!    front door before touching placed work;
//! 2. **cordon** — a node whose crash-burn rate is anomalous stops
//!    receiving new placements (running pods undisturbed);
//! 3. **drain** — a vGPU whose observed throughput collapses has its
//!    tenants requeued onto fresh silicon and the device retired.
//!
//! Every path runs through the [`FlapGuard`]: per-target cooldown plus a
//! global budget per sliding window. When the budget is spent the loop
//! degrades to observe-only (verdicts still traced and counted, nothing
//! executed) instead of oscillating. Recovery actions (uncordon, relax)
//! fire only after `clear_after` consecutive healthy evaluations of the
//! same target — hysteresis, so one quiet tick cannot undo a cordon.
//!
//! Causality: each anomaly mints a `remediation/anomaly` root trace;
//! every action taken for it opens a `remediation/*` child span, so the
//! chaos→detection→action chain is walkable in the trace viewer.

use std::collections::BTreeMap;

use ks_sim_core::time::{SimDuration, SimTime};
use ks_telemetry::provenance::{DecisionKind, Outcome, SchedProv};
use ks_telemetry::{FlightRecorder, SloStatus, SpanId, Telemetry, TraceCtx};

use crate::detect::Anomaly;
use crate::guard::{FlapGuard, GuardVerdict};

/// A remediation the host should execute. Targets are plain strings so
/// the controller needs no control-plane types.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Stop placing onto `node`; running pods stay.
    CordonNode { node: String },
    /// Resume placing onto `node` and retry its unschedulable queue.
    UncordonNode { node: String },
    /// Requeue every tenant off the vGPU and retire the device.
    DrainVgpu { gpu: String },
    /// Scale gateway rate limits and queue caps down to `scale`.
    TightenAdmission { scale: f64 },
    /// Restore gateway admission to the configured limits.
    RelaxAdmission,
}

impl Action {
    /// Label for `ks_remediation_actions_total`.
    pub fn label(&self) -> &'static str {
        match self {
            Action::CordonNode { .. } => "cordon_node",
            Action::UncordonNode { .. } => "uncordon_node",
            Action::DrainVgpu { .. } => "drain_vgpu",
            Action::TightenAdmission { .. } => "tighten_admission",
            Action::RelaxAdmission => "relax_admission",
        }
    }
}

/// Wiring from verdicts to actions, plus the guard's knobs.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Detector rule whose verdicts cordon the breaching `node` label.
    pub cordon_rule: &'static str,
    /// Detector rule whose verdicts drain the breaching `gpu` label.
    pub drain_rule: &'static str,
    /// SLO rule whose burn tightens gateway admission.
    pub tighten_slo: &'static str,
    /// Admission scale applied while the SLO burns, in `(0, 1)`.
    pub tighten_scale: f64,
    /// Consecutive healthy evaluations before uncordon / relax.
    pub clear_after: u32,
    /// Per-target cooldown between actions.
    pub cooldown: SimDuration,
    /// Sliding budget window.
    pub budget_window: SimDuration,
    /// Max actions per budget window; past it the loop observes only.
    pub max_actions: u32,
    /// When false the controller traces and counts but emits no actions
    /// (observe-only baseline; the disabled loop must be decision-inert).
    pub enabled: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            cordon_rule: "node_crash_burn",
            drain_rule: "vgpu_throughput_drop",
            tighten_slo: "handoff_wait_p99",
            tighten_scale: 0.5,
            clear_after: 8,
            cooldown: SimDuration::from_secs(30),
            budget_window: SimDuration::from_secs(120),
            max_actions: 12,
            enabled: true,
        }
    }
}

/// An open remediation being tracked toward recovery.
#[derive(Debug)]
struct OpenRemediation {
    span: SpanId,
    ctx: TraceCtx,
    /// Consecutive evaluations without a fresh verdict on this target.
    healthy_streak: u32,
}

/// Turns anomaly verdicts and SLO burn into graded, budget-capped
/// actions. Pure state machine: all telemetry flows through the handle
/// given at construction, all side effects through the returned actions.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    telemetry: Telemetry,
    /// Flight recorder for [`DecisionKind::Remediation`] records, keyed
    /// by each anomaly's root trace (disabled by default).
    recorder: FlightRecorder,
    guard: FlapGuard,
    /// Nodes we cordoned, awaiting health to uncordon.
    cordoned: BTreeMap<String, OpenRemediation>,
    /// The admission tightening in flight, if any.
    tightened: Option<OpenRemediation>,
    actions_taken: u64,
}

impl Controller {
    pub fn new(cfg: ControllerConfig, telemetry: Telemetry) -> Self {
        assert!(
            cfg.tighten_scale > 0.0 && cfg.tighten_scale < 1.0,
            "tighten_scale must be in (0, 1)"
        );
        assert!(cfg.clear_after >= 1, "clear_after must be >= 1");
        let guard = FlapGuard::new(cfg.cooldown, cfg.budget_window, cfg.max_actions);
        Controller {
            cfg,
            telemetry,
            recorder: FlightRecorder::disabled(),
            guard,
            cordoned: BTreeMap::new(),
            tightened: None,
            actions_taken: 0,
        }
    }

    /// Installs a decision-provenance flight recorder: every emitted
    /// action leaves a [`DecisionKind::Remediation`] record joined to the
    /// triggering anomaly's trace. Recording happens after each action is
    /// decided, so the control loop is decision-identical recorder on or
    /// off.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = recorder;
    }

    /// The installed flight recorder (disabled handle by default).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Captures one emitted action as a provenance record under the
    /// anomaly's trace (`sp` is 0: remediation acts on infrastructure,
    /// not on one sharePod).
    fn record_action(&self, now: SimTime, ctx: TraceCtx, action: &Action, why: &str) {
        if !self.recorder.is_enabled() {
            return;
        }
        let target = match action {
            Action::CordonNode { node } | Action::UncordonNode { node } => node.clone(),
            Action::DrainVgpu { gpu } => gpu.clone(),
            Action::TightenAdmission { .. } | Action::RelaxAdmission => "gateway".to_string(),
        };
        let mut prov = SchedProv::on();
        prov.note(|| format!("remediation: {} ({why})", action.label()));
        self.recorder.record(prov.into_record(
            now,
            0,
            ctx.trace,
            DecisionKind::Remediation,
            Outcome::Action {
                name: action.label().to_string(),
                target: target.into(),
            },
        ));
    }

    pub fn actions_taken(&self) -> u64 {
        self.actions_taken
    }

    /// Targets currently cordoned by this controller.
    pub fn cordoned_nodes(&self) -> Vec<&str> {
        self.cordoned.keys().map(|s| s.as_str()).collect()
    }

    pub fn is_tightened(&self) -> bool {
        self.tightened.is_some()
    }

    /// One control-loop evaluation. `anomalies` are this tick's fresh
    /// detector verdicts; `slo` is the full SLO engine output. Returns
    /// the actions the host must execute, in a deterministic order.
    pub fn step(&mut self, now: SimTime, anomalies: &[Anomaly], slo: &[SloStatus]) -> Vec<Action> {
        let mut actions = Vec::new();
        let observe_only = !self.cfg.enabled || self.guard.observe_only(now);
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge("ks_remediation_observe_only", &[])
                .set(if observe_only { 1.0 } else { 0.0 });
        }

        // --- ingest verdicts: every anomaly mints a root trace. ---
        for a in anomalies {
            let ctx = self.telemetry.trace_root(
                now,
                "remediation",
                "anomaly",
                &[
                    ("rule", a.rule.to_string()),
                    ("metric", a.metric.to_string()),
                    ("value", format!("{:.6}", a.value)),
                    ("z", format!("{:.3}", a.z)),
                ],
            );
            self.telemetry
                .counter("ks_remediation_anomalies_total", &[("rule", a.rule)])
                .inc();
            if !self.cfg.enabled {
                self.suppress("disabled");
                continue;
            }
            if a.rule == self.cfg.cordon_rule {
                if let Some(node) = a.label("node") {
                    self.try_cordon(now, node, ctx, &mut actions);
                }
            } else if a.rule == self.cfg.drain_rule {
                if let Some(gpu) = a.label("gpu") {
                    self.try_drain(now, gpu, ctx, &mut actions);
                }
            }
        }

        // --- hysteresis: track open remediations toward recovery. ---
        if self.cfg.enabled {
            self.advance_cordons(now, anomalies, &mut actions);
            self.advance_tighten(now, anomalies, slo, &mut actions);
        }

        for act in &actions {
            self.telemetry
                .counter("ks_remediation_actions_total", &[("action", act.label())])
                .inc();
        }
        self.actions_taken += actions.len() as u64;
        actions
    }

    fn suppress(&self, reason: &'static str) {
        self.telemetry
            .counter("ks_remediation_suppressed_total", &[("reason", reason)])
            .inc();
    }

    fn guarded(&mut self, now: SimTime, key: &str) -> bool {
        match self.guard.admit(now, key) {
            GuardVerdict::Allowed => true,
            v => {
                self.suppress(v.label());
                false
            }
        }
    }

    fn try_cordon(&mut self, now: SimTime, node: &str, ctx: TraceCtx, actions: &mut Vec<Action>) {
        if let Some(open) = self.cordoned.get_mut(node) {
            // Still sick: restart the healthy streak, don't re-cordon.
            open.healthy_streak = 0;
            return;
        }
        if !self.guarded(now, &format!("cordon:{node}")) {
            return;
        }
        let span = self.telemetry.span_begin_in(
            now,
            ctx,
            "remediation",
            "cordon",
            &[("node", node.to_string())],
        );
        self.cordoned.insert(
            node.to_string(),
            OpenRemediation {
                span,
                ctx,
                healthy_streak: 0,
            },
        );
        let action = Action::CordonNode {
            node: node.to_string(),
        };
        self.record_action(now, ctx, &action, "anomaly verdict on node");
        actions.push(action);
    }

    fn try_drain(&mut self, now: SimTime, gpu: &str, ctx: TraceCtx, actions: &mut Vec<Action>) {
        if !self.guarded(now, &format!("drain:{gpu}")) {
            return;
        }
        // Drain is one-shot: the device is retired, nothing to track.
        let span = self.telemetry.span_begin_in(
            now,
            ctx,
            "remediation",
            "drain",
            &[("gpu", gpu.to_string())],
        );
        self.telemetry.span_end(now, span, &[]);
        let action = Action::DrainVgpu {
            gpu: gpu.to_string(),
        };
        self.record_action(now, ctx, &action, "anomaly verdict on vGPU");
        actions.push(action);
    }

    fn advance_cordons(&mut self, now: SimTime, anomalies: &[Anomaly], actions: &mut Vec<Action>) {
        let clear_after = self.cfg.clear_after;
        let mut to_lift: Vec<String> = Vec::new();
        for (node, open) in self.cordoned.iter_mut() {
            let still_sick = anomalies
                .iter()
                .any(|a| a.rule == self.cfg.cordon_rule && a.label("node") == Some(node));
            if still_sick {
                open.healthy_streak = 0;
            } else {
                open.healthy_streak += 1;
                if open.healthy_streak >= clear_after {
                    to_lift.push(node.clone());
                }
            }
        }
        for node in to_lift {
            if !self.guarded(now, &format!("uncordon:{node}")) {
                continue;
            }
            let open = self.cordoned.remove(&node).expect("tracked above");
            self.telemetry
                .span_end(now, open.span, &[("outcome", "uncordoned".to_string())]);
            self.telemetry.trace_event_in(
                now,
                open.ctx,
                "remediation",
                "uncordon",
                &[("node", node.clone())],
            );
            let action = Action::UncordonNode { node };
            self.record_action(now, open.ctx, &action, "healthy streak reached clear_after");
            actions.push(action);
        }
    }

    fn advance_tighten(
        &mut self,
        now: SimTime,
        _anomalies: &[Anomaly],
        slo: &[SloStatus],
        actions: &mut Vec<Action>,
    ) {
        let burning = slo
            .iter()
            .find(|s| s.rule == self.cfg.tighten_slo)
            .map(|s| s.breaching)
            .unwrap_or(false);
        match &mut self.tightened {
            None if burning => {
                if !self.guarded(now, "gateway:tighten") {
                    return;
                }
                let ctx = self.telemetry.trace_root(
                    now,
                    "remediation",
                    "anomaly",
                    &[
                        ("rule", self.cfg.tighten_slo.to_string()),
                        ("kind", "slo_burn".to_string()),
                    ],
                );
                let span = self.telemetry.span_begin_in(
                    now,
                    ctx,
                    "remediation",
                    "tighten_admission",
                    &[("scale", format!("{:.3}", self.cfg.tighten_scale))],
                );
                self.tightened = Some(OpenRemediation {
                    span,
                    ctx,
                    healthy_streak: 0,
                });
                let action = Action::TightenAdmission {
                    scale: self.cfg.tighten_scale,
                };
                self.record_action(now, ctx, &action, "SLO burning");
                actions.push(action);
            }
            Some(open) if burning => open.healthy_streak = 0,
            Some(open) => {
                open.healthy_streak += 1;
                if open.healthy_streak >= self.cfg.clear_after && self.guarded(now, "gateway:relax")
                {
                    let open = self.tightened.take().expect("matched Some");
                    self.telemetry
                        .span_end(now, open.span, &[("outcome", "relaxed".to_string())]);
                    self.record_action(
                        now,
                        open.ctx,
                        &Action::RelaxAdmission,
                        "SLO healthy streak reached clear_after",
                    );
                    actions.push(Action::RelaxAdmission);
                }
            }
            None => {}
        }
    }
}
