//! Flap guard: hysteresis, per-target cooldown, and a global action
//! budget over a sliding window.
//!
//! A remediation loop that acts on every verdict can oscillate — cordon,
//! uncordon, cordon again — doing more damage than the fault it chases.
//! The guard enforces two independent brakes:
//!
//! * **per-key cooldown** — after acting on a target (a node, a vGPU,
//!   the gateway), no further action on *that* target until `cooldown`
//!   has elapsed;
//! * **global budget** — at most `max_actions` allowed actions inside
//!   any sliding window of length `window`. When the budget is spent the
//!   controller degrades to observe-only (verdicts still logged, nothing
//!   executed) until the window drains, rather than thrashing.
//!
//! Both are property-tested: over arbitrary request sequences, no window
//! ever contains more than `max_actions` allowed actions, and no key is
//! ever allowed twice within `cooldown`.

use std::collections::{BTreeMap, VecDeque};

use ks_sim_core::time::{SimDuration, SimTime};

/// Why a proposed action was allowed or suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    Allowed,
    /// The target acted too recently; retry after its cooldown expires.
    Cooldown,
    /// The global window budget is spent; the loop is observe-only.
    BudgetExhausted,
}

impl GuardVerdict {
    /// Label for suppression counters.
    pub fn label(self) -> &'static str {
        match self {
            GuardVerdict::Allowed => "allowed",
            GuardVerdict::Cooldown => "cooldown",
            GuardVerdict::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// Sliding-window action budget plus per-key cooldown.
#[derive(Debug)]
pub struct FlapGuard {
    cooldown: SimDuration,
    window: SimDuration,
    max_actions: u32,
    /// Timestamps of allowed actions inside the current window.
    recent: VecDeque<SimTime>,
    /// Last allowed action per target key.
    last_by_key: BTreeMap<String, SimTime>,
    allowed_total: u64,
    suppressed_total: u64,
}

impl FlapGuard {
    pub fn new(cooldown: SimDuration, window: SimDuration, max_actions: u32) -> Self {
        assert!(max_actions >= 1, "budget must allow at least one action");
        assert!(!window.is_zero(), "budget window must be positive");
        FlapGuard {
            cooldown,
            window,
            max_actions,
            recent: VecDeque::new(),
            last_by_key: BTreeMap::new(),
            allowed_total: 0,
            suppressed_total: 0,
        }
    }

    /// Drops window entries older than `now − window`.
    fn prune(&mut self, now: SimTime) {
        while let Some(&t) = self.recent.front() {
            if now.saturating_since(t) > self.window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Whether the global budget is currently spent (observe-only mode).
    pub fn observe_only(&mut self, now: SimTime) -> bool {
        self.prune(now);
        self.recent.len() as u32 >= self.max_actions
    }

    /// Asks permission to act on `key` at `now`. An `Allowed` verdict
    /// *records* the action — call only when the action will execute.
    pub fn admit(&mut self, now: SimTime, key: &str) -> GuardVerdict {
        self.prune(now);
        if self.recent.len() as u32 >= self.max_actions {
            self.suppressed_total += 1;
            return GuardVerdict::BudgetExhausted;
        }
        if let Some(&last) = self.last_by_key.get(key) {
            if now.saturating_since(last) < self.cooldown {
                self.suppressed_total += 1;
                return GuardVerdict::Cooldown;
            }
        }
        self.recent.push_back(now);
        self.last_by_key.insert(key.to_string(), now);
        self.allowed_total += 1;
        GuardVerdict::Allowed
    }

    pub fn allowed_total(&self) -> u64 {
        self.allowed_total
    }

    pub fn suppressed_total(&self) -> u64 {
        self.suppressed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cooldown_blocks_rapid_repeat_on_same_key() {
        let mut g = FlapGuard::new(SimDuration::from_secs(30), SimDuration::from_secs(300), 10);
        let t0 = SimTime::from_secs(100);
        assert_eq!(g.admit(t0, "node-0"), GuardVerdict::Allowed);
        assert_eq!(
            g.admit(t0 + SimDuration::from_secs(10), "node-0"),
            GuardVerdict::Cooldown
        );
        // A different key is independent.
        assert_eq!(
            g.admit(t0 + SimDuration::from_secs(10), "node-1"),
            GuardVerdict::Allowed
        );
        // At exactly the cooldown boundary the key frees up.
        assert_eq!(
            g.admit(t0 + SimDuration::from_secs(30), "node-0"),
            GuardVerdict::Allowed
        );
    }

    #[test]
    fn budget_exhaustion_degrades_to_observe_only_then_drains() {
        let mut g = FlapGuard::new(SimDuration::ZERO, SimDuration::from_secs(60), 2);
        let t0 = SimTime::from_secs(10);
        assert_eq!(g.admit(t0, "a"), GuardVerdict::Allowed);
        assert_eq!(g.admit(t0, "b"), GuardVerdict::Allowed);
        assert!(g.observe_only(t0));
        assert_eq!(g.admit(t0, "c"), GuardVerdict::BudgetExhausted);
        // 61 s later the window drained and actions resume.
        let t1 = t0 + SimDuration::from_secs(61);
        assert!(!g.observe_only(t1));
        assert_eq!(g.admit(t1, "c"), GuardVerdict::Allowed);
        assert_eq!(g.allowed_total(), 3);
        assert_eq!(g.suppressed_total(), 1);
    }

    proptest! {
        /// Over ANY request sequence, every sliding window of length
        /// `window` contains at most `max_actions` allowed actions.
        #[test]
        fn window_budget_never_exceeded(
            max_actions in 1u32..6,
            window_s in 1u64..120,
            reqs in proptest::collection::vec((0u64..30, 0u8..5), 1..200),
        ) {
            let window = SimDuration::from_secs(window_s);
            let mut g = FlapGuard::new(SimDuration::ZERO, window, max_actions);
            let mut now = SimTime::ZERO;
            let mut allowed: Vec<SimTime> = Vec::new();
            for (gap_s, key) in reqs {
                now += SimDuration::from_secs(gap_s);
                if g.admit(now, &format!("k{key}")) == GuardVerdict::Allowed {
                    allowed.push(now);
                }
            }
            for (i, &t0) in allowed.iter().enumerate() {
                let inside = allowed[i..]
                    .iter()
                    .filter(|&&t| t.saturating_since(t0) <= window)
                    .count();
                prop_assert!(
                    inside <= max_actions as usize,
                    "window starting {t0:?} holds {inside} > {max_actions}"
                );
            }
        }

        /// No key is ever allowed twice within its cooldown, no matter
        /// how the requests interleave across keys.
        #[test]
        fn per_key_cooldown_always_respected(
            cooldown_s in 1u64..60,
            reqs in proptest::collection::vec((0u64..20, 0u8..4), 1..200),
        ) {
            let cooldown = SimDuration::from_secs(cooldown_s);
            let mut g = FlapGuard::new(cooldown, SimDuration::from_secs(3600), u32::MAX >> 1);
            let mut now = SimTime::ZERO;
            let mut last: BTreeMap<u8, SimTime> = BTreeMap::new();
            for (gap_s, key) in reqs {
                now += SimDuration::from_secs(gap_s);
                if g.admit(now, &format!("k{key}")) == GuardVerdict::Allowed {
                    if let Some(&prev) = last.get(&key) {
                        prop_assert!(
                            now.saturating_since(prev) >= cooldown,
                            "key {key} allowed {prev:?} then {now:?} inside cooldown"
                        );
                    }
                    last.insert(key, now);
                }
            }
        }
    }
}
