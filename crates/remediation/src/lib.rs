//! Closed-loop self-healing for the KubeShare control plane.
//!
//! Three pieces, composed by the host once per scrape tick:
//!
//! * [`detect::Detector`] — online anomaly detection over the
//!   [`ks_telemetry::Tsdb`]: per-series EWMA baselines with z-score
//!   thresholds, plus plain rate ceilings, with warmup/persistence so a
//!   single-sample spike never pages;
//! * [`controller::Controller`] — maps verdicts and SLO burn onto a
//!   graded action ladder (tighten admission → cordon → drain), every
//!   action causally traced back to the anomaly that triggered it;
//! * [`guard::FlapGuard`] — per-target cooldown and a global sliding
//!   window action budget; exhaustion degrades the loop to observe-only
//!   rather than oscillating.
//!
//! The crate deliberately depends only on `sim-core` and `telemetry` —
//! actions are plain values the host executes against the control plane
//! (`KubeShareSystem::cordon_node` / `drain_vgpu`,
//! `Gateway::set_admission_scale`), which keeps the decision logic
//! replayable and testable on synthetic series. The chaos soak wiring
//! lives in `ks-bench` (`--bin remediation`).

pub mod controller;
pub mod detect;
pub mod guard;

pub use controller::{Action, Controller, ControllerConfig};
pub use detect::{Anomaly, DetectRule, Detector, Signal};
pub use guard::{FlapGuard, GuardVerdict};

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim_core::time::{SimDuration, SimTime};
    use ks_telemetry::{Scraper, SloStatus, Telemetry};

    const SEC: SimDuration = SimDuration::from_secs(1);

    /// One z-score rule over per-node crash counters: rate over the last
    /// second (= one scrape), |z| > 4, warmup 5, persist 2.
    fn crash_rule() -> DetectRule {
        DetectRule::zscore(
            "node_crash_burn",
            "ks_node_failures_total",
            Signal::RateZScore { window: SEC },
            4.0,
        )
    }

    /// Advances one scrape tick: bumps the counter by `delta`, scrapes,
    /// evaluates. Returns the verdicts of this evaluation.
    fn tick(
        t: &Telemetry,
        scraper: &mut Scraper,
        det: &mut Detector,
        now: &mut SimTime,
        delta: u64,
    ) -> Vec<Anomaly> {
        *now += SEC;
        t.counter("ks_node_failures_total", &[("node", "n0")])
            .add(delta);
        scraper.force(*now, t);
        det.evaluate(*now, scraper.tsdb())
    }

    #[test]
    fn step_change_fires_once_after_persistence() {
        let t = Telemetry::enabled();
        let mut scraper = Scraper::new(SEC, 512);
        let mut det = Detector::new(vec![crash_rule()]);
        let mut now = SimTime::ZERO;
        // Steady baseline: 1 crash/s for 10 ticks.
        for _ in 0..10 {
            assert!(tick(&t, &mut scraper, &mut det, &mut now, 1).is_empty());
        }
        // Step to 11/s. First breaching tick: persistence not yet met.
        assert!(tick(&t, &mut scraper, &mut det, &mut now, 11).is_empty());
        // Second breaching tick: fires exactly one verdict.
        let fired = tick(&t, &mut scraper, &mut det, &mut now, 11);
        assert_eq!(fired.len(), 1);
        let a = &fired[0];
        assert_eq!(a.rule, "node_crash_burn");
        assert_eq!(a.label("node"), Some("n0"));
        assert!(a.z > 4.0, "step must look surprising: z = {}", a.z);
        assert!((a.value - 11.0).abs() < 1e-9);
        // Latched: the continuing breach does not re-fire...
        for _ in 0..5 {
            assert!(tick(&t, &mut scraper, &mut det, &mut now, 11).is_empty());
        }
        // ...and the frozen baseline still finds the step surprising
        // (the EWMA never absorbed the breaching samples).
        assert_eq!(det.fired_total(), 1);
        // After the burn ends and `clear` healthy ticks pass, a second
        // burn fires again.
        for _ in 0..4 {
            let _ = tick(&t, &mut scraper, &mut det, &mut now, 1);
        }
        let _ = tick(&t, &mut scraper, &mut det, &mut now, 20);
        let refired = tick(&t, &mut scraper, &mut det, &mut now, 20);
        assert_eq!(refired.len(), 1, "re-arms after clearing");
    }

    #[test]
    fn single_sample_spike_does_not_fire() {
        let t = Telemetry::enabled();
        let mut scraper = Scraper::new(SEC, 512);
        let mut det = Detector::new(vec![crash_rule()]);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            assert!(tick(&t, &mut scraper, &mut det, &mut now, 1).is_empty());
        }
        // One wild tick, then back to baseline: persistence (2) never
        // reached, so nothing fires — ever.
        assert!(tick(&t, &mut scraper, &mut det, &mut now, 50).is_empty());
        for _ in 0..10 {
            assert!(tick(&t, &mut scraper, &mut det, &mut now, 1).is_empty());
        }
        assert_eq!(det.fired_total(), 0);
    }

    #[test]
    fn slow_drift_stays_unsurprising() {
        let t = Telemetry::enabled();
        let mut scraper = Scraper::new(SEC, 512);
        let mut det = Detector::new(vec![DetectRule::zscore(
            "queue_depth_shift",
            "ks_queue_depth",
            Signal::GaugeZScore { window: SEC },
            4.0,
        )]);
        let mut now = SimTime::ZERO;
        // A gauge drifting up 1% per tick: the EWMA tracks it and the
        // z-score never crosses the threshold.
        let mut level = 10.0;
        for _ in 0..200 {
            now += SEC;
            level *= 1.01;
            t.gauge("ks_queue_depth", &[]).set(level);
            scraper.force(now, &t);
            let fired = det.evaluate(now, scraper.tsdb());
            assert!(fired.is_empty(), "drift fired at level {level:.2}");
        }
        assert_eq!(det.fired_total(), 0);
    }

    #[test]
    fn detection_survives_ring_buffer_eviction() {
        let t = Telemetry::enabled();
        // Tiny per-series capacity: the baseline phase alone overflows
        // the ring several times over.
        let mut scraper = Scraper::new(SEC, 8);
        let mut det = Detector::new(vec![crash_rule()]);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            assert!(tick(&t, &mut scraper, &mut det, &mut now, 1).is_empty());
        }
        assert!(
            scraper.tsdb().evicted() > 0,
            "test must actually cross eviction"
        );
        let _ = tick(&t, &mut scraper, &mut det, &mut now, 11);
        let fired = tick(&t, &mut scraper, &mut det, &mut now, 11);
        assert_eq!(fired.len(), 1, "eviction must not blind the detector");
    }

    #[test]
    fn threshold_rule_fires_without_baseline() {
        let t = Telemetry::enabled();
        let mut scraper = Scraper::new(SEC, 64);
        let mut det = Detector::new(vec![DetectRule::threshold(
            "guarantee_violations",
            "ks_violations_total",
            SEC,
            0.0,
        )]);
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            now += SEC;
            scraper.force(now, &t);
            t.counter("ks_violations_total", &[]).add(0);
            assert!(det.evaluate(now, scraper.tsdb()).is_empty());
        }
        for i in 0..2 {
            now += SEC;
            t.counter("ks_violations_total", &[]).inc();
            scraper.force(now, &t);
            let fired = det.evaluate(now, scraper.tsdb());
            assert_eq!(fired.len(), usize::from(i == 1), "persist = 2");
        }
    }

    fn anomaly(rule: &'static str, key: &'static str, val: &str, at: SimTime) -> Anomaly {
        Anomaly {
            rule,
            metric: "m",
            labels: vec![(key.to_string(), val.to_string())],
            value: 1.0,
            z: 9.0,
            at,
        }
    }

    #[test]
    fn controller_cordons_then_uncordons_with_hysteresis() {
        let cfg = ControllerConfig {
            clear_after: 3,
            cooldown: SimDuration::ZERO,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(cfg, Telemetry::enabled());
        let mut now = SimTime::from_secs(100);
        let a = anomaly("node_crash_burn", "node", "n0", now);
        let acts = c.step(now, std::slice::from_ref(&a), &[]);
        assert_eq!(
            acts,
            vec![Action::CordonNode {
                node: "n0".to_string()
            }]
        );
        // Re-verdicts on a cordoned node do not re-cordon.
        now += SEC;
        assert!(c.step(now, std::slice::from_ref(&a), &[]).is_empty());
        assert_eq!(c.cordoned_nodes(), vec!["n0"]);
        // Two healthy ticks: not enough. The third lifts the cordon.
        for i in 0..3 {
            now += SEC;
            let acts = c.step(now, &[], &[]);
            if i < 2 {
                assert!(acts.is_empty(), "hysteresis not yet met at tick {i}");
            } else {
                assert_eq!(
                    acts,
                    vec![Action::UncordonNode {
                        node: "n0".to_string()
                    }]
                );
            }
        }
        assert!(c.cordoned_nodes().is_empty());
    }

    #[test]
    fn disabled_controller_emits_nothing() {
        let cfg = ControllerConfig {
            enabled: false,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(cfg, Telemetry::enabled());
        let now = SimTime::from_secs(5);
        let burn = SloStatus {
            rule: "handoff_wait_p99",
            breaching: true,
            newly_fired: true,
        };
        let acts = c.step(
            now,
            &[
                anomaly("node_crash_burn", "node", "n0", now),
                anomaly("vgpu_throughput_drop", "gpu", "GPU-0", now),
            ],
            &[burn],
        );
        assert!(acts.is_empty());
        assert_eq!(c.actions_taken(), 0);
    }

    #[test]
    fn budget_exhaustion_goes_observe_only() {
        let cfg = ControllerConfig {
            cooldown: SimDuration::ZERO,
            budget_window: SimDuration::from_secs(600),
            max_actions: 2,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(cfg, Telemetry::enabled());
        let now = SimTime::from_secs(10);
        let verdicts: Vec<Anomaly> = (0..4)
            .map(|i| {
                let node: &'static str = ["n0", "n1", "n2", "n3"][i];
                anomaly("node_crash_burn", "node", node, now)
            })
            .collect();
        let acts = c.step(now, &verdicts, &[]);
        assert_eq!(acts.len(), 2, "budget caps the action burst");
        // Further verdicts inside the window: observe-only, no actions.
        let more = vec![anomaly("node_crash_burn", "node", "n9", now + SEC)];
        assert!(c.step(now + SEC, &more, &[]).is_empty());
    }

    #[test]
    fn slo_burn_tightens_then_relaxes() {
        let cfg = ControllerConfig {
            clear_after: 2,
            cooldown: SimDuration::ZERO,
            tighten_scale: 0.25,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(cfg, Telemetry::enabled());
        let mut now = SimTime::from_secs(50);
        let burn = |b: bool| SloStatus {
            rule: "handoff_wait_p99",
            breaching: b,
            newly_fired: b,
        };
        let acts = c.step(now, &[], &[burn(true)]);
        assert_eq!(acts, vec![Action::TightenAdmission { scale: 0.25 }]);
        assert!(c.is_tightened());
        // Still burning: no repeat action.
        now += SEC;
        assert!(c.step(now, &[], &[burn(true)]).is_empty());
        // Two clear evaluations relax.
        now += SEC;
        assert!(c.step(now, &[], &[burn(false)]).is_empty());
        now += SEC;
        assert_eq!(
            c.step(now, &[], &[burn(false)]),
            vec![Action::RelaxAdmission]
        );
        assert!(!c.is_tightened());
    }
}
