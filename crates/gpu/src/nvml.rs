//! NVML-style utilization sampling.
//!
//! The paper measures overall GPU utilization "by the GPU usage value
//! reported by the Nvidia NVML library tool" (§5.1, Fig. 9). NVML reports
//! the fraction of time during the sampling interval in which a kernel was
//! executing. The sampler below reproduces exactly that: it differentiates
//! the device's busy-time integral between consecutive polls.

use ks_sim_core::time::SimTime;
use ks_sim_core::timeseries::TimeSeries;

use crate::device::GpuDevice;

/// Polls one device and reports per-interval utilization in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct NvmlSampler {
    last_poll: SimTime,
    last_busy: f64,
    series: TimeSeries,
}

impl NvmlSampler {
    /// Creates a sampler whose first interval starts at `t0`.
    pub fn new(t0: SimTime) -> Self {
        NvmlSampler {
            last_poll: t0,
            last_busy: 0.0,
            series: TimeSeries::new(),
        }
    }

    /// Samples the device at `now`, returning the utilization over
    /// `[last_poll, now]` and recording it in the series. Returns `None`
    /// for a zero-length interval.
    pub fn poll(&mut self, now: SimTime, device: &GpuDevice) -> Option<f64> {
        let busy = device.busy_seconds(now);
        let interval = now.saturating_since(self.last_poll).as_secs_f64();
        if interval <= 0.0 {
            return None;
        }
        let util = ((busy - self.last_busy) / interval).clamp(0.0, 1.0);
        self.last_poll = now;
        self.last_busy = busy;
        self.series.push(now, util);
        Some(util)
    }

    /// All recorded samples.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;
    use crate::engine::KernelTag;
    use ks_sim_core::time::SimDuration;

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut g = GpuDevice::new("n", 0, GpuSpec::test_gpu(1 << 30));
        let c = g.attach();
        let mut s = NvmlSampler::new(SimTime::ZERO);

        // Busy 2s of the first 4s interval.
        let k = g
            .submit(SimTime::ZERO, c, SimDuration::from_secs(2), KernelTag(0))
            .unwrap()
            .unwrap();
        g.complete(k.end);
        let u = s.poll(SimTime::from_secs(4), &g).unwrap();
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");

        // Idle next 2s.
        let u2 = s.poll(SimTime::from_secs(6), &g).unwrap();
        assert_eq!(u2, 0.0);
        assert_eq!(s.series().len(), 2);
    }

    #[test]
    fn zero_interval_poll_is_none() {
        let g = GpuDevice::new("n", 0, GpuSpec::test_gpu(1 << 30));
        let mut s = NvmlSampler::new(SimTime::from_secs(1));
        assert!(s.poll(SimTime::from_secs(1), &g).is_none());
    }

    #[test]
    fn fully_busy_interval_is_one() {
        let mut g = GpuDevice::new("n", 0, GpuSpec::test_gpu(1 << 30));
        let c = g.attach();
        let mut s = NvmlSampler::new(SimTime::ZERO);
        let k = g
            .submit(SimTime::ZERO, c, SimDuration::from_secs(3), KernelTag(0))
            .unwrap()
            .unwrap();
        g.complete(k.end);
        let u = s.poll(SimTime::from_secs(3), &g).unwrap();
        assert_eq!(u, 1.0);
    }
}
