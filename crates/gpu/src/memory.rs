//! Device memory: a bump-pointer address space with per-context accounting.
//!
//! The paper shares GPU memory *by space* (§4.2): each container may use up
//! to `gpu_mem` of the device. The pool tracks per-context usage so the
//! vGPU device library's memory guard can enforce quotas, and the physical
//! capacity so native (unguarded) allocation still fails realistically when
//! the device itself is exhausted.

use std::collections::HashMap;

use crate::types::{ContextId, CudaError, DevicePtr};

/// One live allocation.
#[derive(Debug, Clone, Copy)]
struct Allocation {
    ctx: ContextId,
    bytes: u64,
}

/// The device's memory space.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    next_ptr: u64,
    allocations: HashMap<DevicePtr, Allocation>,
    per_ctx: HashMap<ContextId, u64>,
}

impl MemoryPool {
    /// Creates a pool with the given physical capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            next_ptr: 0x7f00_0000_0000, // decorative; real pointers look like this
            allocations: HashMap::new(),
            per_ctx: HashMap::new(),
        }
    }

    /// Physical capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated across all contexts.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free on the device.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Bytes currently allocated by one context.
    pub fn used_by(&self, ctx: ContextId) -> u64 {
        self.per_ctx.get(&ctx).copied().unwrap_or(0)
    }

    /// Allocates `bytes` for `ctx`. Fails with `OutOfMemory` when the device
    /// is exhausted, `InvalidValue` for zero-byte requests.
    pub fn alloc(&mut self, ctx: ContextId, bytes: u64) -> Result<DevicePtr, CudaError> {
        if bytes == 0 {
            return Err(CudaError::InvalidValue);
        }
        if self.used + bytes > self.capacity {
            return Err(CudaError::OutOfMemory {
                requested: bytes,
                available: self.free_bytes(),
            });
        }
        let ptr = DevicePtr(self.next_ptr);
        self.next_ptr += bytes.max(256); // 256-byte minimum granularity
        self.used += bytes;
        *self.per_ctx.entry(ctx).or_insert(0) += bytes;
        self.allocations.insert(ptr, Allocation { ctx, bytes });
        Ok(ptr)
    }

    /// Frees a pointer. The context must match the allocating context.
    pub fn free(&mut self, ctx: ContextId, ptr: DevicePtr) -> Result<u64, CudaError> {
        match self.allocations.get(&ptr) {
            Some(a) if a.ctx == ctx => {
                let bytes = a.bytes;
                self.allocations.remove(&ptr);
                self.used -= bytes;
                let e = self.per_ctx.get_mut(&ctx).expect("ctx accounted");
                *e -= bytes;
                if *e == 0 {
                    self.per_ctx.remove(&ctx);
                }
                Ok(bytes)
            }
            Some(_) => Err(CudaError::InvalidContext),
            None => Err(CudaError::InvalidValue),
        }
    }

    /// Releases every allocation owned by `ctx` (container teardown).
    /// Returns the number of bytes released.
    pub fn release_context(&mut self, ctx: ContextId) -> u64 {
        let released = self.used_by(ctx);
        self.allocations.retain(|_, a| a.ctx != ctx);
        self.per_ctx.remove(&ctx);
        self.used -= released;
        released
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ContextId = ContextId(1);
    const C2: ContextId = ContextId(2);

    #[test]
    fn alloc_and_free_round_trip() {
        let mut m = MemoryPool::new(1000);
        let p = m.alloc(C1, 400).unwrap();
        assert_eq!(m.used(), 400);
        assert_eq!(m.used_by(C1), 400);
        assert_eq!(m.free(C1, p).unwrap(), 400);
        assert_eq!(m.used(), 0);
        assert_eq!(m.used_by(C1), 0);
    }

    #[test]
    fn oom_when_device_full() {
        let mut m = MemoryPool::new(1000);
        m.alloc(C1, 800).unwrap();
        let err = m.alloc(C2, 300).unwrap_err();
        assert_eq!(
            err,
            CudaError::OutOfMemory {
                requested: 300,
                available: 200
            }
        );
        // Exact fit succeeds.
        m.alloc(C2, 200).unwrap();
        assert_eq!(m.free_bytes(), 0);
    }

    #[test]
    fn zero_byte_alloc_rejected() {
        let mut m = MemoryPool::new(1000);
        assert_eq!(m.alloc(C1, 0).unwrap_err(), CudaError::InvalidValue);
    }

    #[test]
    fn free_wrong_context_rejected() {
        let mut m = MemoryPool::new(1000);
        let p = m.alloc(C1, 100).unwrap();
        assert_eq!(m.free(C2, p).unwrap_err(), CudaError::InvalidContext);
        assert_eq!(m.used(), 100, "failed free must not change state");
    }

    #[test]
    fn double_free_rejected() {
        let mut m = MemoryPool::new(1000);
        let p = m.alloc(C1, 100).unwrap();
        m.free(C1, p).unwrap();
        assert_eq!(m.free(C1, p).unwrap_err(), CudaError::InvalidValue);
    }

    #[test]
    fn release_context_frees_everything() {
        let mut m = MemoryPool::new(1000);
        m.alloc(C1, 100).unwrap();
        m.alloc(C1, 200).unwrap();
        m.alloc(C2, 300).unwrap();
        assert_eq!(m.release_context(C1), 300);
        assert_eq!(m.used(), 300);
        assert_eq!(m.used_by(C1), 0);
        assert_eq!(m.used_by(C2), 300);
        assert_eq!(m.allocation_count(), 1);
    }

    #[test]
    fn pointers_are_unique() {
        let mut m = MemoryPool::new(10_000);
        let p1 = m.alloc(C1, 100).unwrap();
        let p2 = m.alloc(C1, 100).unwrap();
        assert_ne!(p1, p2);
    }
}
