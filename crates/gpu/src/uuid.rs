//! NVIDIA-style device UUIDs.
//!
//! Real GPUs expose a `GPU-xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx` UUID which
//! Kubernetes passes to containers via `NVIDIA_VISIBLE_DEVICES`. KubeShare's
//! DevMgr maintains the mapping between its virtual `GPUID` and this UUID
//! (paper §4.4), so the simulation reproduces the same two-level naming.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A physical GPU device UUID, as reported by the (simulated) driver.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuUuid(String);

impl GpuUuid {
    /// Deterministically derives a UUID from a node name and device index,
    /// shaped like NVML's `GPU-` UUIDs.
    pub fn derive(node: &str, index: u32) -> Self {
        // FNV-1a over the identity, expanded to 128 bits by two passes with
        // different offsets. Deterministic so traces are reproducible.
        fn fnv(seed: u64, data: &[u8]) -> u64 {
            let mut h = seed;
            for &b in data {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        }
        let ident = format!("{node}/{index}");
        let hi = fnv(0xcbf29ce484222325, ident.as_bytes());
        let lo = fnv(0x9e3779b97f4a7c15, ident.as_bytes());
        GpuUuid(format!(
            "GPU-{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (hi >> 32) as u32,
            (hi >> 16) as u16,
            hi as u16,
            (lo >> 48) as u16,
            lo & 0xffff_ffff_ffff
        ))
    }

    /// The UUID string (what `NVIDIA_VISIBLE_DEVICES` would carry).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GpuUuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(GpuUuid::derive("node-1", 0), GpuUuid::derive("node-1", 0));
    }

    #[test]
    fn distinct_per_device() {
        let a = GpuUuid::derive("node-1", 0);
        let b = GpuUuid::derive("node-1", 1);
        let c = GpuUuid::derive("node-2", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn shape_matches_nvml() {
        let u = GpuUuid::derive("n", 3).to_string();
        assert!(u.starts_with("GPU-"), "{u}");
        // GPU- + 8-4-4-4-12 hex groups
        let groups: Vec<&str> = u.trim_start_matches("GPU-").split('-').collect();
        assert_eq!(groups.len(), 5, "{u}");
        assert_eq!(groups[0].len(), 8);
        assert_eq!(groups[1].len(), 4);
        assert_eq!(groups[2].len(), 4);
        assert_eq!(groups[3].len(), 4);
        assert_eq!(groups[4].len(), 12);
        assert!(groups
            .iter()
            .all(|g| g.chars().all(|c| c.is_ascii_hexdigit())));
    }
}
