//! The kernel execution engine of a device.
//!
//! CUDA kernels from *different* contexts are serialized on a pre-MPS GPU:
//! only one context's kernel occupies the execution engine at a time. The
//! engine therefore models a single server with a FIFO queue of pending
//! kernel bursts. Time-multiplexing policy (who gets to *submit*) lives
//! above — natively, everyone submits freely; under KubeShare the vGPU
//! device library gates submissions with its token.

use std::collections::VecDeque;

use ks_sim_core::time::{SimDuration, SimTime};

use crate::types::ContextId;

/// Caller-supplied correlation tag carried through start/finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelTag(pub u64);

/// A kernel that just started executing; it will finish at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedKernel {
    /// Owning context.
    pub ctx: ContextId,
    /// Correlation tag from submit.
    pub tag: KernelTag,
    /// Completion instant — callers schedule their completion event here.
    pub end: SimTime,
}

/// A kernel that just finished executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishedKernel {
    /// Owning context.
    pub ctx: ContextId,
    /// Correlation tag from submit.
    pub tag: KernelTag,
    /// Time the kernel spent on the engine.
    pub ran_for: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    ctx: ContextId,
    tag: KernelTag,
    start: SimTime,
    end: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    ctx: ContextId,
    tag: KernelTag,
    dur: SimDuration,
}

/// Single-server FIFO kernel engine.
#[derive(Debug, Default)]
pub struct ExecEngine {
    running: Option<Running>,
    queue: VecDeque<Queued>,
}

impl ExecEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while a kernel occupies the engine.
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Context of the currently running kernel, if any.
    pub fn running_ctx(&self) -> Option<ContextId> {
        self.running.map(|r| r.ctx)
    }

    /// Completion time of the currently running kernel, if any.
    pub fn running_end(&self) -> Option<SimTime> {
        self.running.map(|r| r.end)
    }

    /// Number of queued (not yet started) kernels.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Submits a kernel burst. If the engine is idle it starts immediately
    /// and `Some(StartedKernel)` is returned (schedule its completion!);
    /// otherwise it queues.
    pub fn submit(
        &mut self,
        now: SimTime,
        ctx: ContextId,
        dur: SimDuration,
        tag: KernelTag,
    ) -> Option<StartedKernel> {
        if self.running.is_none() {
            let end = now + dur;
            self.running = Some(Running {
                ctx,
                tag,
                start: now,
                end,
            });
            Some(StartedKernel { ctx, tag, end })
        } else {
            self.queue.push_back(Queued { ctx, tag, dur });
            None
        }
    }

    /// Completes the running kernel (must be called exactly at its end
    /// time) and starts the next queued kernel, if any.
    ///
    /// # Panics
    /// Panics if nothing is running or `now` differs from the kernel's end.
    pub fn complete(&mut self, now: SimTime) -> (FinishedKernel, Option<StartedKernel>) {
        let r = self.running.take().expect("complete() with idle engine");
        assert_eq!(now, r.end, "complete() at wrong time");
        let finished = FinishedKernel {
            ctx: r.ctx,
            tag: r.tag,
            ran_for: r.end - r.start,
        };
        let next = self.queue.pop_front().map(|q| {
            let end = now + q.dur;
            self.running = Some(Running {
                ctx: q.ctx,
                tag: q.tag,
                start: now,
                end,
            });
            StartedKernel {
                ctx: q.ctx,
                tag: q.tag,
                end,
            }
        });
        (finished, next)
    }

    /// Drops every *queued* kernel belonging to `ctx` (context teardown).
    /// A kernel already running is not preempted (CUDA kernels are
    /// non-preemptive, paper §6). Returns the number of dropped kernels.
    pub fn drop_queued(&mut self, ctx: ContextId) -> usize {
        let before = self.queue.len();
        self.queue.retain(|q| q.ctx != ctx);
        before - self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ContextId = ContextId(1);
    const C2: ContextId = ContextId(2);

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn idle_engine_starts_immediately() {
        let mut e = ExecEngine::new();
        let started = e.submit(t(0), C1, d(5), KernelTag(7)).unwrap();
        assert_eq!(started.end, t(5));
        assert!(e.is_busy());
        assert_eq!(e.running_ctx(), Some(C1));
    }

    #[test]
    fn busy_engine_queues_fifo() {
        let mut e = ExecEngine::new();
        e.submit(t(0), C1, d(5), KernelTag(1));
        assert!(e.submit(t(1), C2, d(3), KernelTag(2)).is_none());
        assert!(e.submit(t(2), C1, d(2), KernelTag(3)).is_none());
        assert_eq!(e.queue_len(), 2);

        let (fin, next) = e.complete(t(5));
        assert_eq!(fin.tag, KernelTag(1));
        assert_eq!(fin.ran_for, d(5));
        let next = next.unwrap();
        assert_eq!(next.tag, KernelTag(2));
        assert_eq!(next.end, t(8));

        let (fin2, next2) = e.complete(t(8));
        assert_eq!(fin2.tag, KernelTag(2));
        assert_eq!(next2.unwrap().tag, KernelTag(3));

        let (_, next3) = e.complete(t(10));
        assert!(next3.is_none());
        assert!(!e.is_busy());
    }

    #[test]
    #[should_panic(expected = "complete() at wrong time")]
    fn complete_at_wrong_time_panics() {
        let mut e = ExecEngine::new();
        e.submit(t(0), C1, d(5), KernelTag(1));
        e.complete(t(4));
    }

    #[test]
    #[should_panic(expected = "idle engine")]
    fn complete_idle_panics() {
        let mut e = ExecEngine::new();
        e.complete(t(0));
    }

    #[test]
    fn drop_queued_spares_running() {
        let mut e = ExecEngine::new();
        e.submit(t(0), C1, d(5), KernelTag(1));
        e.submit(t(0), C1, d(5), KernelTag(2));
        e.submit(t(0), C2, d(5), KernelTag(3));
        assert_eq!(e.drop_queued(C1), 1);
        assert!(e.is_busy(), "running C1 kernel not preempted");
        assert_eq!(e.queue_len(), 1);
        let (_, next) = e.complete(t(5));
        assert_eq!(next.unwrap().ctx, C2);
    }
}
