//! Shared identifier and error types for the simulated GPU stack.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A CUDA context: one per container/process attached to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContextId(pub u64);

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx-{}", self.0)
    }
}

/// A device memory pointer returned by `cuMemAlloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DevicePtr(pub u64);

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

/// Errors surfaced by the simulated CUDA layer.
///
/// Mirrors the CUDA driver error codes the paper's device library interacts
/// with: memory over-allocation must fail with an out-of-memory error
/// (paper §4.5 — the frontend "simply throws out of memory exceptions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CudaError {
    /// `CUDA_ERROR_OUT_OF_MEMORY`: the device (or the container's memory
    /// quota) cannot satisfy the allocation.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes still available under the binding limit.
        available: u64,
    },
    /// `CUDA_ERROR_INVALID_CONTEXT`: the context is not attached.
    InvalidContext,
    /// `CUDA_ERROR_INVALID_VALUE`: bad pointer or zero-byte request.
    InvalidValue,
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CudaError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "CUDA_ERROR_OUT_OF_MEMORY: requested {requested} bytes, {available} available"
            ),
            CudaError::InvalidContext => write!(f, "CUDA_ERROR_INVALID_CONTEXT"),
            CudaError::InvalidValue => write!(f, "CUDA_ERROR_INVALID_VALUE"),
        }
    }
}

impl std::error::Error for CudaError {}

/// Number of bytes in one gibibyte, for readable device specs.
pub const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ContextId(3).to_string(), "ctx-3");
        assert_eq!(DevicePtr(0xdead).to_string(), "0x00000000dead");
        let e = CudaError::OutOfMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("OUT_OF_MEMORY"));
    }

    #[test]
    fn gib_constant() {
        assert_eq!(16 * GIB, 17_179_869_184);
    }
}
