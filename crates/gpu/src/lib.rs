//! `ks-gpu` — simulated NVIDIA GPUs for the KubeShare reproduction.
//!
//! The paper's device library operates purely at the CUDA API boundary:
//! it intercepts memory calls (`cuMemAlloc`, `cuArrayCreate`) and compute
//! calls (`cuLaunchKernel`, `cuLaunchGrid`) and decides whether the calling
//! container may proceed. This crate provides the device those calls land
//! on:
//!
//! * [`device::GpuDevice`] — execution engine (kernels from different
//!   contexts serialize, as on a pre-MPS GPU) + device memory pool +
//!   busy-time accounting per context and overall.
//! * [`memory::MemoryPool`] — per-context allocation accounting so memory
//!   quotas can be enforced above.
//! * [`nvml::NvmlSampler`] — interval utilization exactly as the NVML tool
//!   reports it (used for the paper's Fig. 9).
//! * [`uuid::GpuUuid`] — NVIDIA-shaped device UUIDs, the values KubeShare's
//!   DevMgr maps its virtual GPUIDs onto.
//!
//! # Example
//!
//! ```
//! use ks_gpu::device::{GpuDevice, GpuSpec};
//! use ks_gpu::engine::KernelTag;
//! use ks_sim_core::time::{SimDuration, SimTime};
//!
//! let mut gpu = GpuDevice::new("node-0", 0, GpuSpec::v100_16gb());
//! let ctx = gpu.attach();
//! gpu.mem_alloc(ctx, 1 << 30).unwrap();
//! let started = gpu
//!     .submit(SimTime::ZERO, ctx, SimDuration::from_millis(10), KernelTag(1))
//!     .unwrap()
//!     .unwrap();
//! let (finished, _) = gpu.complete(started.end);
//! assert_eq!(finished.ran_for, SimDuration::from_millis(10));
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod engine;
pub mod memory;
pub mod nvml;
pub mod types;
pub mod uuid;

pub use device::{GpuDevice, GpuSpec};
pub use engine::{FinishedKernel, KernelTag, StartedKernel};
pub use types::{ContextId, CudaError, DevicePtr, GIB};
pub use uuid::GpuUuid;
