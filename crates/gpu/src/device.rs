//! A simulated GPU device: execution engine + memory + usage accounting.

use std::collections::{HashMap, HashSet};

use ks_sim_core::time::{SimDuration, SimTime};
use ks_sim_core::timeseries::BusyIntegrator;

use crate::engine::{ExecEngine, FinishedKernel, KernelTag, StartedKernel};
use crate::memory::MemoryPool;
use crate::types::{ContextId, CudaError, DevicePtr, GIB};
use crate::uuid::GpuUuid;

/// Static description of a GPU model.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Marketing name, e.g. "Tesla V100-SXM2-16GB".
    pub name: String,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

impl GpuSpec {
    /// The paper's testbed GPU: NVIDIA Tesla V100 with 16 GB (§5.1).
    pub fn v100_16gb() -> Self {
        GpuSpec {
            name: "Tesla V100-SXM2-16GB".to_string(),
            memory_bytes: 16 * GIB,
        }
    }

    /// A small GPU useful in tests.
    pub fn test_gpu(memory_bytes: u64) -> Self {
        GpuSpec {
            name: "TestGPU".to_string(),
            memory_bytes,
        }
    }
}

/// A simulated physical GPU.
///
/// The device does not schedule itself: callers submit kernel bursts and
/// are handed [`StartedKernel`] records whose `end` times they must turn
/// into completion events (calling [`GpuDevice::complete`]). This keeps the
/// device usable from any event loop.
#[derive(Debug)]
pub struct GpuDevice {
    uuid: GpuUuid,
    index: u32,
    spec: GpuSpec,
    mem: MemoryPool,
    engine: ExecEngine,
    busy: BusyIntegrator,
    ctx_busy: HashMap<ContextId, SimDuration>,
    attached: HashSet<ContextId>,
    next_ctx: u64,
}

impl GpuDevice {
    /// Creates device `index` on node `node`.
    pub fn new(node: &str, index: u32, spec: GpuSpec) -> Self {
        GpuDevice {
            uuid: GpuUuid::derive(node, index),
            index,
            mem: MemoryPool::new(spec.memory_bytes),
            spec,
            engine: ExecEngine::new(),
            busy: BusyIntegrator::new(SimTime::ZERO, 0.0),
            ctx_busy: HashMap::new(),
            attached: HashSet::new(),
            next_ctx: 1,
        }
    }

    /// Driver-reported UUID.
    pub fn uuid(&self) -> &GpuUuid {
        &self.uuid
    }

    /// Index of the device on its node.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Static spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Read access to the memory pool.
    pub fn memory(&self) -> &MemoryPool {
        &self.mem
    }

    /// Attaches a new CUDA context (a container starting to use the GPU).
    pub fn attach(&mut self) -> ContextId {
        let ctx = ContextId(self.next_ctx);
        self.next_ctx += 1;
        self.attached.insert(ctx);
        self.ctx_busy.insert(ctx, SimDuration::ZERO);
        ctx
    }

    /// Detaches a context: frees its memory and drops its queued kernels.
    /// A kernel currently running is allowed to finish (non-preemptive).
    pub fn detach(&mut self, ctx: ContextId) {
        self.attached.remove(&ctx);
        self.mem.release_context(ctx);
        self.engine.drop_queued(ctx);
    }

    /// True while `ctx` is attached.
    pub fn is_attached(&self, ctx: ContextId) -> bool {
        self.attached.contains(&ctx)
    }

    /// Number of attached contexts.
    pub fn context_count(&self) -> usize {
        self.attached.len()
    }

    /// `cuMemAlloc` against the raw device (no quota — quotas are the vGPU
    /// device library's job).
    pub fn mem_alloc(&mut self, ctx: ContextId, bytes: u64) -> Result<DevicePtr, CudaError> {
        if !self.attached.contains(&ctx) {
            return Err(CudaError::InvalidContext);
        }
        self.mem.alloc(ctx, bytes)
    }

    /// `cuMemFree`.
    pub fn mem_free(&mut self, ctx: ContextId, ptr: DevicePtr) -> Result<u64, CudaError> {
        if !self.attached.contains(&ctx) {
            return Err(CudaError::InvalidContext);
        }
        self.mem.free(ctx, ptr)
    }

    /// Submits a kernel burst for execution. See [`ExecEngine::submit`].
    pub fn submit(
        &mut self,
        now: SimTime,
        ctx: ContextId,
        dur: SimDuration,
        tag: KernelTag,
    ) -> Result<Option<StartedKernel>, CudaError> {
        if !self.attached.contains(&ctx) {
            return Err(CudaError::InvalidContext);
        }
        let started = self.engine.submit(now, ctx, dur, tag);
        if started.is_some() {
            self.busy.set_level(now, 1.0);
        }
        Ok(started)
    }

    /// Completes the running kernel at its end time; returns the finished
    /// kernel and the next one started from the queue (if any).
    pub fn complete(&mut self, now: SimTime) -> (FinishedKernel, Option<StartedKernel>) {
        let (finished, next) = self.engine.complete(now);
        *self
            .ctx_busy
            .entry(finished.ctx)
            .or_insert(SimDuration::ZERO) += finished.ran_for;
        if next.is_none() {
            self.busy.set_level(now, 0.0);
        }
        (finished, next)
    }

    /// True while a kernel occupies the engine.
    pub fn is_busy(&self) -> bool {
        self.engine.is_busy()
    }

    /// Context currently occupying the engine, if any.
    pub fn running_ctx(&self) -> Option<ContextId> {
        self.engine.running_ctx()
    }

    /// Queued (not yet started) kernel count.
    pub fn queue_len(&self) -> usize {
        self.engine.queue_len()
    }

    /// Total busy seconds since t = 0 up to `now` (what NVML integrates).
    pub fn busy_seconds(&self, now: SimTime) -> f64 {
        self.busy.integral_until(now)
    }

    /// Cumulative engine time consumed by `ctx` in *completed* kernels.
    pub fn ctx_busy_total(&self, ctx: ContextId) -> SimDuration {
        self.ctx_busy
            .get(&ctx)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn dev() -> GpuDevice {
        GpuDevice::new("node-0", 0, GpuSpec::test_gpu(1000))
    }

    #[test]
    fn attach_detach_lifecycle() {
        let mut g = dev();
        let c = g.attach();
        assert!(g.is_attached(c));
        assert_eq!(g.context_count(), 1);
        g.mem_alloc(c, 500).unwrap();
        g.detach(c);
        assert!(!g.is_attached(c));
        assert_eq!(g.memory().used(), 0, "detach releases memory");
    }

    #[test]
    fn unattached_context_rejected() {
        let mut g = dev();
        let bad = ContextId(99);
        assert_eq!(g.mem_alloc(bad, 10).unwrap_err(), CudaError::InvalidContext);
        assert_eq!(
            g.submit(t(0), bad, d(1), KernelTag(0)).unwrap_err(),
            CudaError::InvalidContext
        );
    }

    #[test]
    fn busy_accounting() {
        let mut g = dev();
        let c = g.attach();
        let s = g.submit(t(0), c, d(4), KernelTag(1)).unwrap().unwrap();
        assert!(g.is_busy());
        g.complete(s.end);
        assert!(!g.is_busy());
        assert_eq!(g.busy_seconds(t(8)), 4.0);
        assert_eq!(g.ctx_busy_total(c), d(4));
    }

    #[test]
    fn serialized_contexts_share_engine() {
        let mut g = dev();
        let c1 = g.attach();
        let c2 = g.attach();
        let s1 = g.submit(t(0), c1, d(2), KernelTag(1)).unwrap().unwrap();
        assert!(g.submit(t(0), c2, d(2), KernelTag(2)).unwrap().is_none());
        let (f1, s2) = g.complete(s1.end);
        assert_eq!(f1.ctx, c1);
        let s2 = s2.unwrap();
        assert_eq!(s2.ctx, c2);
        g.complete(s2.end);
        assert_eq!(g.busy_seconds(t(4)), 4.0);
        assert_eq!(g.ctx_busy_total(c1), d(2));
        assert_eq!(g.ctx_busy_total(c2), d(2));
    }

    #[test]
    fn v100_spec() {
        let s = GpuSpec::v100_16gb();
        assert_eq!(s.memory_bytes, 16 * GIB);
        let g = GpuDevice::new("aws-node", 3, s);
        assert_eq!(g.index(), 3);
        assert!(g.uuid().as_str().starts_with("GPU-"));
    }
}
