//! Property-based tests for the GPU device model.

use ks_gpu::device::{GpuDevice, GpuSpec};
use ks_gpu::engine::KernelTag;
use ks_gpu::types::ContextId;
use ks_sim_core::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Memory conservation: used() always equals the sum of live allocations,
    /// and never exceeds capacity, across arbitrary alloc/free sequences.
    #[test]
    fn memory_conservation(ops in proptest::collection::vec((0u8..3, 1u64..400), 1..200)) {
        let mut g = GpuDevice::new("n", 0, GpuSpec::test_gpu(4096));
        let c1 = g.attach();
        let c2 = g.attach();
        let mut live: Vec<(ContextId, ks_gpu::DevicePtr, u64)> = Vec::new();
        let mut expected: u64 = 0;
        for (op, bytes) in ops {
            match op {
                0 => {
                    if let Ok(p) = g.mem_alloc(c1, bytes) {
                        live.push((c1, p, bytes));
                        expected += bytes;
                    }
                }
                1 => {
                    if let Ok(p) = g.mem_alloc(c2, bytes) {
                        live.push((c2, p, bytes));
                        expected += bytes;
                    }
                }
                _ => {
                    if let Some((ctx, p, b)) = live.pop() {
                        g.mem_free(ctx, p).unwrap();
                        expected -= b;
                    }
                }
            }
            prop_assert_eq!(g.memory().used(), expected);
            prop_assert!(g.memory().used() <= g.memory().capacity());
            let sum: u64 = live.iter().map(|&(_, _, b)| b).sum();
            prop_assert_eq!(sum, expected);
        }
    }

    /// Engine work conservation: total busy time equals the sum of all
    /// submitted kernel durations when the queue drains, regardless of the
    /// submission pattern, and per-context busy splits correctly.
    #[test]
    fn engine_work_conservation(durs in proptest::collection::vec((1u64..500, 0u8..3), 1..100)) {
        let mut g = GpuDevice::new("n", 0, GpuSpec::test_gpu(1 << 20));
        let ctxs = [g.attach(), g.attach(), g.attach()];
        let mut expected_total = SimDuration::ZERO;
        let mut expected_per = [SimDuration::ZERO; 3];
        let now = SimTime::ZERO;
        let mut pending = Vec::new();
        for (i, &(ms, who)) in durs.iter().enumerate() {
            let d = SimDuration::from_millis(ms);
            expected_total += d;
            expected_per[who as usize] += d;
            if let Some(s) = g
                .submit(now, ctxs[who as usize], d, KernelTag(i as u64))
                .unwrap()
            {
                pending.push(s);
            }
        }
        // Drain: repeatedly complete the running kernel.
        while let Some(s) = pending.pop() {
            let (_fin, next) = g.complete(s.end);
            if let Some(n) = next {
                pending.push(n);
            }
        }
        prop_assert!(!g.is_busy());
        let total_secs = expected_total.as_secs_f64();
        prop_assert!((g.busy_seconds(SimTime::from_secs(10_000)) - total_secs).abs() < 1e-6);
        for (i, &c) in ctxs.iter().enumerate() {
            prop_assert_eq!(g.ctx_busy_total(c), expected_per[i]);
        }
    }

    /// UUIDs are injective over a realistic node/device grid.
    #[test]
    fn uuid_injective(nodes in 1usize..20, gpus in 1u32..8) {
        let mut seen = std::collections::HashSet::new();
        for n in 0..nodes {
            for i in 0..gpus {
                let u = ks_gpu::GpuUuid::derive(&format!("node-{n}"), i);
                prop_assert!(seen.insert(u.to_string()), "duplicate UUID");
            }
        }
    }
}
