//! Property tests: metric aggregation must be order-independent, the two
//! export formats must agree for arbitrary registry contents, and TSDB
//! window queries must equal a from-scratch fold over the raw snapshots.

use ks_sim_core::time::{SimDuration, SimTime};
use ks_telemetry::snapshot::{MetricsSnapshot, SampleValue};
use ks_telemetry::tsdb::{quantile_from_buckets, Tsdb};
use ks_telemetry::{export, Telemetry};
use proptest::prelude::*;

/// One recording operation against a small fixed family of series.
#[derive(Debug, Clone)]
enum Op {
    CounterInc { series: usize, n: u64 },
    GaugeAdd { series: usize, delta: i32 },
    Observe { series: usize, millis: u16 },
}

const COUNTER_NAMES: [&str; 3] = [
    "ks_sched_decisions_total",
    "ks_devmgr_anchor_launch_total",
    "ks_vgpu_token_grants_total",
];
const GAUGE_NAMES: [&str; 2] = ["ks_devmgr_vgpu_pool", "ks_sched_queue_depth"];
const HISTO_NAMES: [&str; 2] = ["ks_sched_latency_seconds", "ks_vgpu_handoff_wait_seconds"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..COUNTER_NAMES.len(), 1u64..100).prop_map(|(series, n)| Op::CounterInc { series, n }),
        (0..GAUGE_NAMES.len(), -50i32..50)
            .prop_map(|(series, delta)| Op::GaugeAdd { series, delta }),
        (0..HISTO_NAMES.len(), 1u16..5000)
            .prop_map(|(series, millis)| Op::Observe { series, millis }),
    ]
}

fn counter_name(i: usize) -> &'static str {
    COUNTER_NAMES[i]
}

fn apply(t: &Telemetry, op: &Op) {
    match *op {
        Op::CounterInc { series, n } => t.counter(counter_name(series), &[]).add(n),
        Op::GaugeAdd { series, delta } => t.gauge(GAUGE_NAMES[series], &[]).add(delta as f64),
        // Dividing by a power of two keeps every observation exactly
        // representable, so histogram sums are order-exact; a non-dyadic
        // divisor would make the f64 sum depend on addition order in the
        // last bit.
        Op::Observe { series, millis } => t
            .histogram_seconds(HISTO_NAMES[series], &[])
            .observe(millis as f64 / 1024.0),
    }
}

proptest! {
    /// Counters and histograms aggregate identically under any permutation
    /// of the recording order; gauge `add` deltas commute. (Series that
    /// never receive an op are absent from both snapshots, which is also
    /// order-independent.)
    #[test]
    fn aggregation_is_order_independent(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let forward = Telemetry::enabled();
        for op in &ops {
            apply(&forward, op);
        }

        // A deterministic permutation derived from the seed.
        let mut permuted: Vec<&Op> = ops.iter().collect();
        let n = permuted.len();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            permuted.swap(i, j);
        }
        let shuffled = Telemetry::enabled();
        for op in permuted {
            apply(&shuffled, op);
        }

        // Gauge sums accumulate floating-point error across orderings only
        // through association; with integral deltas the sums are exact.
        prop_assert_eq!(forward.snapshot(), shuffled.snapshot());
    }

    /// For arbitrary registry contents the two export formats agree on
    /// every flattened sample.
    #[test]
    fn exports_agree_for_arbitrary_contents(
        ops in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let t = Telemetry::enabled();
        for op in &ops {
            apply(&t, op);
        }
        let snap = t.snapshot();
        let prom = export::to_prometheus_text(&snap);
        let json = export::to_json(&snap);
        prop_assert!(export::verify_agreement(&prom, &json).is_ok());
    }
}

// ---------------------------------------------------------------------------
// TSDB window queries vs a from-scratch fold over raw snapshots.

const TSDB_COUNTER: &str = "ks_prop_total";
const TSDB_HISTO: &str = "ks_prop_wait_seconds";

/// Reference implementation of the windowing rule (DESIGN.md §11.3),
/// folding over the raw `(time, snapshot)` log instead of the ring store:
/// head = latest snapshot at or before `now` containing the series,
/// baseline = latest at or before `now − window` (zero if the window
/// reaches before the first scrape), answer = head − baseline.
fn spec_delta(
    log: &[(SimTime, MetricsSnapshot)],
    name: &str,
    window: SimDuration,
    now: SimTime,
) -> Option<SampleValue> {
    let find_at = |limit: SimTime| {
        log.iter()
            .rev()
            .filter(|(at, _)| *at <= limit)
            .find_map(|(_, snap)| snap.samples().iter().find(|s| s.name == name).cloned())
    };
    let head = find_at(now)?;
    let floor = now.as_micros().checked_sub(window.as_micros());
    match floor.and_then(|f| find_at(SimTime::from_micros(f))) {
        Some(base) => head.value.monotonic_sub(&base.value),
        // No baseline: the cumulative value itself is the delta from zero.
        None => Some(head.value),
    }
}

proptest! {
    /// The ring-buffer TSDB's windowed `rate` and `quantile` equal a
    /// from-scratch fold over the raw snapshot log, for arbitrary scrape
    /// schedules, op mixes, and query windows (capacity high enough that
    /// nothing the query needs has been evicted).
    #[test]
    fn tsdb_window_queries_match_snapshot_fold(
        // (gap to next scrape in s, counter incs, histogram obs in ms)
        steps in proptest::collection::vec(
            (1u64..40, 0u64..5, proptest::collection::vec(1u32..60_000, 0..4)),
            1..25,
        ),
        window_s in 1u64..400,
        now_off in 0u64..50,
    ) {
        let t = Telemetry::enabled();
        let mut db = Tsdb::new(64);
        let mut log: Vec<(SimTime, MetricsSnapshot)> = Vec::new();
        let mut at = SimTime::ZERO;
        for (gap, incs, obs) in &steps {
            at += SimDuration::from_secs(*gap);
            t.counter(TSDB_COUNTER, &[]).add(*incs);
            for ms in obs {
                t.histogram_seconds(TSDB_HISTO, &[]).observe(*ms as f64 / 1000.0);
            }
            let snap = t.snapshot();
            db.ingest(at, &snap);
            log.push((at, snap));
        }
        let window = SimDuration::from_secs(window_s);
        let now = at + SimDuration::from_secs(now_off);

        // Counter rate.
        let expect_rate = match spec_delta(&log, TSDB_COUNTER, window, now) {
            Some(SampleValue::Counter(d)) => Some(d as f64 / window.as_secs_f64()),
            _ => None,
        };
        let got_rate = db.rate(TSDB_COUNTER, &[], window, now);
        prop_assert_eq!(got_rate, expect_rate);

        // Histogram quantile over the windowed delta.
        for q in [0.5, 0.99] {
            let expect_q = match spec_delta(&log, TSDB_HISTO, window, now) {
                Some(SampleValue::Histogram { buckets, overflow, .. }) =>
                    quantile_from_buckets(&buckets, overflow, q),
                _ => None,
            };
            let got_q = db.quantile(TSDB_HISTO, &[], q, window, now);
            prop_assert_eq!(got_q, expect_q);
        }
    }
}

// ---- flight recorder properties (DESIGN.md §15) ----

mod flight_recorder_props {
    use ks_sim_core::time::SimTime;
    use ks_telemetry::provenance::{DecisionKind, Outcome, SchedProv, SmallStr};
    use ks_telemetry::FlightRecorder;
    use proptest::prelude::*;

    /// Records one synthetic schedule decision for `sp`.
    fn push(rec: &FlightRecorder, sp: u64, considered: usize) {
        let mut prov = SchedProv::for_recorder(rec);
        prov.add_considered(considered);
        prov.choose_append("vgpu-1", "best_fit", 0.5);
        rec.record_scratch(
            SimTime::ZERO,
            sp,
            1000 + sp,
            DecisionKind::Schedule,
            Outcome::Placed {
                target: SmallStr::from("vgpu-1"),
            },
            &mut prov,
        );
    }

    proptest! {
        /// The ring never retains more than `capacity` records no matter
        /// how many are pushed; retained + evicted always equals pushed;
        /// the survivors are exactly the newest `min(n, capacity)` in
        /// oldest-first seq order.
        #[test]
        fn ring_is_bounded_any_capacity(
            capacity in 1usize..48,
            sps in proptest::collection::vec(0u64..6, 0..200),
        ) {
            let rec = FlightRecorder::with_capacity(capacity);
            for (i, sp) in sps.iter().enumerate() {
                push(&rec, *sp, i);
            }
            let n = sps.len();
            let retained = rec.records();
            prop_assert!(retained.len() <= capacity, "ring exceeded capacity");
            prop_assert_eq!(retained.len(), n.min(capacity));
            prop_assert_eq!(rec.recorded(), n as u64);
            prop_assert_eq!(rec.evicted(), (n - n.min(capacity)) as u64);
            for (k, r) in retained.iter().enumerate() {
                prop_assert_eq!(r.seq, (n - retained.len() + k + 1) as u64);
            }
        }

        /// `for_sharepod` preserves per-sharePod record order: it returns
        /// the retained records of that sharePod exactly in submission
        /// (seq) order, and joins the same trace id every time.
        #[test]
        fn per_sharepod_order_preserved(
            capacity in 1usize..48,
            sps in proptest::collection::vec(0u64..6, 0..200),
        ) {
            let rec = FlightRecorder::with_capacity(capacity);
            for (i, sp) in sps.iter().enumerate() {
                push(&rec, *sp, i);
            }
            let retained = rec.records();
            for sp in 0u64..6 {
                let per = rec.for_sharepod(sp);
                let expect: Vec<u64> =
                    retained.iter().filter(|r| r.sp == sp).map(|r| r.seq).collect();
                let got: Vec<u64> = per.iter().map(|r| r.seq).collect();
                prop_assert_eq!(got, expect, "sharePod {} out of order", sp);
                prop_assert!(per.windows(2).all(|w| w[0].seq < w[1].seq));
                prop_assert!(per.iter().all(|r| r.trace == 1000 + sp));
                prop_assert_eq!(rec.for_trace(1000 + sp).len(), per.len());
            }
        }
    }
}
