//! Property tests: metric aggregation must be order-independent, and the
//! two export formats must agree for arbitrary registry contents.

use ks_telemetry::{export, Telemetry};
use proptest::prelude::*;

/// One recording operation against a small fixed family of series.
#[derive(Debug, Clone)]
enum Op {
    CounterInc { series: usize, n: u64 },
    GaugeAdd { series: usize, delta: i32 },
    Observe { series: usize, millis: u16 },
}

const COUNTER_NAMES: [&str; 3] = [
    "ks_sched_decisions_total",
    "ks_devmgr_anchor_launch_total",
    "ks_vgpu_token_grants_total",
];
const GAUGE_NAMES: [&str; 2] = ["ks_devmgr_vgpu_pool", "ks_sched_queue_depth"];
const HISTO_NAMES: [&str; 2] = ["ks_sched_latency_seconds", "ks_vgpu_handoff_wait_seconds"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..COUNTER_NAMES.len(), 1u64..100).prop_map(|(series, n)| Op::CounterInc { series, n }),
        (0..GAUGE_NAMES.len(), -50i32..50)
            .prop_map(|(series, delta)| Op::GaugeAdd { series, delta }),
        (0..HISTO_NAMES.len(), 1u16..5000)
            .prop_map(|(series, millis)| Op::Observe { series, millis }),
    ]
}

fn counter_name(i: usize) -> &'static str {
    COUNTER_NAMES[i]
}

fn apply(t: &Telemetry, op: &Op) {
    match *op {
        Op::CounterInc { series, n } => t.counter(counter_name(series), &[]).add(n),
        Op::GaugeAdd { series, delta } => t.gauge(GAUGE_NAMES[series], &[]).add(delta as f64),
        // Dividing by a power of two keeps every observation exactly
        // representable, so histogram sums are order-exact; a non-dyadic
        // divisor would make the f64 sum depend on addition order in the
        // last bit.
        Op::Observe { series, millis } => t
            .histogram_seconds(HISTO_NAMES[series], &[])
            .observe(millis as f64 / 1024.0),
    }
}

proptest! {
    /// Counters and histograms aggregate identically under any permutation
    /// of the recording order; gauge `add` deltas commute. (Series that
    /// never receive an op are absent from both snapshots, which is also
    /// order-independent.)
    #[test]
    fn aggregation_is_order_independent(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let forward = Telemetry::enabled();
        for op in &ops {
            apply(&forward, op);
        }

        // A deterministic permutation derived from the seed.
        let mut permuted: Vec<&Op> = ops.iter().collect();
        let n = permuted.len();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            permuted.swap(i, j);
        }
        let shuffled = Telemetry::enabled();
        for op in permuted {
            apply(&shuffled, op);
        }

        // Gauge sums accumulate floating-point error across orderings only
        // through association; with integral deltas the sums are exact.
        prop_assert_eq!(forward.snapshot(), shuffled.snapshot());
    }

    /// For arbitrary registry contents the two export formats agree on
    /// every flattened sample.
    #[test]
    fn exports_agree_for_arbitrary_contents(
        ops in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let t = Telemetry::enabled();
        for op in &ops {
            apply(&t, op);
        }
        let snap = t.snapshot();
        let prom = export::to_prometheus_text(&snap);
        let json = export::to_json(&snap);
        prop_assert!(export::verify_agreement(&prom, &json).is_ok());
    }
}
