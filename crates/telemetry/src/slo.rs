//! Declarative SLO rules with burn-rate alerting over the [`crate::tsdb`].
//!
//! An [`SloEngine`] holds a catalogue of [`SloRule`]s and is evaluated
//! periodically (typically right after a [`crate::tsdb::Scraper`] tick)
//! against the ring-buffer store. Three condition shapes cover the
//! catalogue:
//!
//! * [`SloCondition::QuantileBelow`] — a windowed histogram quantile must
//!   stay under a threshold (`p99(ks_sched_decision_seconds) < 2 s`);
//! * [`SloCondition::RateAtMost`] — a windowed counter rate must not
//!   exceed a ceiling (`rate(ks_token_guarantee_violations_total) == 0`);
//! * [`SloCondition::BurnRate`] — the Google-SRE multi-window form: the
//!   budget must be burning over *both* a long and a short window before
//!   the alert fires, so a long-resolved spike cannot page.
//!
//! Alerts are edge-triggered with re-arm: a rule fires once when it
//! transitions healthy → breaching (emitting a `slo/alert` trace event —
//! causally linked to nothing, it is a root-level observation — and
//! bumping `ks_slo_alerts_total{rule}`), emits `slo/resolve` when it
//! clears, and can fire again afterwards. Missing series never fire:
//! absence of evidence is not a breach.

use ks_sim_core::time::{SimDuration, SimTime};

use crate::tsdb::Tsdb;
use crate::Telemetry;

/// A rule's breach predicate. Metric/label names are `'static` so fired
/// alerts can be stamped into the tracer, whose field keys are static.
#[derive(Debug, Clone)]
pub enum SloCondition {
    /// `quantile(metric{labels}, q)` over `window` must stay `< threshold`.
    QuantileBelow {
        metric: &'static str,
        labels: &'static [(&'static str, &'static str)],
        q: f64,
        window: SimDuration,
        threshold: f64,
    },
    /// `rate(metric{labels})` over `window` must stay `≤ max_per_sec`.
    RateAtMost {
        metric: &'static str,
        labels: &'static [(&'static str, &'static str)],
        window: SimDuration,
        max_per_sec: f64,
    },
    /// Multi-window burn rate: breaches only while `rate > max_per_sec`
    /// over **both** the long and the short window.
    BurnRate {
        metric: &'static str,
        labels: &'static [(&'static str, &'static str)],
        long_window: SimDuration,
        short_window: SimDuration,
        max_per_sec: f64,
    },
}

impl SloCondition {
    /// Whether the condition is breached at `now`. Missing data → false.
    fn breached(&self, tsdb: &Tsdb, now: SimTime) -> bool {
        match self {
            SloCondition::QuantileBelow {
                metric,
                labels,
                q,
                window,
                threshold,
            } => tsdb
                .quantile(metric, labels, *q, *window, now)
                .is_some_and(|v| v >= *threshold),
            SloCondition::RateAtMost {
                metric,
                labels,
                window,
                max_per_sec,
            } => tsdb
                .rate(metric, labels, *window, now)
                .is_some_and(|r| r > *max_per_sec),
            SloCondition::BurnRate {
                metric,
                labels,
                long_window,
                short_window,
                max_per_sec,
            } => {
                let long = tsdb.rate(metric, labels, *long_window, now);
                let short = tsdb.rate(metric, labels, *short_window, now);
                long.is_some_and(|r| r > *max_per_sec) && short.is_some_and(|r| r > *max_per_sec)
            }
        }
    }

    fn metric(&self) -> &'static str {
        match self {
            SloCondition::QuantileBelow { metric, .. }
            | SloCondition::RateAtMost { metric, .. }
            | SloCondition::BurnRate { metric, .. } => metric,
        }
    }
}

/// A named SLO with its breach predicate.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Stable identifier, used as the `rule` label on alerts.
    pub name: &'static str,
    /// Human-readable objective, for reports.
    pub objective: &'static str,
    pub condition: SloCondition,
}

#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    active: bool,
    fired: u64,
}

/// The outcome of one rule at one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloStatus {
    pub rule: &'static str,
    pub breaching: bool,
    /// True only on the evaluation where the rule transitioned into breach.
    pub newly_fired: bool,
}

/// Evaluates a rule catalogue against a [`Tsdb`], tracking per-rule
/// active/re-arm state across evaluations.
#[derive(Debug)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    state: Vec<RuleState>,
}

impl SloEngine {
    pub fn new(rules: Vec<SloRule>) -> Self {
        let state = vec![RuleState::default(); rules.len()];
        SloEngine { rules, state }
    }

    /// The default KubeShare rule catalogue (DESIGN.md §11.4). Thresholds
    /// are deliberately generous: on a healthy run every rule must stay
    /// quiet; they exist to catch pathologies, not to tune noise.
    pub fn kubeshare_catalogue() -> Self {
        use SloCondition::*;
        SloEngine::new(vec![
            SloRule {
                name: "sched_decision_p99",
                objective: "p99 scheduler decision latency < 2s over 1m",
                condition: QuantileBelow {
                    metric: "ks_sched_decision_seconds",
                    labels: &[],
                    q: 0.99,
                    window: SimDuration::from_secs(60),
                    threshold: 2.0,
                },
            },
            SloRule {
                name: "sharepod_startup_p99",
                objective: "p99 SharePod submission-to-running < 30s over 5m",
                condition: QuantileBelow {
                    metric: "ks_sharepod_startup_seconds",
                    labels: &[],
                    q: 0.99,
                    window: SimDuration::from_secs(300),
                    threshold: 30.0,
                },
            },
            SloRule {
                name: "token_guarantee",
                objective: "zero token-guarantee violations over 1m",
                condition: RateAtMost {
                    metric: "ks_token_guarantee_violations_total",
                    labels: &[],
                    window: SimDuration::from_secs(60),
                    max_per_sec: 0.0,
                },
            },
            SloRule {
                name: "handoff_wait_p99",
                objective: "p99 token handoff wait < 5s over 1m",
                condition: QuantileBelow {
                    metric: "ks_vgpu_handoff_wait_seconds",
                    labels: &[],
                    q: 0.99,
                    window: SimDuration::from_secs(60),
                    threshold: 5.0,
                },
            },
            SloRule {
                name: "pod_failures",
                objective: "zero pod failures over 1m",
                condition: RateAtMost {
                    metric: "ks_cluster_pod_lifecycle_total",
                    labels: &[("phase", "failed")],
                    window: SimDuration::from_secs(60),
                    max_per_sec: 0.0,
                },
            },
            SloRule {
                name: "node_outage_burn",
                objective: "no node-crash budget burn over 5m AND 1m",
                condition: BurnRate {
                    metric: "ks_chaos_faults_total",
                    labels: &[("kind", "node_crash")],
                    long_window: SimDuration::from_secs(300),
                    short_window: SimDuration::from_secs(60),
                    max_per_sec: 0.0,
                },
            },
        ])
    }

    /// The catalogue.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule at `now`. Transitions into breach emit a
    /// `slo/alert` trace event and bump `ks_slo_alerts_total{rule}` on
    /// `telemetry`; transitions out emit `slo/resolve` and re-arm.
    pub fn evaluate(&mut self, now: SimTime, tsdb: &Tsdb, telemetry: &Telemetry) -> Vec<SloStatus> {
        let mut out = Vec::with_capacity(self.rules.len());
        for (rule, state) in self.rules.iter().zip(self.state.iter_mut()) {
            let breaching = rule.condition.breached(tsdb, now);
            let newly_fired = breaching && !state.active;
            if newly_fired {
                state.fired += 1;
                telemetry
                    .counter("ks_slo_alerts_total", &[("rule", rule.name)])
                    .inc();
                telemetry.trace_event(
                    now,
                    "slo",
                    "alert",
                    &[
                        ("rule", rule.name.to_string()),
                        ("metric", rule.condition.metric().to_string()),
                        ("objective", rule.objective.to_string()),
                    ],
                );
            } else if !breaching && state.active {
                telemetry.trace_event(now, "slo", "resolve", &[("rule", rule.name.to_string())]);
            }
            state.active = breaching;
            out.push(SloStatus {
                rule: rule.name,
                breaching,
                newly_fired,
            });
        }
        out
    }

    /// Times `rule` transitioned into breach so far.
    pub fn fired(&self, rule: &str) -> u64 {
        self.rules
            .iter()
            .position(|r| r.name == rule)
            .map(|i| self.state[i].fired)
            .unwrap_or(0)
    }

    /// Total alert firings across all rules.
    pub fn fired_total(&self) -> u64 {
        self.state.iter().map(|s| s.fired).sum()
    }

    /// Whether `rule` is currently breaching.
    pub fn active(&self, rule: &str) -> bool {
        self.rules
            .iter()
            .position(|r| r.name == rule)
            .map(|i| self.state[i].active)
            .unwrap_or(false)
    }

    /// One-line-per-rule report at the most recent evaluation state.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (rule, state) in self.rules.iter().zip(&self.state) {
            s.push_str(&format!(
                "{:<22} {:<8} fired={:<3} {}\n",
                rule.name,
                if state.active { "BREACH" } else { "ok" },
                state.fired,
                rule.objective,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn rate_rule_fires_once_and_rearms() {
        let t = Telemetry::enabled();
        let c = t.counter("ks_token_guarantee_violations_total", &[]);
        let mut db = Tsdb::new(64);
        let mut engine = SloEngine::new(vec![SloRule {
            name: "token_guarantee",
            objective: "zero violations",
            condition: SloCondition::RateAtMost {
                metric: "ks_token_guarantee_violations_total",
                labels: &[],
                window: SimDuration::from_secs(10),
                max_per_sec: 0.0,
            },
        }]);

        db.ingest(s(0), &t.snapshot());
        let st = engine.evaluate(s(0), &db, &t);
        assert!(!st[0].breaching);

        // Violation appears: fires exactly once while breaching.
        c.inc();
        db.ingest(s(5), &t.snapshot());
        assert!(engine.evaluate(s(5), &db, &t)[0].newly_fired);
        db.ingest(s(8), &t.snapshot());
        let st = engine.evaluate(s(8), &db, &t);
        assert!(st[0].breaching && !st[0].newly_fired);
        assert_eq!(engine.fired("token_guarantee"), 1);

        // Window slides past the violation: resolves and re-arms.
        db.ingest(s(30), &t.snapshot());
        assert!(!engine.evaluate(s(30), &db, &t)[0].breaching);
        assert!(!engine.active("token_guarantee"));

        // Second violation fires again.
        c.inc();
        db.ingest(s(31), &t.snapshot());
        assert!(engine.evaluate(s(31), &db, &t)[0].newly_fired);
        assert_eq!(engine.fired_total(), 2);

        // Alert counter and trace events were emitted.
        assert_eq!(
            t.snapshot()
                .counter_value("ks_slo_alerts_total", &[("rule", "token_guarantee")]),
            Some(2)
        );
        let alerts = t
            .trace_events()
            .into_iter()
            .filter(|e| e.subsystem == "slo" && e.name == "alert")
            .count();
        assert_eq!(alerts, 2);
    }

    #[test]
    fn burn_rate_needs_both_windows() {
        let t = Telemetry::enabled();
        let c = t.counter("ks_chaos_faults_total", &[("kind", "node_crash")]);
        let mut db = Tsdb::new(256);
        let mut engine = SloEngine::new(vec![SloRule {
            name: "node_outage_burn",
            objective: "no crash burn",
            condition: SloCondition::BurnRate {
                metric: "ks_chaos_faults_total",
                labels: &[("kind", "node_crash")],
                long_window: SimDuration::from_secs(100),
                short_window: SimDuration::from_secs(10),
                max_per_sec: 0.0,
            },
        }]);

        // Crash at t=50: both windows see it → breach.
        c.inc();
        db.ingest(s(50), &t.snapshot());
        assert!(engine.evaluate(s(50), &db, &t)[0].newly_fired);

        // t=80: still in the long window but outside the short one —
        // the multi-window form has already stopped paging.
        db.ingest(s(80), &t.snapshot());
        assert!(!engine.evaluate(s(80), &db, &t)[0].breaching);
    }

    #[test]
    fn quantile_rule_ignores_missing_series() {
        let t = Telemetry::enabled();
        let db = Tsdb::new(8);
        let mut engine = SloEngine::kubeshare_catalogue();
        let st = engine.evaluate(s(10), &db, &t);
        assert!(st.iter().all(|r| !r.breaching), "empty TSDB must not page");
        assert_eq!(engine.fired_total(), 0);
        assert!(engine.rules().len() >= 5);
    }

    #[test]
    fn quantile_rule_fires_on_slow_latencies() {
        let t = Telemetry::enabled();
        let h = t.histogram_seconds("ks_sched_decision_seconds", &[]);
        let mut db = Tsdb::new(64);
        let mut engine = SloEngine::kubeshare_catalogue();

        for _ in 0..50 {
            h.observe(0.001);
        }
        db.ingest(s(10), &t.snapshot());
        assert!(!engine.evaluate(s(10), &db, &t)[0].breaching);

        for _ in 0..50 {
            h.observe(10.0);
        }
        db.ingest(s(20), &t.snapshot());
        let st = engine.evaluate(s(20), &db, &t);
        let sched = st.iter().find(|r| r.rule == "sched_decision_p99").unwrap();
        assert!(sched.breaching && sched.newly_fired);
        assert!(engine.render().contains("BREACH"));
    }
}
