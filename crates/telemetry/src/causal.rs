//! Causal trace analysis: parent→child span trees, critical-path
//! attribution, and a Chrome-trace (`chrome://tracing` / Perfetto) JSON
//! exporter.
//!
//! The tracer ([`crate::trace`]) records a flat event buffer; this module
//! reconstructs, per trace id, the span tree a SharePod's lifecycle
//! produced (submission → scheduling → vGPU creation → pod creation →
//! token grants → termination) and answers "where did the latency go":
//! [`TraceTree::critical_path`] attributes every instant of the root span
//! to exactly one span (the deepest one active), so the self-times sum to
//! the end-to-end latency exactly.

use std::collections::BTreeMap;

use ks_sim_core::time::{SimDuration, SimTime};

use crate::trace::{EventKind, TraceEvent};

/// One reconstructed span of a trace tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub span: u64,
    /// Parent span id (0 for the root).
    pub parent: u64,
    pub subsystem: &'static str,
    pub name: &'static str,
    pub begin: SimTime,
    /// End timestamp; for spans still open at the end of the run this is
    /// the latest event time seen in the trace.
    pub end: SimTime,
    /// False if no `SpanEnd` was recorded (still open / run ended first).
    pub closed: bool,
    /// Begin fields followed by end fields.
    pub fields: Vec<(&'static str, String)>,
    /// Child span ids, ordered by begin time.
    pub children: Vec<u64>,
}

impl SpanNode {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.begin)
    }

    /// `subsystem/name` label used by renderings and the Chrome export.
    pub fn label(&self) -> String {
        format!("{}/{}", self.subsystem, self.name)
    }
}

/// The span tree of one trace id.
#[derive(Debug, Clone)]
pub struct TraceTree {
    pub trace: u64,
    root: u64,
    nodes: BTreeMap<u64, SpanNode>,
}

impl TraceTree {
    /// Reconstructs the tree for `trace` from a flat event buffer.
    /// Returns `None` if the trace has no spans. Spans whose parent is
    /// missing from the buffer (dropped by the capacity cap) re-attach to
    /// the root so no work disappears from the analysis.
    pub fn build(events: &[TraceEvent], trace: u64) -> Option<TraceTree> {
        let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
        let mut max_t = SimTime::ZERO;
        for e in events.iter().filter(|e| e.trace == trace) {
            max_t = max_t.max(e.at);
            match e.kind {
                EventKind::SpanBegin => {
                    nodes.insert(
                        e.span,
                        SpanNode {
                            span: e.span,
                            parent: e.parent,
                            subsystem: e.subsystem,
                            name: e.name,
                            begin: e.at,
                            end: e.at,
                            closed: false,
                            fields: e.fields.clone(),
                            children: Vec::new(),
                        },
                    );
                }
                EventKind::SpanEnd => {
                    if let Some(n) = nodes.get_mut(&e.span) {
                        n.end = n.begin.max(e.at);
                        n.closed = true;
                        n.fields.extend(e.fields.iter().cloned());
                    }
                }
                EventKind::Point => {}
            }
        }
        if nodes.is_empty() {
            return None;
        }
        // Root: the earliest-beginning span without a parent in this tree.
        let root = match nodes
            .values()
            .filter(|n| n.parent == 0)
            .min_by_key(|n| (n.begin, n.span))
        {
            Some(n) => n.span,
            // Root begin was dropped: promote the earliest span.
            None => {
                nodes
                    .values()
                    .min_by_key(|n| (n.begin, n.span))
                    .expect("nodes non-empty")
                    .span
            }
        };
        // Open spans extend to the last event of the trace.
        for n in nodes.values_mut() {
            if !n.closed {
                n.end = n.begin.max(max_t);
            }
        }
        // Re-parent orphans (missing or self parents) onto the root, then
        // link children.
        let ids: Vec<u64> = nodes.keys().copied().collect();
        for id in &ids {
            if *id == root {
                continue;
            }
            let parent = nodes[id].parent;
            if parent == 0 || parent == *id || !nodes.contains_key(&parent) {
                nodes.get_mut(id).unwrap().parent = root;
            }
        }
        let mut order: Vec<(u64, SimTime, u64)> = nodes
            .values()
            .map(|n| (n.parent, n.begin, n.span))
            .collect();
        order.sort();
        for (parent, _, id) in order {
            if id != root {
                nodes.get_mut(&parent).unwrap().children.push(id);
            }
        }
        Some(TraceTree { trace, root, nodes })
    }

    /// The root span.
    pub fn root(&self) -> &SpanNode {
        &self.nodes[&self.root]
    }

    /// A span by id.
    pub fn node(&self, span: u64) -> Option<&SpanNode> {
        self.nodes.get(&span)
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Span ids in depth-first (pre-order) traversal, children by begin.
    pub fn depth_first(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.nodes[&id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// End-to-end latency of the trace (the root span's length).
    pub fn duration(&self) -> SimDuration {
        self.root().duration()
    }

    fn depth(&self, mut span: u64) -> usize {
        let mut d = 0;
        while span != self.root {
            span = self.nodes[&span].parent;
            d += 1;
        }
        d
    }

    /// Critical-path breakdown: every span paired with its **self time**,
    /// in depth-first order. Each instant of the root interval is
    /// attributed to exactly one span — the deepest span covering it
    /// (ties broken towards the later-beginning, then higher-id span) —
    /// so the self-times sum to [`TraceTree::duration`] exactly.
    pub fn critical_path(&self) -> Vec<(u64, SimDuration)> {
        let root = self.root();
        let (lo, hi) = (root.begin, root.end);
        // Elementary intervals between all clipped span boundaries.
        let mut bounds: Vec<SimTime> = Vec::with_capacity(self.nodes.len() * 2);
        for n in self.nodes.values() {
            bounds.push(n.begin.max(lo).min(hi));
            bounds.push(n.end.max(lo).min(hi));
        }
        bounds.sort();
        bounds.dedup();
        let mut self_us: BTreeMap<u64, u64> = self.nodes.keys().map(|&k| (k, 0)).collect();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            let len = b.saturating_since(a).as_micros();
            if len == 0 {
                continue;
            }
            // Deepest span covering [a, b); the root covers everything.
            let winner = self
                .nodes
                .values()
                .filter(|n| n.begin.max(lo) <= a && n.end.min(hi) >= b)
                .max_by_key(|n| (self.depth(n.span), n.begin, n.span))
                .map(|n| n.span)
                .unwrap_or(self.root);
            *self_us.get_mut(&winner).unwrap() += len;
        }
        self.depth_first()
            .into_iter()
            .map(|id| (id, SimDuration::from_micros(self_us[&id])))
            .collect()
    }

    /// Human-readable critical-path table (indented by tree depth).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace {} · {} spans · end-to-end {:.6}s\n",
            self.trace,
            self.nodes.len(),
            self.duration().as_secs_f64()
        ));
        for (id, self_time) in self.critical_path() {
            let n = &self.nodes[&id];
            out.push_str(&format!(
                "{:indent$}{} [{:.6}s .. {:.6}s] dur={:.6}s self={:.6}s{}\n",
                "",
                n.label(),
                n.begin.as_secs_f64(),
                n.end.as_secs_f64(),
                n.duration().as_secs_f64(),
                self_time.as_secs_f64(),
                if n.closed { "" } else { " (open)" },
                indent = self.depth(id) * 2,
            ));
        }
        out
    }
}

/// Distinct trace ids present in the buffer, ascending.
pub fn traces(events: &[TraceEvent]) -> Vec<u64> {
    let mut out: Vec<u64> = events.iter().map(|e| e.trace).filter(|&t| t != 0).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The trace whose **root** span begin carries `key=value` (e.g.
/// `("sp", "42")` to find a SharePod's trace by uid).
pub fn find_trace(events: &[TraceEvent], key: &str, value: &str) -> Option<u64> {
    events
        .iter()
        .find(|e| {
            e.trace != 0
                && e.parent == 0
                && e.kind == EventKind::SpanBegin
                && e.fields.iter().any(|(k, v)| *k == key && v == value)
        })
        .map(|e| e.trace)
}

/// Convenience wrapper: `critical_path(trace_id)` over a flat buffer.
pub fn critical_path(events: &[TraceEvent], trace: u64) -> Vec<(u64, SimDuration)> {
    TraceTree::build(events, trace)
        .map(|t| t.critical_path())
        .unwrap_or_default()
}

/// Renders the full buffer as Chrome-trace JSON (the "JSON Array Format"
/// with a `traceEvents` wrapper), loadable in `chrome://tracing` and
/// [Perfetto](https://ui.perfetto.dev). Spans become complete (`ph:"X"`)
/// events, point events become instants (`ph:"i"`); each trace id gets
/// its own track (`tid`), so one SharePod's lifecycle reads as one row.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let max_t = events.iter().map(|e| e.at).max().unwrap_or(SimTime::ZERO);
    // Pair span begins with their ends without quadratic scanning.
    let mut ends: BTreeMap<u64, &TraceEvent> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::SpanEnd {
            ends.insert(e.span, e);
        }
    }
    use serde_json::Value;
    let str_v = |s: &str| Value::Str(s.to_string());
    let mut out: Vec<Value> = Vec::new();
    for e in events {
        let mut args: Vec<(String, Value)> = e
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), str_v(v)))
            .collect();
        let upsert = |args: &mut Vec<(String, Value)>, k: String, v: Value| match args
            .iter_mut()
            .find(|(ek, _)| *ek == k)
        {
            Some(entry) => entry.1 = v,
            None => args.push((k, v)),
        };
        let common = |name: &str, cat: &str, ts: u64, tid: u64| {
            vec![
                ("ph".to_string(), Value::Null), // placeholder, set below
                ("name".to_string(), str_v(name)),
                ("cat".to_string(), str_v(cat)),
                ("ts".to_string(), Value::U64(ts)),
                ("pid".to_string(), Value::U64(1)),
                ("tid".to_string(), Value::U64(tid)),
            ]
        };
        match e.kind {
            EventKind::SpanBegin => {
                let end = ends.get(&e.span).map(|x| x.at).unwrap_or(max_t).max(e.at);
                if let Some(endev) = ends.get(&e.span) {
                    for (k, v) in &endev.fields {
                        upsert(&mut args, k.to_string(), str_v(v));
                    }
                }
                upsert(&mut args, "span".to_string(), Value::U64(e.span));
                let mut ev = common(
                    &format!("{}/{}", e.subsystem, e.name),
                    e.subsystem,
                    e.at.as_micros(),
                    e.trace,
                );
                ev[0].1 = str_v("X");
                ev.push((
                    "dur".to_string(),
                    Value::U64(end.saturating_since(e.at).as_micros()),
                ));
                ev.push(("args".to_string(), Value::Map(args)));
                out.push(Value::Map(ev));
            }
            EventKind::Point => {
                let mut ev = common(
                    &format!("{}/{}", e.subsystem, e.name),
                    e.subsystem,
                    e.at.as_micros(),
                    e.trace,
                );
                ev[0].1 = str_v("i");
                ev.push(("s".to_string(), str_v("t")));
                ev.push(("args".to_string(), Value::Map(args)));
                out.push(Value::Map(ev));
            }
            EventKind::SpanEnd => {}
        }
    }
    let doc = Value::Map(vec![("traceEvents".to_string(), Value::Array(out))]);
    serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// submit(0) → sched [0,90] → vgpu_create [90,2000] → pod_create
    /// [2000,4000] → grant [4100,4200]; root closes at 5000.
    fn lifecycle() -> (Tracer, u64) {
        let t = Tracer::new();
        let root = t.root_span(ms(0), "sched", "sharepod", &[("sp", "7".into())]);
        let sched = t.span_begin_in(ms(0), root, "sched", "schedule", &[]);
        t.span_end(ms(90), sched, &[]);
        let vgpu = t.span_begin_in(ms(90), root, "devmgr", "vgpu_create", &[]);
        t.span_end(ms(2000), vgpu, &[]);
        let pod = t.span_begin_in(ms(2000), root, "cluster", "pod_create", &[]);
        t.span_end(ms(4000), pod, &[]);
        let grant = t.span_begin_in(ms(4100), root, "vgpu", "token_grant", &[]);
        t.span_end(ms(4200), grant, &[]);
        t.span_end(ms(5000), root.span, &[]);
        (t, root.trace)
    }

    #[test]
    fn tree_reconstructs_lifecycle() {
        let (t, trace) = lifecycle();
        let tree = TraceTree::build(&t.events(), trace).unwrap();
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.root().name, "sharepod");
        assert_eq!(tree.root().children.len(), 4);
        assert_eq!(tree.duration(), SimDuration::from_secs(5));
        let names: Vec<&str> = tree
            .depth_first()
            .iter()
            .map(|&id| tree.node(id).unwrap().name)
            .collect();
        assert_eq!(
            names,
            vec![
                "sharepod",
                "schedule",
                "vgpu_create",
                "pod_create",
                "token_grant"
            ]
        );
    }

    #[test]
    fn critical_path_self_times_sum_to_end_to_end() {
        let (t, trace) = lifecycle();
        let tree = TraceTree::build(&t.events(), trace).unwrap();
        let cp = tree.critical_path();
        let total: u64 = cp.iter().map(|(_, d)| d.as_micros()).sum();
        assert_eq!(total, tree.duration().as_micros());
        // Root self time = the uncovered stretches: [4000,4100] + [4200,5000].
        let root_self = cp.iter().find(|(id, _)| *id == tree.root().span).unwrap().1;
        assert_eq!(root_self, SimDuration::from_millis(900));
        // The pod_create span dominates: 2000ms self, vs 1910ms for
        // vgpu_create and 900ms for the root.
        let (max_id, _) = cp.iter().max_by_key(|(_, d)| *d).unwrap();
        assert_eq!(tree.node(*max_id).unwrap().name, "pod_create");
    }

    #[test]
    fn overlapping_children_attribute_each_instant_once() {
        let t = Tracer::new();
        let root = t.root_span(ms(0), "sched", "sharepod", &[]);
        let a = t.span_begin_in(ms(0), root, "x", "a", &[]);
        let b = t.span_begin_in(ms(50), root, "x", "b", &[]);
        t.span_end(ms(100), a, &[]);
        t.span_end(ms(150), b, &[]);
        t.span_end(ms(200), root.span, &[]);
        let tree = TraceTree::build(&t.events(), root.trace).unwrap();
        let cp = tree.critical_path();
        let total: u64 = cp.iter().map(|(_, d)| d.as_micros()).sum();
        assert_eq!(total, SimDuration::from_millis(200).as_micros());
    }

    #[test]
    fn open_spans_extend_to_trace_end() {
        let t = Tracer::new();
        let root = t.root_span(ms(0), "sched", "sharepod", &[]);
        let _child = t.span_begin_in(ms(10), root, "x", "open", &[]);
        t.event_in(ms(500), root, "x", "last", &[]);
        let tree = TraceTree::build(&t.events(), root.trace).unwrap();
        assert!(!tree.root().closed);
        assert_eq!(tree.duration(), SimDuration::from_millis(500));
        let total: u64 = tree
            .critical_path()
            .iter()
            .map(|(_, d)| d.as_micros())
            .sum();
        assert_eq!(total, tree.duration().as_micros());
    }

    #[test]
    fn orphan_spans_reattach_to_root() {
        let t = Tracer::new();
        let root = t.root_span(ms(0), "sched", "sharepod", &[]);
        // Parent span 999 never existed (e.g. dropped at capacity).
        let orphan = t.span_begin_in(
            ms(10),
            crate::trace::TraceCtx {
                trace: root.trace,
                span: crate::trace::SpanId(999),
            },
            "vgpu",
            "token_grant",
            &[],
        );
        t.span_end(ms(20), orphan, &[]);
        t.span_end(ms(30), root.span, &[]);
        let tree = TraceTree::build(&t.events(), root.trace).unwrap();
        assert_eq!(tree.node(orphan.raw()).unwrap().parent, tree.root().span);
    }

    #[test]
    fn find_trace_locates_root_by_field() {
        let (t, trace) = lifecycle();
        let evs = t.events();
        assert_eq!(find_trace(&evs, "sp", "7"), Some(trace));
        assert_eq!(find_trace(&evs, "sp", "8"), None);
        assert_eq!(traces(&evs), vec![trace]);
    }

    #[test]
    fn chrome_trace_parses_and_carries_complete_events() {
        let (t, _) = lifecycle();
        let json = to_chrome_trace(&t.events());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        assert_eq!(evs.len(), 5); // 5 spans, no points
        assert!(evs.iter().all(|e| e["ph"] == "X"));
        let root = evs.iter().find(|e| e["name"] == "sched/sharepod").unwrap();
        assert_eq!(root["dur"].as_u64(), Some(5_000_000));
        assert_eq!(root["args"]["sp"], "7");
    }
}
