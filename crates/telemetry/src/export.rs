//! Prometheus-text and JSON exporters over a [`MetricsSnapshot`], plus a
//! cross-format agreement check used in tests and by `ks-bench --bin
//! metrics`.
//!
//! Both exporters flatten to the same logical sample set (histograms become
//! cumulative `_bucket{le=...}` series plus `_sum`/`_count`), and floats are
//! rendered with Rust's shortest round-trip formatting, so parsing either
//! format back yields bit-identical values — [`verify_agreement`] checks
//! exactly that.

use std::collections::BTreeMap;

use crate::snapshot::{MetricsSnapshot, SampleValue};

/// Renders the snapshot in the Prometheus text exposition format.
pub fn to_prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for s in snap.samples() {
        if s.name != last_name {
            let kind = match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram { .. } => "histogram",
            };
            out.push_str(&format!("# TYPE {} {}\n", s.name, kind));
            last_name = &s.name;
        }
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("{} {}\n", series(&s.name, &s.labels, None), v));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("{} {}\n", series(&s.name, &s.labels, None), v));
            }
            SampleValue::Histogram {
                buckets,
                count,
                sum,
                ..
            } => {
                let bucket_name = format!("{}_bucket", s.name);
                for b in buckets {
                    out.push_str(&format!(
                        "{} {}\n",
                        series(&bucket_name, &s.labels, Some(&fmt_f64(b.le))),
                        b.cumulative
                    ));
                }
                out.push_str(&format!(
                    "{} {}\n",
                    series(&bucket_name, &s.labels, Some("+Inf")),
                    count
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    series(&format!("{}_sum", s.name), &s.labels, None),
                    fmt_f64(*sum)
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    series(&format!("{}_count", s.name), &s.labels, None),
                    count
                ));
            }
        }
    }
    out
}

/// Renders the snapshot as pretty-printed JSON (`{"samples": [...]}`).
pub fn to_json(snap: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snap).expect("snapshot serializes")
}

/// Parses the JSON produced by [`to_json`] back into a snapshot.
pub fn from_json(json: &str) -> Result<MetricsSnapshot, String> {
    serde_json::from_str(json).map_err(|e| format!("bad snapshot json: {e}"))
}

/// Escapes a label value for exposition: `\` → `\\`, `"` → `\"`, and
/// newline → `\n`, per the Prometheus text-format rules. Without this,
/// hostile values would corrupt the line- and quote-based framing.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label_value`]. Rejects dangling or unknown escape
/// sequences so corrupted expositions fail loudly instead of silently
/// collapsing distinct values.
pub fn unescape_label_value(v: &str) -> Result<String, String> {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => return Err(format!("unknown escape \\{other} in label value")),
            None => return Err("dangling backslash in label value".into()),
        }
    }
    Ok(out)
}

fn series(name: &str, labels: &[(String, String)], le: Option<&str>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        name.to_string()
    } else {
        format!("{}{{{}}}", name, parts.join(","))
    }
}

/// Shortest round-trip float rendering (`format!("{}")` on f64 is exact
/// under `str::parse::<f64>`).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Flattens a snapshot to the sample lines both exporters logically emit:
/// `series-id -> numeric value as text`.
fn flatten(snap: &MetricsSnapshot) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for s in snap.samples() {
        match &s.value {
            SampleValue::Counter(v) => {
                out.insert(series(&s.name, &s.labels, None), v.to_string());
            }
            SampleValue::Gauge(v) => {
                out.insert(series(&s.name, &s.labels, None), fmt_f64(*v));
            }
            SampleValue::Histogram {
                buckets,
                count,
                sum,
                ..
            } => {
                let bucket_name = format!("{}_bucket", s.name);
                for b in buckets {
                    out.insert(
                        series(&bucket_name, &s.labels, Some(&fmt_f64(b.le))),
                        b.cumulative.to_string(),
                    );
                }
                out.insert(
                    series(&bucket_name, &s.labels, Some("+Inf")),
                    count.to_string(),
                );
                out.insert(
                    series(&format!("{}_sum", s.name), &s.labels, None),
                    fmt_f64(*sum),
                );
                out.insert(
                    series(&format!("{}_count", s.name), &s.labels, None),
                    count.to_string(),
                );
            }
        }
    }
    out
}

/// Parses a rendered series id back into its name and **unescaped**
/// label pairs — the inverse of [`series`] modulo label order.
pub fn parse_series_id(id: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(brace) = id.find('{') else {
        return Ok((id.to_string(), Vec::new()));
    };
    let name = id[..brace].to_string();
    let body = id[brace + 1..]
        .strip_suffix('}')
        .ok_or_else(|| format!("unterminated label set in {id}"))?;
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(format!("empty label key in {id}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label value not quoted in {id}"));
        }
        // Consume the quoted, escaped value up to the closing quote.
        let mut raw = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => {
                    raw.push('\\');
                    match chars.next() {
                        Some(e) => raw.push(e),
                        None => return Err(format!("dangling escape in {id}")),
                    }
                }
                c => raw.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated label value in {id}"));
        }
        labels.push((key, unescape_label_value(&raw)?));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected {c:?} after label value in {id}")),
        }
    }
    Ok((name, labels))
}

/// Parses Prometheus exposition text into `series-id -> value text`.
/// Only the subset emitted by [`to_prometheus_text`] is understood; each
/// series id is validated (label values must unescape cleanly).
pub fn parse_prometheus_text(text: &str) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is the last whitespace-separated token; everything
        // before it (which may itself contain spaces inside label values)
        // is the series id.
        let (id, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample line: {line}"))?;
        parse_series_id(id)?;
        if out.insert(id.to_string(), value.to_string()).is_some() {
            return Err(format!("duplicate series: {id}"));
        }
    }
    Ok(out)
}

/// Verifies that a Prometheus-text export and a JSON export describe the
/// same registry state, sample by sample. Returns the number of agreeing
/// samples, or a description of the first divergence.
pub fn verify_agreement(prometheus_text: &str, json: &str) -> Result<usize, String> {
    let prom = parse_prometheus_text(prometheus_text)?;
    let snap = from_json(json)?;
    let flat = flatten(&snap);
    if prom.len() != flat.len() {
        return Err(format!(
            "sample count mismatch: prometheus has {}, json has {}",
            prom.len(),
            flat.len()
        ));
    }
    for (id, jv) in &flat {
        match prom.get(id) {
            None => return Err(format!("series {id} missing from prometheus export")),
            Some(pv) if !values_equal(pv, jv) => {
                return Err(format!("series {id} disagrees: prometheus={pv} json={jv}"));
            }
            Some(_) => {}
        }
    }
    Ok(flat.len())
}

fn values_equal(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    // Fall back to exact f64 equality: both sides use round-trip
    // formatting, so parse-compare tolerates e.g. "5" vs "5.0" only.
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn populated() -> Telemetry {
        let t = Telemetry::enabled();
        t.counter("ks_sched_decisions_total", &[("outcome", "assign")])
            .add(7);
        t.counter("ks_sched_decisions_total", &[("outcome", "reject")])
            .inc();
        t.gauge("ks_devmgr_vgpu_pool", &[("phase", "active")])
            .set(3.0);
        let h = t.histogram_seconds("ks_vgpu_handoff_wait_seconds", &[("gpu", "GPU-0")]);
        h.observe(0.0015);
        h.observe(0.0016);
        h.observe(2.0);
        t
    }

    #[test]
    fn prometheus_text_shape() {
        let text = to_prometheus_text(&populated().snapshot());
        assert!(text.contains("# TYPE ks_sched_decisions_total counter"));
        assert!(text.contains("ks_sched_decisions_total{outcome=\"assign\"} 7"));
        assert!(text.contains("# TYPE ks_vgpu_handoff_wait_seconds histogram"));
        assert!(text.contains("ks_vgpu_handoff_wait_seconds_bucket{gpu=\"GPU-0\",le=\"+Inf\"} 3"));
        assert!(text.contains("ks_vgpu_handoff_wait_seconds_count{gpu=\"GPU-0\"} 3"));
    }

    #[test]
    fn json_round_trips() {
        let snap = populated().snapshot();
        let parsed = from_json(&to_json(&snap)).unwrap();
        assert_eq!(snap, parsed);
    }

    #[test]
    fn exports_agree() {
        let snap = populated().snapshot();
        let n = verify_agreement(&to_prometheus_text(&snap), &to_json(&snap)).unwrap();
        // 2 counters + 1 gauge + (54 buckets + Inf + sum + count).
        assert_eq!(n, 3 + crate::registry::SECONDS_BINS + 3);
    }

    #[test]
    fn hostile_label_values_escape_and_agree() {
        let t = Telemetry::enabled();
        let hostile = "a\"b\\c\nd";
        t.counter("ks_node_events_total", &[("node", hostile)])
            .add(2);
        let h = t.histogram_seconds("ks_node_lat_seconds", &[("node", hostile)]);
        h.observe(0.5);
        let snap = t.snapshot();
        let text = to_prometheus_text(&snap);
        // The raw quote/backslash/newline never reach the wire unescaped.
        assert!(text.contains(r#"node="a\"b\\c\nd""#), "{text}");
        assert!(!text.contains("a\"b\\c\nd"));
        let n = verify_agreement(&text, &to_json(&snap)).unwrap();
        assert_eq!(n, 1 + crate::registry::SECONDS_BINS + 3);
        // Parsing recovers the original value exactly.
        let parsed = parse_prometheus_text(&text).unwrap();
        let id = parsed
            .keys()
            .find(|k| k.starts_with("ks_node_events_total"))
            .unwrap();
        let (name, labels) = parse_series_id(id).unwrap();
        assert_eq!(name, "ks_node_events_total");
        assert_eq!(labels, vec![("node".to_string(), hostile.to_string())]);
    }

    #[test]
    fn label_escape_round_trips() {
        for v in ["", "plain", "a\"b", "tr\\ail\\", "line\nbreak", "\\n"] {
            assert_eq!(unescape_label_value(&escape_label_value(v)).unwrap(), v);
        }
        assert!(unescape_label_value("dangling\\").is_err());
        assert!(unescape_label_value("bad\\q").is_err());
    }

    #[test]
    fn divergence_is_detected() {
        let snap = populated().snapshot();
        let json = to_json(&snap);
        let tampered = to_prometheus_text(&snap).replace(
            "ks_sched_decisions_total{outcome=\"assign\"} 7",
            "ks_sched_decisions_total{outcome=\"assign\"} 8",
        );
        let err = verify_agreement(&tampered, &json).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn empty_snapshot_agrees_trivially() {
        let t = Telemetry::disabled();
        let snap = t.snapshot();
        assert_eq!(
            verify_agreement(&to_prometheus_text(&snap), &to_json(&snap)).unwrap(),
            0
        );
    }
}
