//! Point-in-time, diffable view of a metrics registry.

use ks_sim_core::histogram::Histogram;
use serde::{Deserialize, Serialize};

/// One exported histogram bucket: cumulative count of observations with
/// value ≤ `le` (Prometheus `le` convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    pub le: f64,
    pub cumulative: u64,
}

/// The value of one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SampleValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        buckets: Vec<Bucket>,
        /// Observations above the last bucket bound.
        overflow: u64,
        count: u64,
        sum: f64,
    },
}

impl SampleValue {
    /// Monotonic difference `self − earlier` for cumulative kinds.
    ///
    /// Counters subtract saturating at zero (a restart that reset the
    /// counter yields 0, not an underflow); histograms subtract per-bucket
    /// cumulative counts, overflow, count, and sum the same way, and
    /// require an identical bucket layout. Gauges are not cumulative, so
    /// any pairing involving a gauge (or mismatched kinds/layouts)
    /// returns `None`. This is the one delta representation shared by
    /// [`MetricsSnapshot::diff`] and the ring-buffer TSDB
    /// ([`crate::tsdb`]).
    pub fn monotonic_sub(&self, earlier: &SampleValue) -> Option<SampleValue> {
        match (self, earlier) {
            (SampleValue::Counter(a), SampleValue::Counter(b)) => {
                Some(SampleValue::Counter(a.saturating_sub(*b)))
            }
            (
                SampleValue::Histogram {
                    buckets: ba,
                    overflow: oa,
                    count: ca,
                    sum: sa,
                },
                SampleValue::Histogram {
                    buckets: bb,
                    overflow: ob,
                    count: cb,
                    sum: sb,
                },
            ) => {
                if ba.len() != bb.len() || ba.iter().zip(bb).any(|(x, y)| x.le != y.le) {
                    return None;
                }
                Some(SampleValue::Histogram {
                    buckets: ba
                        .iter()
                        .zip(bb)
                        .map(|(x, y)| Bucket {
                            le: x.le,
                            cumulative: x.cumulative.saturating_sub(y.cumulative),
                        })
                        .collect(),
                    overflow: oa.saturating_sub(*ob),
                    count: ca.saturating_sub(*cb),
                    sum: (sa - sb).max(0.0),
                })
            }
            _ => None,
        }
    }

    /// Converts a live histogram into its cumulative-bucket export form.
    /// Underflow observations fold into the first bucket (they are ≤ its
    /// bound), matching the Prometheus cumulative convention.
    pub fn histogram(h: &Histogram) -> Self {
        let (underflow, overflow) = h.out_of_range();
        let mut cum = underflow;
        let buckets = h
            .counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                cum = cum.saturating_add(c);
                Bucket {
                    le: h.bucket_upper(i),
                    cumulative: cum,
                }
            })
            .collect();
        SampleValue::Histogram {
            buckets,
            overflow,
            count: h.total(),
            sum: h.sum(),
        }
    }
}

/// One metric series in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    pub value: SampleValue,
}

impl Sample {
    /// Monotonic increase of this sample since `earlier` (same series).
    /// See [`SampleValue::monotonic_sub`] for the subtraction rules;
    /// additionally returns `None` when the two samples are different
    /// series.
    pub fn delta(&self, earlier: &Sample) -> Option<SampleValue> {
        if self.name != earlier.name || self.labels != earlier.labels {
            return None;
        }
        self.value.monotonic_sub(&earlier.value)
    }

    /// `name{k="v",...}` identity string, used by both exporters and the
    /// TSDB. Label values are escaped so hostile values cannot make two
    /// distinct series collide on one id.
    pub fn series_id(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            let labels: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", crate::export::escape_label_value(v)))
                .collect();
            format!("{}{{{}}}", self.name, labels.join(","))
        }
    }
}

/// An ordered set of samples taken from a registry at one instant.
/// `PartialEq` makes snapshots directly assertable in tests, and
/// [`MetricsSnapshot::diff`] reports series-level changes between two runs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    samples: Vec<Sample>,
}

impl MetricsSnapshot {
    pub fn empty() -> Self {
        Self::default()
    }

    pub(crate) fn from_samples(samples: Vec<Sample>) -> Self {
        MetricsSnapshot { samples }
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort_unstable();
        self.samples.iter().find(|s| {
            s.name == name
                && s.labels.len() == want.len()
                && s.labels
                    .iter()
                    .zip(&want)
                    .all(|((k, v), (wk, wv))| k == wk && v == wv)
        })
    }

    /// Counter value for `name{labels}`, if that series exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge value for `name{labels}`, if that series exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)?.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// `(count, sum)` of a histogram series, if it exists.
    pub fn histogram_count_sum(&self, name: &str, labels: &[(&str, &str)]) -> Option<(u64, f64)> {
        match &self.find(name, labels)?.value {
            SampleValue::Histogram { count, sum, .. } => Some((*count, *sum)),
            _ => None,
        }
    }

    /// Sums every counter series sharing `name` (any labels).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Series-level differences `other` introduces relative to `self`:
    /// one line per added, removed, or changed series. Cumulative kinds
    /// (counters/histograms) annotate the change with their monotonic
    /// increase via [`Sample::delta`].
    pub fn diff(&self, other: &MetricsSnapshot) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.samples {
            match other
                .samples
                .iter()
                .find(|o| o.series_id() == s.series_id())
            {
                None => out.push(format!("- {}", s.series_id())),
                Some(o) if o.value != s.value => {
                    let grew = match o.delta(s) {
                        Some(SampleValue::Counter(d)) => format!(" (+{d})"),
                        Some(SampleValue::Histogram { count, sum, .. }) => {
                            format!(" (+{count} obs, +{sum} sum)")
                        }
                        _ => String::new(),
                    };
                    out.push(format!(
                        "~ {}: {:?} -> {:?}{grew}",
                        s.series_id(),
                        s.value,
                        o.value
                    ));
                }
                Some(_) => {}
            }
        }
        for o in &other.samples {
            if !self.samples.iter().any(|s| s.series_id() == o.series_id()) {
                out.push(format!("+ {}", o.series_id()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(samples: Vec<Sample>) -> MetricsSnapshot {
        MetricsSnapshot::from_samples(samples)
    }

    #[test]
    fn series_id_renders_labels_sorted_in() {
        let s = Sample {
            name: "ks_x_total".into(),
            labels: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
            value: SampleValue::Counter(1),
        };
        assert_eq!(s.series_id(), "ks_x_total{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn diff_reports_added_removed_changed() {
        let a = snap(vec![
            Sample {
                name: "ks_a_total".into(),
                labels: vec![],
                value: SampleValue::Counter(1),
            },
            Sample {
                name: "ks_b".into(),
                labels: vec![],
                value: SampleValue::Gauge(2.0),
            },
        ]);
        let b = snap(vec![
            Sample {
                name: "ks_a_total".into(),
                labels: vec![],
                value: SampleValue::Counter(5),
            },
            Sample {
                name: "ks_c".into(),
                labels: vec![],
                value: SampleValue::Gauge(0.0),
            },
        ]);
        let d = a.diff(&b);
        assert_eq!(d.len(), 3);
        assert!(d.iter().any(|l| l.starts_with("~ ks_a_total")));
        assert!(d.iter().any(|l| l == "- ks_b"));
        assert!(d.iter().any(|l| l == "+ ks_c"));
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn delta_subtracts_counters_and_histograms_monotonically() {
        let mk = |v: SampleValue| Sample {
            name: "ks_x".into(),
            labels: vec![("gpu".into(), "0".into())],
            value: v,
        };
        // Counter: saturating.
        let a = mk(SampleValue::Counter(3));
        let b = mk(SampleValue::Counter(10));
        assert_eq!(b.delta(&a), Some(SampleValue::Counter(7)));
        assert_eq!(a.delta(&b), Some(SampleValue::Counter(0)));
        // Different series never produce a delta.
        let other = Sample {
            name: "ks_y".into(),
            ..b.clone()
        };
        assert_eq!(other.delta(&a), None);
        // Gauges are not cumulative.
        assert_eq!(
            mk(SampleValue::Gauge(2.0)).delta(&mk(SampleValue::Gauge(1.0))),
            None
        );
        // Histogram: per-bucket cumulative subtraction.
        let mut h1 = Histogram::new(0.0, 4.0, 4);
        h1.record(0.5);
        let mut h2 = Histogram::new(0.0, 4.0, 4);
        h2.record(0.5);
        h2.record(1.5);
        h2.record(9.0); // overflow
        let d = mk(SampleValue::histogram(&h2))
            .delta(&mk(SampleValue::histogram(&h1)))
            .unwrap();
        match d {
            SampleValue::Histogram {
                buckets,
                overflow,
                count,
                sum,
            } => {
                assert_eq!(buckets[0].cumulative, 0);
                assert_eq!(buckets[1].cumulative, 1);
                assert_eq!(overflow, 1);
                assert_eq!(count, 2);
                assert!((sum - 10.5).abs() < 1e-9);
            }
            _ => panic!("expected histogram delta"),
        }
        // Mismatched bucket layouts refuse to subtract.
        let h3 = Histogram::new(0.0, 8.0, 4);
        assert_eq!(
            mk(SampleValue::histogram(&h2)).delta(&mk(SampleValue::histogram(&h3))),
            None
        );
    }

    #[test]
    fn diff_annotates_counter_growth() {
        let a = snap(vec![Sample {
            name: "ks_a_total".into(),
            labels: vec![],
            value: SampleValue::Counter(1),
        }]);
        let b = snap(vec![Sample {
            name: "ks_a_total".into(),
            labels: vec![],
            value: SampleValue::Counter(5),
        }]);
        let d = a.diff(&b);
        assert_eq!(d.len(), 1);
        assert!(d[0].ends_with("(+4)"), "{}", d[0]);
    }

    #[test]
    fn histogram_export_folds_underflow_into_first_bucket() {
        let mut h = Histogram::new(1.0, 5.0, 4);
        h.record(0.5); // underflow
        h.record(1.5);
        h.record(10.0); // overflow
        if let SampleValue::Histogram {
            buckets,
            overflow,
            count,
            ..
        } = SampleValue::histogram(&h)
        {
            assert_eq!(buckets[0].cumulative, 2); // underflow + first bin
            assert_eq!(buckets[3].cumulative, 2);
            assert_eq!(overflow, 1);
            assert_eq!(count, 3);
        } else {
            panic!("expected histogram");
        }
    }
}
