//! Ring-buffer time-series database over periodic [`MetricsSnapshot`]s.
//!
//! A [`Scraper`] folds snapshots taken on the simulation clock into
//! fixed-capacity per-series rings ([`Tsdb`]), giving the SLO engine
//! ([`crate::slo`]) history to evaluate against: windowed counter
//! [`Tsdb::rate`]s, windowed [`Tsdb::quantile`]s over histogram deltas,
//! and gauge [`Tsdb::gauge_agg`] (min/max/avg). Memory is bounded by
//! `capacity × series`, timestamps are [`SimTime`] (never wall clock), and
//! every query is a pure function of the ingested points — deterministic
//! under the discrete-event simulator by construction.
//!
//! **Windowing rule** (shared by all cumulative queries): for a window
//! `w` ending at `now`, the *head* is the latest point at or before
//! `now`, the *baseline* is the latest point at or before `now − w` (a
//! zero of the head's kind if no such point exists), and the windowed
//! delta is `head − baseline` via [`SampleValue::monotonic_sub`]. Label
//! queries match by subset, and multiple matching series aggregate by
//! summing their deltas.

use std::collections::{BTreeMap, VecDeque};

use ks_sim_core::time::{SimDuration, SimTime};

use crate::snapshot::{Bucket, MetricsSnapshot, SampleValue};
use crate::Telemetry;

/// One retained observation of a series.
#[derive(Debug, Clone)]
pub struct Point {
    pub at: SimTime,
    pub value: SampleValue,
}

#[derive(Debug, Clone)]
struct Series {
    name: String,
    labels: Vec<(String, String)>,
    points: VecDeque<Point>,
    evicted: u64,
}

/// Gauge aggregation over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeAgg {
    pub min: f64,
    pub max: f64,
    pub avg: f64,
    /// Points aggregated.
    pub n: usize,
}

/// Fixed-capacity per-series ring store. See module docs.
#[derive(Debug, Clone)]
pub struct Tsdb {
    capacity: usize,
    series: BTreeMap<String, Series>,
}

impl Tsdb {
    /// Default ring capacity: at a 1 s scrape interval this retains ~17
    /// minutes of history per series — enough for the widest catalogued
    /// SLO window (5 min) with margin.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a store retaining at most `capacity` points per series.
    pub fn new(capacity: usize) -> Self {
        Tsdb {
            capacity: capacity.max(1),
            series: BTreeMap::new(),
        }
    }

    /// Folds one snapshot in, stamped `now`. Each sample appends to its
    /// series ring, evicting the oldest point once at capacity.
    pub fn ingest(&mut self, now: SimTime, snap: &MetricsSnapshot) {
        for s in snap.samples() {
            let id = s.series_id();
            let series = self.series.entry(id).or_insert_with(|| Series {
                name: s.name.clone(),
                labels: s.labels.clone(),
                points: VecDeque::new(),
                evicted: 0,
            });
            if series.points.len() >= self.capacity {
                series.points.pop_front();
                series.evicted += 1;
            }
            series.points.push_back(Point {
                at: now,
                value: s.value.clone(),
            });
        }
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Sorted, deduplicated metric names across all retained series, so
    /// detector rules can be declarative over discovered series instead
    /// of hard-coded name lists.
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.series.values().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// `(name, labels)` of every retained series, in deterministic
    /// series-id order — enumerates the labelled instances of each
    /// metric (e.g. one entry per `gpu` value of a per-vGPU counter).
    pub fn series_entries(&self) -> Vec<(String, Vec<(String, String)>)> {
        self.series
            .values()
            .map(|s| (s.name.clone(), s.labels.clone()))
            .collect()
    }

    /// Total points evicted by ring caps (memory-bound proof in tests).
    pub fn evicted(&self) -> u64 {
        self.series.values().map(|s| s.evicted).sum()
    }

    /// Retained points of a series, if present.
    pub fn points(&self, name: &str, labels: &[(&str, &str)]) -> Vec<Point> {
        self.matching(name, labels)
            .into_iter()
            .flat_map(|s| s.points.iter().cloned())
            .collect()
    }

    /// Series whose name matches and whose labels contain every queried
    /// pair (subset match; `&[]` matches every labelling of `name`).
    fn matching(&self, name: &str, labels: &[(&str, &str)]) -> Vec<&Series> {
        self.series
            .values()
            .filter(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .collect()
    }

    /// Windowed delta of one series per the module-docs rule; `None` when
    /// the series has no point at or before `now`.
    fn windowed_delta(s: &Series, window: SimDuration, now: SimTime) -> Option<SampleValue> {
        let head = s.points.iter().rev().find(|p| p.at <= now)?;
        // A window reaching before t=0 has no baseline point: the counter
        // was zero before the simulation started.
        let baseline = now
            .as_micros()
            .checked_sub(window.as_micros())
            .map(SimTime::from_micros)
            .and_then(|floor| s.points.iter().rev().find(|p| p.at <= floor));
        match baseline {
            Some(b) => head.value.monotonic_sub(&b.value),
            None => head.value.monotonic_sub(&zero_like(&head.value)),
        }
    }

    /// Per-second increase of the counter(s) matching `name{labels}` over
    /// the window ending at `now`, summed across matching series.
    pub fn rate(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window: SimDuration,
        now: SimTime,
    ) -> Option<f64> {
        if window.is_zero() {
            return None;
        }
        let mut total: u64 = 0;
        let mut seen = false;
        for s in self.matching(name, labels) {
            if let Some(SampleValue::Counter(d)) = Self::windowed_delta(s, window, now) {
                total += d;
                seen = true;
            }
        }
        seen.then(|| total as f64 / window.as_secs_f64())
    }

    /// Interpolated quantile of the histogram delta over the window ending
    /// at `now`, aggregated (bucket-wise) across matching series. `None`
    /// when no matching series has points, layouts disagree, or the
    /// windowed delta holds no observations.
    pub fn quantile(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        q: f64,
        window: SimDuration,
        now: SimTime,
    ) -> Option<f64> {
        let mut agg: Option<Vec<Bucket>> = None;
        let mut overflow: u64 = 0;
        for s in self.matching(name, labels) {
            let Some(SampleValue::Histogram {
                buckets,
                overflow: o,
                ..
            }) = Self::windowed_delta(s, window, now)
            else {
                continue;
            };
            overflow += o;
            match &mut agg {
                None => agg = Some(buckets),
                Some(acc) => {
                    if acc.len() != buckets.len()
                        || acc.iter().zip(&buckets).any(|(a, b)| a.le != b.le)
                    {
                        return None;
                    }
                    for (a, b) in acc.iter_mut().zip(&buckets) {
                        a.cumulative += b.cumulative;
                    }
                }
            }
        }
        quantile_from_buckets(&agg?, overflow, q)
    }

    /// Min/max/avg of gauge points with `now − window < t ≤ now` across
    /// matching series. `None` when the window holds no gauge points.
    pub fn gauge_agg(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window: SimDuration,
        now: SimTime,
    ) -> Option<GaugeAgg> {
        let floor = now.as_micros().checked_sub(window.as_micros());
        let (mut min, mut max, mut sum, mut n) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0usize);
        for s in self.matching(name, labels) {
            for p in &s.points {
                if p.at <= now && floor.is_none_or(|f| p.at.as_micros() > f) {
                    if let SampleValue::Gauge(v) = p.value {
                        min = min.min(v);
                        max = max.max(v);
                        sum += v;
                        n += 1;
                    }
                }
            }
        }
        (n > 0).then(|| GaugeAgg {
            min,
            max,
            avg: sum / n as f64,
            n,
        })
    }

    /// Latest counter value at or before `now`, summed across matches.
    pub fn counter_at(&self, name: &str, labels: &[(&str, &str)], now: SimTime) -> Option<u64> {
        let mut total = 0;
        let mut seen = false;
        for s in self.matching(name, labels) {
            if let Some(p) = s.points.iter().rev().find(|p| p.at <= now) {
                if let SampleValue::Counter(v) = p.value {
                    total += v;
                    seen = true;
                }
            }
        }
        seen.then_some(total)
    }
}

/// The zero of a sample kind (empty counter/histogram of the same bucket
/// layout) — the baseline for windows reaching before the first scrape.
fn zero_like(v: &SampleValue) -> SampleValue {
    match v {
        SampleValue::Counter(_) => SampleValue::Counter(0),
        SampleValue::Gauge(_) => SampleValue::Gauge(0.0),
        SampleValue::Histogram { buckets, .. } => SampleValue::Histogram {
            buckets: buckets
                .iter()
                .map(|b| Bucket {
                    le: b.le,
                    cumulative: 0,
                })
                .collect(),
            overflow: 0,
            count: 0,
            sum: 0.0,
        },
    }
}

/// Interpolated quantile over cumulative delta buckets: rank `⌈q·total⌉`
/// within the in-range observations, linear within the winning bucket
/// (lower bound = previous `le`, 0 for the first bucket). Observations
/// past the last bound answer with the last `le` (conservative).
pub fn quantile_from_buckets(buckets: &[Bucket], overflow: u64, q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let in_range = buckets.last().map(|b| b.cumulative).unwrap_or(0);
    let total = in_range + overflow;
    if total == 0 {
        return None;
    }
    let target = ((q * total as f64).ceil().max(1.0)) as u64;
    if target > in_range {
        return buckets.last().map(|b| b.le);
    }
    let mut prev_cum = 0u64;
    let mut prev_le = 0.0f64;
    for b in buckets {
        if b.cumulative >= target {
            let in_bucket = b.cumulative - prev_cum;
            let within = (target - prev_cum) as f64 / in_bucket.max(1) as f64;
            let lo = if b.le > 0.0 {
                prev_le.max(0.0)
            } else {
                prev_le
            };
            return Some(lo + (b.le - lo) * within);
        }
        prev_cum = b.cumulative;
        prev_le = b.le;
    }
    buckets.last().map(|b| b.le)
}

/// Periodic snapshot collector: call [`Scraper::tick`] from the world's
/// sampling event; it scrapes at most once per interval.
#[derive(Debug)]
pub struct Scraper {
    tsdb: Tsdb,
    interval: SimDuration,
    last: Option<SimTime>,
    scrapes: u64,
}

impl Scraper {
    pub fn new(interval: SimDuration, capacity: usize) -> Self {
        assert!(!interval.is_zero(), "scrape interval must be positive");
        Scraper {
            tsdb: Tsdb::new(capacity),
            interval,
            last: None,
            scrapes: 0,
        }
    }

    /// Scrape interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Scrapes `telemetry` into the store if at least one interval passed
    /// since the previous scrape (always scrapes on the first call).
    /// Returns whether a scrape happened.
    pub fn tick(&mut self, now: SimTime, telemetry: &Telemetry) -> bool {
        if let Some(last) = self.last {
            if now.saturating_since(last) < self.interval {
                return false;
            }
        }
        self.force(now, telemetry);
        true
    }

    /// Unconditionally scrapes now.
    pub fn force(&mut self, now: SimTime, telemetry: &Telemetry) {
        self.tsdb.ingest(now, &telemetry.snapshot());
        self.last = Some(now);
        self.scrapes += 1;
    }

    /// Scrapes performed.
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// The underlying store.
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn w(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn rate_uses_baseline_and_head() {
        let t = Telemetry::enabled();
        let c = t.counter("ks_x_total", &[]);
        let mut db = Tsdb::new(64);
        for i in 0..10u64 {
            c.add(3);
            db.ingest(s(i), &t.snapshot());
        }
        // Window [4,9]: head 30 at t=9, baseline 15 at t=4 → 15/5 = 3/s.
        let r = db.rate("ks_x_total", &[], w(5), s(9)).unwrap();
        assert!((r - 3.0).abs() < 1e-9, "{r}");
        // Window reaching before the first scrape: baseline is zero.
        let r = db.rate("ks_x_total", &[], w(100), s(9)).unwrap();
        assert!((r - 30.0 / 100.0).abs() < 1e-9, "{r}");
        assert_eq!(db.rate("ks_nope_total", &[], w(5), s(9)), None);
    }

    #[test]
    fn rate_sums_label_subset_matches() {
        let t = Telemetry::enabled();
        t.counter("ks_f_total", &[("kind", "a")]).add(10);
        t.counter("ks_f_total", &[("kind", "b")]).add(20);
        let mut db = Tsdb::new(8);
        db.ingest(s(10), &t.snapshot());
        let all = db.rate("ks_f_total", &[], w(10), s(10)).unwrap();
        assert!((all - 3.0).abs() < 1e-9, "{all}");
        let only_a = db
            .rate("ks_f_total", &[("kind", "a")], w(10), s(10))
            .unwrap();
        assert!((only_a - 1.0).abs() < 1e-9, "{only_a}");
    }

    #[test]
    fn windowed_quantile_sees_only_recent_observations() {
        let t = Telemetry::enabled();
        let h = t.histogram_linear("ks_v", &[], 0.0, 100.0, 100);
        let mut db = Tsdb::new(64);
        // Old observations: all small.
        for _ in 0..100 {
            h.observe(1.0);
        }
        db.ingest(s(0), &t.snapshot());
        // Recent: all large.
        for _ in 0..10 {
            h.observe(90.0);
        }
        db.ingest(s(10), &t.snapshot());
        // Full history: p50 is small.
        let p50_all = db.quantile("ks_v", &[], 0.5, w(100), s(10)).unwrap();
        assert!(p50_all < 5.0, "{p50_all}");
        // 5s window sees only the 10 large observations.
        let p50_recent = db.quantile("ks_v", &[], 0.5, w(5), s(10)).unwrap();
        assert!(p50_recent > 85.0, "{p50_recent}");
        // Empty window delta → None.
        db.ingest(s(20), &t.snapshot());
        assert_eq!(db.quantile("ks_v", &[], 0.5, w(5), s(20)), None);
    }

    #[test]
    fn gauge_agg_min_max_avg() {
        let t = Telemetry::enabled();
        let g = t.gauge("ks_g", &[]);
        let mut db = Tsdb::new(64);
        for (i, v) in [1.0, 5.0, 3.0].iter().enumerate() {
            g.set(*v);
            db.ingest(s(i as u64 + 1), &t.snapshot());
        }
        let a = db.gauge_agg("ks_g", &[], w(10), s(3)).unwrap();
        assert_eq!((a.min, a.max, a.n), (1.0, 5.0, 3));
        assert!((a.avg - 3.0).abs() < 1e-9);
        // Window excluding the first point.
        let a = db.gauge_agg("ks_g", &[], w(2), s(3)).unwrap();
        assert_eq!((a.min, a.max, a.n), (3.0, 5.0, 2));
    }

    #[test]
    fn ring_capacity_bounds_memory() {
        let t = Telemetry::enabled();
        let c = t.counter("ks_x_total", &[]);
        let mut db = Tsdb::new(4);
        for i in 0..10u64 {
            c.inc();
            db.ingest(s(i), &t.snapshot());
        }
        assert_eq!(db.points("ks_x_total", &[]).len(), 4);
        assert_eq!(db.evicted(), 6);
        // Queries confined to retained history still work.
        let r = db.rate("ks_x_total", &[], w(2), s(9)).unwrap();
        assert!((r - 1.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn series_names_are_sorted_and_deduplicated() {
        let t = Telemetry::enabled();
        t.counter("ks_b_total", &[("kind", "x")]).inc();
        t.counter("ks_b_total", &[("kind", "y")]).inc();
        t.counter("ks_a_total", &[]).inc();
        t.gauge("ks_c", &[]).set(1.0);
        let mut db = Tsdb::new(8);
        db.ingest(s(1), &t.snapshot());
        assert_eq!(db.series_names(), vec!["ks_a_total", "ks_b_total", "ks_c"]);
        // Entries enumerate labelled instances; the two ks_b labellings
        // are distinct entries with their label sets intact.
        let entries = db.series_entries();
        assert_eq!(entries.len(), 4);
        let b_labels: Vec<_> = entries
            .iter()
            .filter(|(n, _)| n == "ks_b_total")
            .map(|(_, l)| l.clone())
            .collect();
        assert_eq!(
            b_labels,
            vec![
                vec![("kind".to_string(), "x".to_string())],
                vec![("kind".to_string(), "y".to_string())],
            ]
        );
    }

    #[test]
    fn scraper_ticks_once_per_interval() {
        let t = Telemetry::enabled();
        t.counter("ks_x_total", &[]).inc();
        let mut sc = Scraper::new(w(5), 16);
        assert!(sc.tick(s(0), &t));
        assert!(!sc.tick(s(3), &t));
        assert!(sc.tick(s(5), &t));
        assert_eq!(sc.scrapes(), 2);
        assert_eq!(sc.tsdb().series_count(), 1);
    }

    #[test]
    fn quantile_from_buckets_handles_overflow_and_empty() {
        let b = |le: f64, c: u64| Bucket { le, cumulative: c };
        assert_eq!(quantile_from_buckets(&[b(1.0, 0)], 0, 0.5), None);
        // All mass in overflow → last bound.
        assert_eq!(quantile_from_buckets(&[b(1.0, 0)], 5, 0.5), Some(1.0));
        // Uniform mass: p50 lands mid-range.
        let q = quantile_from_buckets(&[b(1.0, 10), b(2.0, 20)], 0, 0.5).unwrap();
        assert!((0.9..=1.1).contains(&q), "{q}");
    }
}
