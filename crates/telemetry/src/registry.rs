//! Lock-cheap metrics registry.
//!
//! Metric handles ([`Counter`], [`Gauge`], [`Histo`]) are resolved once
//! through the registry's `RwLock` and then recorded against with atomics
//! (counters/gauges) or a short `parking_lot::Mutex` hold (histograms).
//! Callers on hot paths should resolve the handle up front and keep it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ks_sim_core::histogram::Histogram;
use parking_lot::{Mutex, RwLock};

use crate::snapshot::{MetricsSnapshot, Sample, SampleValue};

/// Default latency buckets: log-spaced over 1µs .. 1000s. Wide enough for
/// token handoffs (~1.5ms) and multi-minute chaos recoveries alike.
pub const SECONDS_LO: f64 = 1e-6;
pub const SECONDS_HI: f64 = 1e3;
pub const SECONDS_BINS: usize = 54; // ~1.47x per bucket

/// Key = metric name + sorted label pairs.
type MetricId = (&'static str, Vec<(&'static str, String)>);

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>), // f64 bits
    Histo(Arc<Mutex<Histogram>>),
}

/// The registry behind an enabled [`crate::Telemetry`] handle.
pub struct Registry {
    slots: RwLock<BTreeMap<MetricId, Slot>>,
}

fn make_id(name: &'static str, labels: &[(&'static str, &str)]) -> MetricId {
    let mut ls: Vec<(&'static str, String)> =
        labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
    ls.sort_unstable();
    (name, ls)
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            slots: RwLock::new(BTreeMap::new()),
        }
    }

    /// Resolves (registering on first use) a counter for `name{labels}`.
    ///
    /// # Panics
    /// Panics if the same id was previously registered as another kind.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let id = make_id(name, labels);
        if let Some(Slot::Counter(c)) = self.slots.read().get(&id) {
            return Counter(Some(c.clone()));
        }
        let mut w = self.slots.write();
        let slot = w
            .entry(id)
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => Counter(Some(c.clone())),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Resolves (registering on first use) a gauge for `name{labels}`.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let id = make_id(name, labels);
        if let Some(Slot::Gauge(g)) = self.slots.read().get(&id) {
            return Gauge(Some(g.clone()));
        }
        let mut w = self.slots.write();
        let slot = w
            .entry(id)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match slot {
            Slot::Gauge(g) => Gauge(Some(g.clone())),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Histogram with the default log-spaced seconds buckets.
    pub fn histogram_seconds(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histo {
        self.histogram_with(name, labels, || {
            Histogram::log_spaced(SECONDS_LO, SECONDS_HI, SECONDS_BINS)
        })
    }

    /// Histogram with linear buckets over `[lo, hi)`.
    pub fn histogram_linear(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Histo {
        self.histogram_with(name, labels, || Histogram::new(lo, hi, bins))
    }

    /// Histogram with explicit log-spaced buckets over `[lo, hi)` — for
    /// quantities spanning orders of magnitude in units other than
    /// seconds (e.g. per-decision wall-clock nanoseconds).
    pub fn histogram_log(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Histo {
        self.histogram_with(name, labels, || Histogram::log_spaced(lo, hi, bins))
    }

    fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Histogram,
    ) -> Histo {
        let id = make_id(name, labels);
        if let Some(Slot::Histo(h)) = self.slots.read().get(&id) {
            return Histo(Some(h.clone()));
        }
        let mut w = self.slots.write();
        let slot = w
            .entry(id)
            .or_insert_with(|| Slot::Histo(Arc::new(Mutex::new(make()))));
        match slot {
            Slot::Histo(h) => Histo(Some(h.clone())),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every registered metric, ordered by id.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.read();
        let samples = slots
            .iter()
            .map(|((name, labels), slot)| Sample {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                value: match slot {
                    Slot::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => SampleValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Slot::Histo(h) => SampleValue::histogram(&h.lock()),
                },
            })
            .collect();
        MetricsSnapshot::from_samples(samples)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Monotone counter handle. No-op when obtained from a disabled handle.
#[derive(Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 on no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins gauge storing an `f64`. `add` uses a CAS loop so that
/// concurrent deltas from the realtime backend never lose updates.
#[derive(Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub(crate) fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value (0.0 on no-op handles).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Histogram handle.
#[derive(Clone)]
pub struct Histo(Option<Arc<Mutex<Histogram>>>);

impl Histo {
    pub(crate) fn noop() -> Self {
        Histo(None)
    }

    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.lock().record(v);
        }
    }

    /// `(count, sum)` over all observations (zeros on no-op handles).
    pub fn count_sum(&self) -> (u64, f64) {
        self.0.as_ref().map_or((0, 0.0), |h| {
            let h = h.lock();
            (h.total(), h.sum())
        })
    }

    /// Interpolated quantile; `None` on empty or no-op histograms.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.0.as_ref().and_then(|h| h.lock().quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_labels_address_distinct_series() {
        let r = Registry::new();
        r.counter("ks_t_total", &[("outcome", "a")]).inc();
        r.counter("ks_t_total", &[("outcome", "b")]).add(2);
        let s = r.snapshot();
        assert_eq!(s.counter_value("ks_t_total", &[("outcome", "a")]), Some(1));
        assert_eq!(s.counter_value("ks_t_total", &[("outcome", "b")]), Some(2));
    }

    #[test]
    fn label_order_is_normalized() {
        let r = Registry::new();
        r.counter("ks_t_total", &[("b", "2"), ("a", "1")]).inc();
        r.counter("ks_t_total", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(
            r.snapshot()
                .counter_value("ks_t_total", &[("a", "1"), ("b", "2")]),
            Some(2)
        );
    }

    #[test]
    fn gauge_add_and_set() {
        let r = Registry::new();
        let g = r.gauge("ks_pool", &[]);
        g.set(4.0);
        g.add(-1.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("ks_t", &[]).inc();
        r.gauge("ks_t", &[]).set(1.0);
    }

    #[test]
    fn histogram_snapshot_carries_buckets() {
        let r = Registry::new();
        let h = r.histogram_seconds("ks_lat_seconds", &[]);
        h.observe(0.0015);
        h.observe(0.120);
        let s = r.snapshot();
        let (count, sum) = s.histogram_count_sum("ks_lat_seconds", &[]).unwrap();
        assert_eq!(count, 2);
        assert!((sum - 0.1215).abs() < 1e-9);
    }
}
