//! Observability substrate for the KubeShare reproduction.
//!
//! The crate provides three pieces:
//!
//! * a **metrics registry** ([`registry`]) of counters, gauges, and
//!   histograms addressed by `name{label="value",...}` keys following the
//!   `ks_<subsystem>_<name>` naming scheme (DESIGN.md §9);
//! * a **tracer** ([`trace`]) of structured events and spans stamped with
//!   [`SimTime`] (discrete-event runs) or wall-clock mapped onto `SimTime`
//!   (the realtime vGPU backend);
//! * **exporters** ([`export`]) rendering the same registry as Prometheus
//!   text exposition and JSON, plus a diffable [`MetricsSnapshot`].
//!
//! Everything hangs off one cheap [`Telemetry`] handle. A disabled handle
//! (the default everywhere) is a `None` — every instrumentation call is a
//! single branch on an `Option` and touches no shared state, so the hot
//! paths benched by `sched_algo` and `token_quota` pay nothing when
//! observability is off.
//!
//! ```
//! use ks_telemetry::Telemetry;
//! use ks_sim_core::time::SimTime;
//!
//! let t = Telemetry::enabled();
//! t.counter("ks_sched_decisions_total", &[("outcome", "assign")]).inc();
//! t.histogram_seconds("ks_sched_latency_seconds", &[]).observe(0.090);
//! t.trace_event(SimTime::from_millis(90), "sched", "decision",
//!               &[("outcome", "assign".into())]);
//!
//! let snap = t.snapshot();
//! assert_eq!(snap.counter_value("ks_sched_decisions_total",
//!                               &[("outcome", "assign")]), Some(1));
//! let prom = ks_telemetry::export::to_prometheus_text(&snap);
//! let json = ks_telemetry::export::to_json(&snap);
//! ks_telemetry::export::verify_agreement(&prom, &json).unwrap();
//! ```

pub mod causal;
pub mod export;
pub mod log;
pub mod provenance;
pub mod registry;
pub mod slo;
pub mod snapshot;
pub mod trace;
pub mod tsdb;

use std::sync::Arc;

use ks_sim_core::time::SimTime;

pub use causal::TraceTree;
pub use log::{LogEvent, LogLevel, Logger};
pub use provenance::{
    CandidateScore, DecisionKind, DecisionRecord, Explanation, FlightRecorder, Outcome, ReasonCode,
    SchedProv,
};
pub use registry::{Counter, Gauge, Histo, Registry};
pub use slo::{SloCondition, SloEngine, SloRule, SloStatus};
pub use snapshot::{MetricsSnapshot, Sample, SampleValue};
pub use trace::{EventKind, SpanId, TraceCtx, TraceEvent, Tracer};
pub use tsdb::{Scraper, Tsdb};

struct TelemetryInner {
    registry: Registry,
    tracer: Tracer,
}

/// Cheap, cloneable handle to a metrics registry + tracer.
///
/// `Telemetry::disabled()` (also `Default`) carries no allocation at all;
/// every recording method on a disabled handle returns immediately after a
/// single `Option` branch.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// A live handle: all recordings are stored and exportable.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                registry: Registry::new(),
                tracer: Tracer::new(),
            })),
        }
    }

    /// The no-op handle used by default throughout the stack.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A counter handle for `name{labels}` (registered on first use).
    /// Disabled handles return a no-op counter.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name, labels),
            None => Counter::noop(),
        }
    }

    /// A gauge handle for `name{labels}`.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name, labels),
            None => Gauge::noop(),
        }
    }

    /// A histogram handle with the default log-spaced seconds buckets
    /// (1µs .. 1000s), suitable for any latency/duration metric.
    pub fn histogram_seconds(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histo {
        match &self.inner {
            Some(i) => i.registry.histogram_seconds(name, labels),
            None => Histo::noop(),
        }
    }

    /// A histogram handle with explicit linear buckets over `[lo, hi)` —
    /// for non-duration quantities such as fit-residual scores or ratios.
    pub fn histogram_linear(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Histo {
        match &self.inner {
            Some(i) => i.registry.histogram_linear(name, labels, lo, hi, bins),
            None => Histo::noop(),
        }
    }

    /// A histogram handle with explicit log-spaced buckets over
    /// `[lo, hi)` — for order-of-magnitude-spanning quantities in units
    /// other than seconds (e.g. scheduler decision nanoseconds).
    pub fn histogram_log(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Histo {
        match &self.inner {
            Some(i) => i.registry.histogram_log(name, labels, lo, hi, bins),
            None => Histo::noop(),
        }
    }

    /// Records a point event on the trace.
    pub fn trace_event(
        &self,
        at: SimTime,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) {
        if let Some(i) = &self.inner {
            i.tracer.event(at, subsystem, name, fields);
        }
    }

    /// Opens a span; close it with [`Telemetry::span_end`]. Returns a
    /// dummy id on disabled handles.
    pub fn span_begin(
        &self,
        at: SimTime,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) -> SpanId {
        match &self.inner {
            Some(i) => i.tracer.span_begin(at, subsystem, name, fields),
            None => SpanId::NONE,
        }
    }

    /// Closes a span opened by [`Telemetry::span_begin`]. No-op for
    /// `SpanId::NONE` or unknown ids.
    pub fn span_end(&self, at: SimTime, id: SpanId, fields: &[(&'static str, String)]) {
        if let Some(i) = &self.inner {
            i.tracer.span_end(at, id, fields);
        }
    }

    /// Mints a fresh trace with a root span (e.g. one SharePod's life).
    /// Returns [`TraceCtx::NONE`] on disabled handles.
    pub fn trace_root(
        &self,
        at: SimTime,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) -> TraceCtx {
        match &self.inner {
            Some(i) => i.tracer.root_span(at, subsystem, name, fields),
            None => TraceCtx::NONE,
        }
    }

    /// Opens a span as a child of `ctx` (falls back to an uncorrelated
    /// span when `ctx` is [`TraceCtx::NONE`]).
    pub fn span_begin_in(
        &self,
        at: SimTime,
        ctx: TraceCtx,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) -> SpanId {
        match &self.inner {
            Some(i) => i.tracer.span_begin_in(at, ctx, subsystem, name, fields),
            None => SpanId::NONE,
        }
    }

    /// Records a point event causally attached under `ctx`.
    pub fn trace_event_in(
        &self,
        at: SimTime,
        ctx: TraceCtx,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) {
        if let Some(i) = &self.inner {
            i.tracer.event_in(at, ctx, subsystem, name, fields);
        }
    }

    /// Chrome-trace (Perfetto-loadable) JSON of every recorded event.
    pub fn chrome_trace(&self) -> String {
        causal::to_chrome_trace(&self.trace_events())
    }

    /// Snapshot of every registered metric at this instant. Disabled
    /// handles produce an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => MetricsSnapshot::empty(),
        }
    }

    /// All trace events recorded so far (cloned out).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(i) => i.tracer.events(),
            None => Vec::new(),
        }
    }

    /// Completed `(begin, end)` span pairs.
    pub fn spans(&self) -> Vec<(TraceEvent, TraceEvent)> {
        match &self.inner {
            Some(i) => i.tracer.spans(),
            None => Vec::new(),
        }
    }

    /// Number of trace events dropped after the ring capacity was hit.
    pub fn trace_dropped(&self) -> u64 {
        match &self.inner {
            Some(i) => i.tracer.dropped(),
            None => 0,
        }
    }

    /// Distinct subsystems that produced at least one trace event.
    pub fn trace_subsystems(&self) -> Vec<&'static str> {
        match &self.inner {
            Some(i) => i.tracer.subsystems(),
            None => Vec::new(),
        }
    }

    /// Human-readable rendering of the trace, one event per line.
    pub fn render_trace(&self) -> String {
        match &self.inner {
            Some(i) => i.tracer.render_text(),
            None => String::new(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.counter("ks_x_total", &[]).inc();
        t.gauge("ks_x", &[]).set(3.0);
        t.histogram_seconds("ks_x_seconds", &[]).observe(1.0);
        let id = t.span_begin(SimTime::ZERO, "x", "y", &[]);
        t.span_end(SimTime::ZERO, id, &[]);
        assert!(!t.is_enabled());
        assert!(t.snapshot().samples().is_empty());
        assert!(t.trace_events().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.counter("ks_x_total", &[]).inc();
        u.counter("ks_x_total", &[]).add(2);
        assert_eq!(t.snapshot().counter_value("ks_x_total", &[]), Some(3));
    }

    #[test]
    fn spans_pair_up() {
        let t = Telemetry::enabled();
        let id = t.span_begin(SimTime::from_millis(1), "chaos", "recovery", &[]);
        t.span_end(SimTime::from_millis(5), id, &[]);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0.at, SimTime::from_millis(1));
        assert_eq!(spans[0].1.at, SimTime::from_millis(5));
    }
}
