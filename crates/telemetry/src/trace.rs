//! Structured event/span tracer keyed on [`SimTime`].
//!
//! Discrete-event code stamps events with the engine clock directly; the
//! realtime vGPU backend maps `Instant`s onto `SimTime` via its run-start
//! anchor, so both share one trace format. The buffer is capacity-capped:
//! past [`Tracer::CAPACITY`] events new entries are dropped and counted,
//! never reallocated without bound during long soaks.
//!
//! Events optionally carry a **causal context**: a trace id grouping every
//! span a single SharePod's lifecycle produced, and a parent span id
//! forming the parent→child tree [`crate::causal`] analyzes. Context-free
//! events (the pre-causal API) carry `trace = 0, parent = 0` and keep
//! working unchanged.

use ks_sim_core::time::SimTime;
use parking_lot::Mutex;
use serde::Serialize;

/// Identifier linking a span's begin and end events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Default)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The id handed out by disabled handles; `span_end` ignores it.
    pub const NONE: SpanId = SpanId(0);

    /// Raw id (0 for [`SpanId::NONE`]).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Causal trace context: which trace an operation belongs to and which
/// span is its parent. Minted by [`Tracer::root_span`] when a SharePod
/// enters the system and threaded by value through every layer that does
/// work on its behalf (scheduling, DevMgr, pod creation, token backend).
///
/// `TraceCtx::NONE` (also what disabled telemetry handles return) makes
/// every context-taking call degrade to the uncorrelated behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct TraceCtx {
    /// Trace id; 0 = no causal context.
    pub trace: u64,
    /// The span new children should hang off.
    pub span: SpanId,
}

impl TraceCtx {
    /// The null context carried by disabled handles.
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        span: SpanId::NONE,
    };

    /// True for the null context.
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }

    /// The same trace re-rooted at `span` (for grandchildren).
    pub fn at(self, span: SpanId) -> TraceCtx {
        TraceCtx {
            trace: self.trace,
            span,
        }
    }
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx::NONE
    }
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    Point,
    SpanBegin,
    SpanEnd,
}

/// One trace record.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    pub at: SimTime,
    pub subsystem: &'static str,
    pub name: &'static str,
    pub kind: EventKind,
    /// 0 for point events.
    pub span: u64,
    /// Trace this event belongs to (0 = no causal context).
    pub trace: u64,
    /// Parent span within the trace (0 = root or uncorrelated).
    pub parent: u64,
    pub fields: Vec<(&'static str, String)>,
}

struct TracerState {
    events: Vec<TraceEvent>,
    /// `SpanBegin` buffer index by span id, so `span_end` resolves its
    /// begin in O(1) instead of rescanning the buffer (which turns long
    /// soaks quadratic). Begins dropped at capacity are simply absent.
    open: std::collections::HashMap<u64, usize>,
    dropped: u64,
    next_span: u64,
    next_trace: u64,
}

/// Append-only trace buffer behind an enabled [`crate::Telemetry`].
pub struct Tracer {
    state: Mutex<TracerState>,
}

impl Tracer {
    /// Maximum retained events; beyond this, events are counted as dropped.
    pub const CAPACITY: usize = 65_536;

    pub fn new() -> Self {
        Tracer {
            state: Mutex::new(TracerState {
                events: Vec::new(),
                open: std::collections::HashMap::new(),
                dropped: 0,
                next_span: 1,
                next_trace: 1,
            }),
        }
    }

    fn push(state: &mut TracerState, ev: TraceEvent) {
        if state.events.len() >= Self::CAPACITY {
            state.dropped = state.dropped.saturating_add(1);
        } else {
            if ev.kind == EventKind::SpanBegin {
                state.open.insert(ev.span, state.events.len());
            }
            state.events.push(ev);
        }
    }

    pub fn event(
        &self,
        at: SimTime,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) {
        self.event_in(at, TraceCtx::NONE, subsystem, name, fields);
    }

    /// Point event stamped with a causal context.
    pub fn event_in(
        &self,
        at: SimTime,
        ctx: TraceCtx,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) {
        let mut s = self.state.lock();
        Self::push(
            &mut s,
            TraceEvent {
                at,
                subsystem,
                name,
                kind: EventKind::Point,
                span: 0,
                trace: ctx.trace,
                parent: ctx.span.0,
                fields: fields.to_vec(),
            },
        );
    }

    pub fn span_begin(
        &self,
        at: SimTime,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) -> SpanId {
        self.span_begin_in(at, TraceCtx::NONE, subsystem, name, fields)
    }

    /// Mints a fresh trace and opens its root span; the returned context
    /// parents all child spans/events of this trace.
    pub fn root_span(
        &self,
        at: SimTime,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) -> TraceCtx {
        let mut s = self.state.lock();
        let trace = s.next_trace;
        s.next_trace += 1;
        let id = s.next_span;
        s.next_span += 1;
        Self::push(
            &mut s,
            TraceEvent {
                at,
                subsystem,
                name,
                kind: EventKind::SpanBegin,
                span: id,
                trace,
                parent: 0,
                fields: fields.to_vec(),
            },
        );
        TraceCtx {
            trace,
            span: SpanId(id),
        }
    }

    /// Opens a span as a child of `ctx` (begin time may lie in the past —
    /// the causal analyzer orders by timestamp, not append order).
    pub fn span_begin_in(
        &self,
        at: SimTime,
        ctx: TraceCtx,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, String)],
    ) -> SpanId {
        let mut s = self.state.lock();
        let id = s.next_span;
        s.next_span += 1;
        Self::push(
            &mut s,
            TraceEvent {
                at,
                subsystem,
                name,
                kind: EventKind::SpanBegin,
                span: id,
                trace: ctx.trace,
                parent: ctx.span.0,
                fields: fields.to_vec(),
            },
        );
        SpanId(id)
    }

    pub fn span_end(&self, at: SimTime, id: SpanId, fields: &[(&'static str, String)]) {
        if id == SpanId::NONE {
            return;
        }
        let mut s = self.state.lock();
        let Some(open) = s.open.get(&id.0).map(|&i| &s.events[i]) else {
            return;
        };
        let (subsystem, name) = (open.subsystem, open.name);
        let (trace, parent) = (open.trace, open.parent);
        Self::push(
            &mut s,
            TraceEvent {
                at,
                subsystem,
                name,
                kind: EventKind::SpanEnd,
                span: id.0,
                trace,
                parent,
                fields: fields.to_vec(),
            },
        );
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.lock().events.clone()
    }

    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Completed `(begin, end)` pairs, in begin order.
    pub fn spans(&self) -> Vec<(TraceEvent, TraceEvent)> {
        let s = self.state.lock();
        s.events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin)
            .filter_map(|b| {
                s.events
                    .iter()
                    .find(|e| e.kind == EventKind::SpanEnd && e.span == b.span)
                    .map(|e| (b.clone(), e.clone()))
            })
            .collect()
    }

    /// Distinct subsystems present in the trace, in first-seen order.
    pub fn subsystems(&self) -> Vec<&'static str> {
        let s = self.state.lock();
        let mut out: Vec<&'static str> = Vec::new();
        for e in &s.events {
            if !out.contains(&e.subsystem) {
                out.push(e.subsystem);
            }
        }
        out
    }

    /// One line per event: `[  1.234567s] subsystem name key=value ...`.
    pub fn render_text(&self) -> String {
        let s = self.state.lock();
        let mut out = String::new();
        for e in &s.events {
            let marker = match e.kind {
                EventKind::Point => "",
                EventKind::SpanBegin => " [begin]",
                EventKind::SpanEnd => " [end]",
            };
            out.push_str(&format!(
                "[{:>12.6}s] {:<8} {}{}",
                e.at.as_secs_f64(),
                e.subsystem,
                e.name,
                marker
            ));
            if e.trace != 0 {
                out.push_str(&format!(" trace={}", e.trace));
            }
            for (k, v) in &e.fields {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        if s.dropped > 0 {
            out.push_str(&format!("... {} events dropped (capacity)\n", s.dropped));
        }
        out
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_events_accumulate_in_order() {
        let t = Tracer::new();
        t.event(SimTime::from_millis(1), "sched", "decision", &[]);
        t.event(
            SimTime::from_millis(2),
            "devmgr",
            "anchor",
            &[("n", "1".into())],
        );
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].fields[0].1, "1");
        assert_eq!(evs[0].trace, 0);
        assert_eq!(t.subsystems(), vec!["sched", "devmgr"]);
    }

    #[test]
    fn span_end_inherits_identity_from_begin() {
        let t = Tracer::new();
        let id = t.span_begin(SimTime::ZERO, "chaos", "recovery", &[]);
        t.span_end(SimTime::from_secs(3), id, &[("ok", "true".into())]);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].1.subsystem, "chaos");
        assert_eq!(spans[0].1.name, "recovery");
    }

    #[test]
    fn unknown_span_end_is_ignored() {
        let t = Tracer::new();
        t.span_end(SimTime::ZERO, SpanId(42), &[]);
        t.span_end(SimTime::ZERO, SpanId::NONE, &[]);
        assert!(t.events().is_empty());
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let t = Tracer::new();
        for _ in 0..Tracer::CAPACITY + 10 {
            t.event(SimTime::ZERO, "x", "y", &[]);
        }
        assert_eq!(t.events().len(), Tracer::CAPACITY);
        assert_eq!(t.dropped(), 10);
        assert!(t.render_text().contains("10 events dropped"));
    }

    #[test]
    fn root_and_child_share_trace_and_parent_links() {
        let t = Tracer::new();
        let ctx = t.root_span(SimTime::ZERO, "sched", "sharepod", &[]);
        assert!(!ctx.is_none());
        let child = t.span_begin_in(SimTime::from_millis(1), ctx, "sched", "schedule", &[]);
        t.event_in(SimTime::from_millis(2), ctx.at(child), "sched", "mark", &[]);
        t.span_end(SimTime::from_millis(3), child, &[]);
        t.span_end(SimTime::from_millis(9), ctx.span, &[]);
        let evs = t.events();
        assert!(evs.iter().all(|e| e.trace == ctx.trace));
        let child_begin = evs.iter().find(|e| e.span == child.0).unwrap();
        assert_eq!(child_begin.parent, ctx.span.0);
        let point = evs.iter().find(|e| e.kind == EventKind::Point).unwrap();
        assert_eq!(point.parent, child.0);
        // End events inherit the begin's causal links.
        let child_end = evs
            .iter()
            .find(|e| e.span == child.0 && e.kind == EventKind::SpanEnd)
            .unwrap();
        assert_eq!(child_end.parent, ctx.span.0);
        assert_eq!(child_end.trace, ctx.trace);
    }

    #[test]
    fn distinct_roots_get_distinct_traces() {
        let t = Tracer::new();
        let a = t.root_span(SimTime::ZERO, "sched", "sharepod", &[]);
        let b = t.root_span(SimTime::ZERO, "sched", "sharepod", &[]);
        assert_ne!(a.trace, b.trace);
        assert_ne!(a.span, b.span);
    }
}
