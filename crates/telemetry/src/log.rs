//! Leveled structured logging correlated to causal traces.
//!
//! A [`Logger`] is a cloneable handle with the same zero-cost-when-disabled
//! discipline as [`crate::Telemetry`]: disabled, every call is one `Option`
//! branch. Enabled, events pass a relaxed-atomic level filter, then land in
//! a bounded ring (oldest dropped and counted). Each [`LogEvent`] carries
//! the emitting subsystem, a message, typed key/value fields, and the trace
//! id of the subject's `TraceCtx`, so log lines join spans and
//! [`crate::provenance::DecisionRecord`]s on the same key. The stream
//! exports as JSON lines for external ingestion.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use ks_sim_core::time::SimTime;
use parking_lot::Mutex;
use serde::Serialize;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Fine-grained diagnostics.
    Debug,
    /// Normal operational events (placements, admissions).
    Info,
    /// Degraded but handled (rejections, holds, preemptions).
    Warn,
    /// Something is wrong.
    Error,
}

impl LogLevel {
    /// Stable label, identical to the serde rendering.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    // The vendored serde stand-in has no `#[serde(rename_all)]`.
    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Debug,
            1 => LogLevel::Info,
            2 => LogLevel::Warn,
            _ => LogLevel::Error,
        }
    }
}

impl Serialize for LogLevel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

/// One structured log event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LogEvent {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Severity.
    pub level: LogLevel,
    /// Emitting subsystem (`sched`, `gateway`, `partition`, ...).
    pub subsystem: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Trace id of the subject's `TraceCtx` (0 = uncorrelated).
    pub trace: u64,
    /// Structured key/value context.
    pub fields: Vec<(String, String)>,
}

struct LoggerState {
    ring: VecDeque<LogEvent>,
    dropped: u64,
}

struct LoggerInner {
    capacity: usize,
    min_level: AtomicU8,
    state: Mutex<LoggerState>,
}

/// Bounded, leveled structured-log sink.
#[derive(Clone, Default)]
pub struct Logger {
    inner: Option<Arc<LoggerInner>>,
}

impl Logger {
    /// Default event-ring capacity.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// The no-op handle.
    pub fn disabled() -> Self {
        Logger { inner: None }
    }

    /// A live logger at [`LogLevel::Info`] with the default capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY, LogLevel::Info)
    }

    /// A live logger with explicit capacity and minimum level.
    pub fn with_capacity(capacity: usize, min_level: LogLevel) -> Self {
        assert!(capacity > 0, "logger capacity must be positive");
        Logger {
            inner: Some(Arc::new(LoggerInner {
                capacity,
                min_level: AtomicU8::new(min_level as u8),
                state: Mutex::new(LoggerState {
                    ring: VecDeque::with_capacity(capacity.min(1024)),
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The current minimum level ([`LogLevel::Error`] when disabled, so
    /// callers gating expensive field construction skip it).
    pub fn min_level(&self) -> LogLevel {
        self.inner
            .as_ref()
            .map(|i| LogLevel::from_u8(i.min_level.load(Ordering::Relaxed)))
            .unwrap_or(LogLevel::Error)
    }

    /// Raises or lowers the minimum level at runtime.
    pub fn set_min_level(&self, level: LogLevel) {
        if let Some(i) = &self.inner {
            i.min_level.store(level as u8, Ordering::Relaxed);
        }
    }

    /// Whether an event at `level` would be kept — gate expensive field
    /// construction on this.
    pub fn would_log(&self, level: LogLevel) -> bool {
        match &self.inner {
            None => false,
            Some(i) => level as u8 >= i.min_level.load(Ordering::Relaxed),
        }
    }

    /// Emits one event. Fields are built lazily only if the event passes
    /// the level filter. The oldest event is dropped (and counted) when
    /// the ring is full.
    pub fn log(
        &self,
        at: SimTime,
        level: LogLevel,
        subsystem: &'static str,
        trace: u64,
        message: impl FnOnce() -> String,
        fields: impl FnOnce() -> Vec<(String, String)>,
    ) {
        let Some(i) = &self.inner else { return };
        if (level as u8) < i.min_level.load(Ordering::Relaxed) {
            return;
        }
        let event = LogEvent {
            at,
            level,
            subsystem,
            message: message(),
            trace,
            fields: fields(),
        };
        let mut s = i.state.lock();
        if s.ring.len() >= i.capacity {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<LogEvent> {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Retained events correlated to one trace id.
    pub fn for_trace(&self, trace: u64) -> Vec<LogEvent> {
        self.inner
            .as_ref()
            .map(|i| {
                i.state
                    .lock()
                    .ring
                    .iter()
                    .filter(|e| e.trace != 0 && e.trace == trace)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Events retained.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().ring.len())
            .unwrap_or(0)
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().dropped)
            .unwrap_or(0)
    }

    /// JSON-lines export (one serialized [`LogEvent`] per line), the
    /// interchange format for external log ingestion.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&serde_json::to_string(&e).expect("serializable"));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_logger_is_inert() {
        let l = Logger::disabled();
        l.log(
            SimTime::ZERO,
            LogLevel::Error,
            "t",
            0,
            || "x".into(),
            Vec::new,
        );
        assert!(l.events().is_empty());
        assert!(!l.would_log(LogLevel::Error));
    }

    #[test]
    fn level_filter_gates_lazily() {
        let l = Logger::with_capacity(16, LogLevel::Warn);
        let mut built = false;
        l.log(
            SimTime::ZERO,
            LogLevel::Info,
            "t",
            0,
            || {
                built = true;
                "filtered".into()
            },
            Vec::new,
        );
        assert!(!built, "message closure must not run below min level");
        l.log(
            SimTime::ZERO,
            LogLevel::Warn,
            "t",
            0,
            || "kept".into(),
            Vec::new,
        );
        assert_eq!(l.len(), 1);
        l.set_min_level(LogLevel::Debug);
        assert!(l.would_log(LogLevel::Debug));
    }

    #[test]
    fn ring_bounds_and_trace_join() {
        let l = Logger::with_capacity(3, LogLevel::Debug);
        for i in 0..5u64 {
            l.log(
                SimTime::from_millis(i),
                LogLevel::Info,
                "sched",
                i % 2,
                || format!("event {i}"),
                || vec![("i".into(), i.to_string())],
            );
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.dropped(), 2);
        // trace 0 means uncorrelated: never returned by for_trace.
        assert!(l.for_trace(0).is_empty());
        // Retained window is i=2,3,4; only i=3 carries trace 1.
        assert_eq!(l.for_trace(1).len(), 1);
        let lines = l.to_json_lines();
        assert_eq!(lines.trim().lines().count(), 3);
        let v: serde_json::Value = serde_json::from_str(lines.lines().next().unwrap()).unwrap();
        assert_eq!(v["level"], "info");
        assert_eq!(v["subsystem"], "sched");
    }
}
