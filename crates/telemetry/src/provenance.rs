//! Decision provenance: a bounded flight recorder for scheduler outcomes.
//!
//! Telemetry's counters and spans say *what* happened; this module records
//! *why*. Every Algorithm 1 outcome — placement, rejection, preemption
//! wait, partition reconfigure — plus gateway admission verdicts,
//! preemption victim selection, kube-scheduler node ranking, and
//! remediation actions can append a structured [`DecisionRecord`]: the
//! candidate set the decision actually examined, per-candidate scores, the
//! winning comparator chain, and a typed [`ReasonCode`] when the outcome
//! is a refusal or a hold.
//!
//! The [`FlightRecorder`] follows the [`crate::Telemetry`] handle's
//! zero-cost-when-disabled discipline: a disabled handle is a `None` and
//! every call is one `Option` branch. Enabled, it is a fixed-capacity ring
//! (oldest records evicted and counted, flight-recorder style) behind one
//! uncontended mutex. Records are keyed by the sharePod's uid and its
//! existing `TraceCtx` trace id, so provenance joins the causal trace.
//!
//! The scratch collector threaded through the decision paths,
//! [`SchedProv`], is a plain struct: when off, every capture call is a
//! single branch and the reason slot (a `Copy` enum, no allocation) is
//! still tracked — so rejection-reason metrics agree whether or not the
//! recorder is installed. Candidate capture is capped at
//! [`SchedProv::MAX_CANDIDATES`] per record (the full count examined is
//! kept in [`DecisionRecord::considered`]), bounding both memory and the
//! hot-path cost of recording.

use std::sync::Arc;

use ks_sim_core::time::SimTime;
use parking_lot::Mutex;
use serde::Serialize;

/// Why a request was refused or held — the typed rejection-reason
/// taxonomy. One label per variant feeds the
/// `ks_sched_rejections_total{reason}` counter, so records and counters
/// agree by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReasonCode {
    /// No schedulable device has residual capacity and no new device can
    /// help (or the caller refuses to grow the pool).
    NoCapacity,
    /// The binding affinity target carries a different exclusion label.
    AffinityExcluded,
    /// The chosen device already hosts the request's anti-affinity label.
    AntiAffinityConflict,
    /// The binding affinity target exists but lacks residual capacity.
    AffinityNoCapacity,
    /// Spatial: the demand exceeds a whole device (no covering profile).
    DemandOverCapacity,
    /// Spatial: enough free slots exist, but no legal slice start — the
    /// capacity is stranded purely by slice geometry.
    SliceGeometryStranded,
    /// An explicitly pinned GPUID cannot host the demand.
    PinnedUnfit,
    /// Gateway: over quota, parked in the admission queue.
    QuotaParked,
    /// Gateway: over quota and the admission queue is full.
    QueueFull,
    /// Gateway: the tenant's token bucket is empty.
    RateLimited,
    /// Gateway: the token did not authenticate.
    Unauthenticated,
    /// Held `Pending` while lower-priority work is evicted on its behalf.
    AwaitingPreemption,
    /// Held `Pending` while a partition reshape it triggered completes.
    AwaitingReconfigure,
}

impl ReasonCode {
    /// Every variant, for exhaustive taxonomy checks.
    pub const ALL: [ReasonCode; 13] = [
        ReasonCode::NoCapacity,
        ReasonCode::AffinityExcluded,
        ReasonCode::AntiAffinityConflict,
        ReasonCode::AffinityNoCapacity,
        ReasonCode::DemandOverCapacity,
        ReasonCode::SliceGeometryStranded,
        ReasonCode::PinnedUnfit,
        ReasonCode::QuotaParked,
        ReasonCode::QueueFull,
        ReasonCode::RateLimited,
        ReasonCode::Unauthenticated,
        ReasonCode::AwaitingPreemption,
        ReasonCode::AwaitingReconfigure,
    ];

    /// Stable metric label (the `reason` dimension of
    /// `ks_sched_rejections_total`), identical to the serde rendering.
    pub fn label(self) -> &'static str {
        match self {
            ReasonCode::NoCapacity => "no_capacity",
            ReasonCode::AffinityExcluded => "affinity_excluded",
            ReasonCode::AntiAffinityConflict => "anti_affinity_conflict",
            ReasonCode::AffinityNoCapacity => "affinity_no_capacity",
            ReasonCode::DemandOverCapacity => "demand_over_capacity",
            ReasonCode::SliceGeometryStranded => "slice_geometry_stranded",
            ReasonCode::PinnedUnfit => "pinned_unfit",
            ReasonCode::QuotaParked => "quota_parked",
            ReasonCode::QueueFull => "queue_full",
            ReasonCode::RateLimited => "rate_limited",
            ReasonCode::Unauthenticated => "unauthenticated",
            ReasonCode::AwaitingPreemption => "awaiting_preemption",
            ReasonCode::AwaitingReconfigure => "awaiting_reconfigure",
        }
    }

    /// Parses a metric label back to the code (taxonomy round-trip).
    pub fn from_label(label: &str) -> Option<ReasonCode> {
        ReasonCode::ALL.into_iter().find(|r| r.label() == label)
    }
}

// The vendored serde stand-in has no `#[serde(rename_all)]`; serialize
// the taxonomy enums by hand so the JSON rendering IS the metric label.
impl Serialize for ReasonCode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

/// Which decision point produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Algorithm 1 (any path) deciding a sharePod.
    Schedule,
    /// The gateway's admission pipeline (auth/rate/quota gates).
    Admission,
    /// kube-scheduler node filtering and ranking for a pod.
    NodeRank,
    /// Gateway preemption: victim selection for a starved sharePod.
    PreemptVictim,
    /// A partition reconfiguration (drain → reshape → activate).
    Reconfigure,
    /// A remediation controller action.
    Remediation,
}

impl DecisionKind {
    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Schedule => "schedule",
            DecisionKind::Admission => "admission",
            DecisionKind::NodeRank => "node_rank",
            DecisionKind::PreemptVictim => "preempt_victim",
            DecisionKind::Reconfigure => "reconfigure",
            DecisionKind::Remediation => "remediation",
        }
    }
}

impl Serialize for DecisionKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

/// What a decision concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Bound to an existing target (vGPU, slice, or node).
    Placed {
        /// The chosen target id.
        target: SmallStr,
    },
    /// A fresh vGPU was created to host the request.
    NewDevice {
        /// The new device's id.
        target: SmallStr,
    },
    /// A partition reconfiguration was ordered on `target`.
    Reconfigure {
        /// The device being reshaped.
        target: SmallStr,
    },
    /// Refused with a typed reason.
    Rejected {
        /// Why.
        reason: ReasonCode,
    },
    /// Still pending, held with a typed reason (not a terminal refusal).
    Held {
        /// Why.
        reason: ReasonCode,
    },
    /// Evicted from `target` on behalf of higher-priority work.
    Evicted {
        /// The device the victim lost.
        target: SmallStr,
    },
    /// A named action was executed against `target`.
    Action {
        /// Action label (e.g. `cordon_node`).
        name: String,
        /// Target of the action.
        target: SmallStr,
    },
}

impl Outcome {
    /// The outcome class label (stable across targets/reasons).
    pub fn class(&self) -> &'static str {
        match self {
            Outcome::Placed { .. } => "placed",
            Outcome::NewDevice { .. } => "new_device",
            Outcome::Reconfigure { .. } => "reconfigure",
            Outcome::Rejected { .. } => "rejected",
            Outcome::Held { .. } => "held",
            Outcome::Evicted { .. } => "evicted",
            Outcome::Action { .. } => "action",
        }
    }

    /// The typed reason, for refusal/hold outcomes.
    pub fn reason(&self) -> Option<ReasonCode> {
        match self {
            Outcome::Rejected { reason } | Outcome::Held { reason } => Some(*reason),
            _ => None,
        }
    }

    /// The target id, for outcomes that have one.
    pub fn target(&self) -> Option<&str> {
        match self {
            Outcome::Placed { target }
            | Outcome::NewDevice { target }
            | Outcome::Reconfigure { target }
            | Outcome::Evicted { target }
            | Outcome::Action { target, .. } => Some(target),
            Outcome::Rejected { .. } | Outcome::Held { .. } => None,
        }
    }
}

impl Serialize for Outcome {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let mut entries = vec![("class".to_string(), Value::Str(self.class().to_string()))];
        match self {
            Outcome::Placed { target }
            | Outcome::NewDevice { target }
            | Outcome::Reconfigure { target }
            | Outcome::Evicted { target } => {
                entries.push((
                    "target".to_string(),
                    Value::Str(target.as_str().to_string()),
                ));
            }
            Outcome::Rejected { reason } | Outcome::Held { reason } => {
                entries.push(("reason".to_string(), reason.to_value()));
            }
            Outcome::Action { name, target } => {
                entries.push(("name".to_string(), Value::Str(name.clone())));
                entries.push((
                    "target".to_string(),
                    Value::Str(target.as_str().to_string()),
                ));
            }
        }
        Value::Map(entries)
    }
}

/// Compact candidate-target string. Inline-only and `Copy`: ids up to 22
/// bytes — every GPUID, node name, and device target the schedulers emit
/// — are stored verbatim; a longer name is truncated at a char boundary
/// and marked with a trailing `~`. Keeping the heap out entirely makes
/// [`Candidate`] plain old data, so capturing a candidate list into the
/// ring is a flat memcpy with no per-entry branch, drop, or allocation —
/// that is what keeps the recorder inside its throughput bound.
/// Dereferences to `str`.
#[derive(Clone, Copy)]
pub struct SmallStr {
    len: u8,
    buf: [u8; 22],
}

impl SmallStr {
    /// The empty string, const-constructible (inline-array fill value).
    pub const EMPTY: SmallStr = SmallStr {
        len: 0,
        buf: [0; 22],
    };

    /// The string view.
    #[inline]
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).expect("inline bytes are utf-8")
    }
}

impl From<&str> for SmallStr {
    #[inline]
    fn from(s: &str) -> Self {
        let mut buf = [0u8; 22];
        if s.len() <= 22 {
            buf[..s.len()].copy_from_slice(s.as_bytes());
            SmallStr {
                len: s.len() as u8,
                buf,
            }
        } else {
            let mut cut = 21;
            while !s.is_char_boundary(cut) {
                cut -= 1;
            }
            buf[..cut].copy_from_slice(&s.as_bytes()[..cut]);
            buf[cut] = b'~';
            SmallStr {
                len: cut as u8 + 1,
                buf,
            }
        }
    }
}

impl From<String> for SmallStr {
    fn from(s: String) -> Self {
        SmallStr::from(s.as_str())
    }
}

impl std::ops::Deref for SmallStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Display for SmallStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq for SmallStr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<str> for SmallStr {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SmallStr {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl Serialize for SmallStr {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

/// One candidate the decision examined, with the score the comparator
/// ranked it by.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CandidateScore {
    /// Candidate id (vGPU or node).
    pub target: SmallStr,
    /// The comparator's score for this candidate: the fit key on the
    /// token substrate, the fragmentation score on the spatial substrate,
    /// the free fraction for node ranking, the eviction count for victim
    /// selection.
    pub score: f64,
    /// Which placement rule examined it (`best_fit`, `worst_fit`,
    /// `affinity`, `idle`, `frag_score`, `reconfigure`, `node_score`,
    /// `fewest_evictions`).
    pub rule: &'static str,
    /// Whether the comparator chain picked this candidate.
    pub chosen: bool,
}

/// Inline, allocation-free list of examined candidates. Sized at
/// [`SchedProv::MAX_CANDIDATES`] plus one slot so
/// [`SchedProv::choose`] can always append the winner even when the scan
/// capped out. Dereferences to the captured slice.
#[derive(Clone)]
pub struct CandidateList {
    items: [CandidateScore; CandidateList::CAP],
    len: u8,
}

impl CandidateList {
    const CAP: usize = SchedProv::MAX_CANDIDATES + 1;
    const EMPTY_ITEM: CandidateScore = CandidateScore {
        target: SmallStr::EMPTY,
        score: 0.0,
        rule: "",
        chosen: false,
    };

    /// An empty list.
    pub const fn new() -> Self {
        CandidateList {
            items: [Self::EMPTY_ITEM; Self::CAP],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, c: CandidateScore) {
        if (self.len as usize) < Self::CAP {
            self.items[self.len as usize] = c;
            self.len += 1;
        }
    }

    #[inline]
    fn visible_mut(&mut self) -> &mut [CandidateScore] {
        &mut self.items[..self.len as usize]
    }

    /// Overwrites this list with `other`'s visible entries — the
    /// in-place ring-capture path. [`CandidateScore`] is plain old data,
    /// so this is one flat memcpy of the visible prefix.
    #[inline]
    fn copy_from(&mut self, other: &CandidateList) {
        let n = other.len as usize;
        self.items[..n].copy_from_slice(&other.items[..n]);
        self.len = other.len;
    }
}

impl Default for CandidateList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for CandidateList {
    type Target = [CandidateScore];
    fn deref(&self) -> &[CandidateScore] {
        &self.items[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a CandidateList {
    type Item = &'a CandidateScore;
    type IntoIter = std::slice::Iter<'a, CandidateScore>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::fmt::Debug for CandidateList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for CandidateList {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Serialize for CandidateList {
    fn to_value(&self) -> serde::Value {
        Serialize::to_value(&**self)
    }
}

/// Inline, allocation-free comparator chain. Steps beyond the fixed
/// capacity are counted in `dropped` rather than stored — no decision
/// path today exceeds it. Dereferences to the stored steps.
#[derive(Clone)]
pub struct ChainList {
    items: [std::borrow::Cow<'static, str>; ChainList::CAP],
    len: u8,
    dropped: u16,
}

impl ChainList {
    const CAP: usize = 8;
    const EMPTY_STEP: std::borrow::Cow<'static, str> = std::borrow::Cow::Borrowed("");

    /// An empty chain.
    pub const fn new() -> Self {
        ChainList {
            items: [Self::EMPTY_STEP; Self::CAP],
            len: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, step: std::borrow::Cow<'static, str>) {
        if (self.len as usize) < Self::CAP {
            self.items[self.len as usize] = step;
            self.len += 1;
        } else {
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Steps that overflowed the fixed capacity (0 in practice).
    pub fn dropped(&self) -> usize {
        self.dropped as usize
    }

    /// Overwrites this chain with `other`'s visible steps, cloning only
    /// those — the in-place ring-capture path.
    #[inline]
    fn copy_from(&mut self, other: &ChainList) {
        for (dst, src) in self
            .items
            .iter_mut()
            .zip(&other.items[..other.len as usize])
        {
            dst.clone_from(src);
        }
        self.len = other.len;
        self.dropped = other.dropped;
    }
}

impl Default for ChainList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for ChainList {
    type Target = [std::borrow::Cow<'static, str>];
    fn deref(&self) -> &[std::borrow::Cow<'static, str>] {
        &self.items[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a ChainList {
    type Item = &'a std::borrow::Cow<'static, str>;
    type IntoIter = std::slice::Iter<'a, std::borrow::Cow<'static, str>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::fmt::Debug for ChainList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for ChainList {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Serialize for ChainList {
    fn to_value(&self) -> serde::Value {
        Serialize::to_value(&**self)
    }
}

/// One structured provenance record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecisionRecord {
    /// Monotone sequence number (global across the recorder); per-sharePod
    /// record order is the `seq` order.
    pub seq: u64,
    /// When the decision ran.
    pub at: SimTime,
    /// SharePod (or pod) uid the decision was about; 0 = none.
    pub sp: u64,
    /// Trace id of the subject's `TraceCtx` (0 = untraced) — the join key
    /// into the causal trace.
    pub trace: u64,
    /// Which decision point produced this record.
    pub kind: DecisionKind,
    /// What it concluded.
    pub outcome: Outcome,
    /// The candidates examined (capped at [`SchedProv::MAX_CANDIDATES`];
    /// the chosen candidate is always present even past the cap). Stored
    /// inline — capturing a record performs no per-candidate allocation.
    pub candidates: CandidateList,
    /// Total candidates examined, including any beyond the capture cap.
    pub considered: usize,
    /// The winning comparator chain: one human-readable step per rule the
    /// decision walked. Static steps (the common case on the hot paths)
    /// are borrowed, not allocated; the list itself is inline.
    pub chain: ChainList,
    /// Extra key/value context (mode, displaced count, tenant, ...).
    pub fields: Vec<(String, String)>,
}

/// Per-decision scratch collector threaded through the decision paths.
///
/// `SchedProv::off()` is inert for candidate/chain capture (one branch per
/// call, no allocation — `Vec::new` does not allocate), but the typed
/// [`ReasonCode`] is tracked unconditionally: it is a `Copy` store on
/// rejection paths only, and keeping it live means
/// `ks_sched_rejections_total` uses the same taxonomy whether or not a
/// recorder is installed.
#[derive(Debug, Default)]
pub struct SchedProv {
    on: bool,
    reason: Option<ReasonCode>,
    candidates: CandidateList,
    considered: usize,
    chain: ChainList,
}

impl SchedProv {
    /// Captured candidates per record; `considered` keeps the full count.
    pub const MAX_CANDIDATES: usize = 8;

    /// An inert collector (reason-only).
    pub fn off() -> Self {
        SchedProv::default()
    }

    /// A capturing collector.
    pub fn on() -> Self {
        SchedProv {
            on: true,
            ..SchedProv::default()
        }
    }

    /// A collector matching a recorder's enablement.
    pub fn for_recorder(recorder: &FlightRecorder) -> Self {
        if recorder.is_enabled() {
            SchedProv::on()
        } else {
            SchedProv::off()
        }
    }

    /// Whether candidate/chain capture is live.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Clears captured state so one collector can be reused across a
    /// batch of decisions (the hot loops would otherwise re-zero the
    /// inline arrays per decision). Keeps enablement; stale entries past
    /// the cleared lengths are invisible and overwritten by later
    /// captures.
    #[inline]
    pub fn reset(&mut self) {
        self.reason = None;
        self.considered = 0;
        self.candidates.len = 0;
        self.chain.len = 0;
        self.chain.dropped = 0;
    }

    /// Notes the typed reason behind a refusal or hold. Always tracked.
    /// The last reason noted wins (a decision has one final verdict).
    #[inline]
    pub fn reject(&mut self, reason: ReasonCode) {
        self.reason = Some(reason);
    }

    /// The typed reason noted, if any.
    pub fn reason(&self) -> Option<ReasonCode> {
        self.reason
    }

    /// Notes one examined candidate. The target is built lazily so a
    /// capped-out (or off) collector does no work; targets land inline in
    /// a [`SmallStr`] without touching the heap.
    pub fn candidate_with<T: Into<SmallStr>>(
        &mut self,
        rule: &'static str,
        score: f64,
        target: impl FnOnce() -> T,
    ) {
        if !self.on {
            return;
        }
        self.considered += 1;
        if self.candidates.len() < Self::MAX_CANDIDATES {
            self.candidates.push(CandidateScore {
                target: target().into(),
                score,
                rule,
                chosen: false,
            });
        }
    }

    /// Candidate-capture slots still open (always 0 when the collector is
    /// off). The hottest scan loops keep this as a register-resident
    /// countdown so a capped-out (or disabled) collector costs one integer
    /// compare per examined device instead of a call into the collector.
    #[inline]
    pub fn scan_room(&self) -> usize {
        if self.on {
            Self::MAX_CANDIDATES.saturating_sub(self.candidates.len())
        } else {
            0
        }
    }

    /// Captures one scanned candidate *without* bumping `considered` —
    /// callers pair it with [`SchedProv::add_considered`], flushing a
    /// local scan counter once per loop. Gate calls on
    /// [`SchedProv::scan_room`].
    #[inline]
    pub fn scan_push(&mut self, rule: &'static str, score: f64, target: &str) {
        self.candidates.push(CandidateScore {
            target: target.into(),
            score,
            rule,
            chosen: false,
        });
    }

    /// Adds a bulk count of examined candidates (no-op when off).
    #[inline]
    pub fn add_considered(&mut self, n: usize) {
        if self.on {
            self.considered += n;
        }
    }

    /// Marks the winning candidate. If capture capped it out (or the rule
    /// never noted it), a chosen entry is appended so the winner is always
    /// present in the record.
    #[inline]
    pub fn choose(&mut self, target: &str, rule: &'static str, score: f64) {
        if !self.on {
            return;
        }
        if let Some(c) = self
            .candidates
            .visible_mut()
            .iter_mut()
            .find(|c| c.target == target)
        {
            c.chosen = true;
            c.rule = rule;
            c.score = score;
            return;
        }
        self.candidates.push(CandidateScore {
            target: SmallStr::from(target),
            score,
            rule,
            chosen: true,
        });
    }

    /// Marks the candidate at capture slot `idx` as the winner — the
    /// hot-path variant of [`SchedProv::choose`] for scan loops that know
    /// the winner was the `idx`-th captured candidate, skipping the
    /// target-string search. Out-of-range slots are ignored.
    #[inline]
    pub fn choose_at(&mut self, idx: usize, rule: &'static str, score: f64) {
        if !self.on {
            return;
        }
        if let Some(c) = self.candidates.visible_mut().get_mut(idx) {
            c.chosen = true;
            c.rule = rule;
            c.score = score;
        }
    }

    /// Appends the winner directly — the hot-path variant of
    /// [`SchedProv::choose`] for scan loops that know the winner was
    /// *not* captured (the scan outran the capture window), skipping the
    /// target-string search.
    #[inline]
    pub fn choose_append(&mut self, target: &str, rule: &'static str, score: f64) {
        if !self.on {
            return;
        }
        self.candidates.push(CandidateScore {
            target: SmallStr::from(target),
            score,
            rule,
            chosen: true,
        });
    }

    /// Appends one comparator-chain step (lazily built).
    pub fn note(&mut self, step: impl FnOnce() -> String) {
        if self.on {
            self.chain.push(std::borrow::Cow::Owned(step()));
        }
    }

    /// Appends one static comparator-chain step without allocating — the
    /// hot-path variant of [`SchedProv::note`] for fixed rule text.
    #[inline]
    pub fn note_static(&mut self, step: &'static str) {
        if self.on {
            self.chain.push(std::borrow::Cow::Borrowed(step));
        }
    }

    /// Candidates captured so far (empty when off).
    pub fn candidates(&self) -> &[CandidateScore] {
        &self.candidates
    }

    /// The comparator chain captured so far.
    pub fn chain(&self) -> &[std::borrow::Cow<'static, str>] {
        &self.chain
    }

    /// Total candidates examined (0 when off).
    pub fn considered(&self) -> usize {
        self.considered
    }

    /// Consumes the collector into a record (seq assigned at
    /// [`FlightRecorder::record`] time).
    pub fn into_record(
        self,
        at: SimTime,
        sp: u64,
        trace: u64,
        kind: DecisionKind,
        outcome: Outcome,
    ) -> DecisionRecord {
        DecisionRecord {
            seq: 0,
            at,
            sp,
            trace,
            kind,
            outcome,
            candidates: self.candidates,
            considered: self.considered,
            chain: self.chain,
            fields: Vec::new(),
        }
    }
}

impl DecisionRecord {
    /// A blank slot record (ring pre-fill; every field is overwritten
    /// before the slot becomes visible).
    fn empty() -> DecisionRecord {
        DecisionRecord {
            seq: 0,
            at: SimTime::ZERO,
            sp: 0,
            trace: 0,
            kind: DecisionKind::Schedule,
            outcome: Outcome::Placed {
                target: SmallStr::EMPTY,
            },
            candidates: CandidateList::new(),
            considered: 0,
            chain: ChainList::new(),
            fields: Vec::new(),
        }
    }
}

struct RecorderState {
    /// Circular buffer: grows to capacity, then `start` marks the oldest
    /// slot and new records overwrite in place — no element moves, no
    /// reallocation, so capture cost stays flat at any capacity.
    ring: Vec<DecisionRecord>,
    start: usize,
    next_seq: u64,
    evicted: u64,
}

impl RecorderState {
    /// Retained records, oldest first.
    fn iter(&self) -> impl Iterator<Item = &DecisionRecord> {
        let (wrapped, oldest_first) = self.ring.split_at(self.start);
        oldest_first.iter().chain(wrapped.iter())
    }

    /// Fills the next ring slot from a scratch collector. Only the
    /// *visible* candidates and chain steps are cloned into the slot —
    /// no intermediate `DecisionRecord` is built or moved.
    #[allow(clippy::too_many_arguments)]
    fn capture(
        &mut self,
        capacity: usize,
        at: SimTime,
        sp: u64,
        trace: u64,
        kind: DecisionKind,
        outcome: Outcome,
        prov: &SchedProv,
    ) -> u64 {
        let (slot, seq) = self.slot(capacity);
        slot.seq = seq;
        slot.at = at;
        slot.sp = sp;
        slot.trace = trace;
        slot.kind = kind;
        slot.outcome = outcome;
        slot.considered = prov.considered;
        slot.candidates.copy_from(&prov.candidates);
        slot.chain.copy_from(&prov.chain);
        slot.fields.clear();
        seq
    }

    /// The slot the next record lands in, plus its assigned seq. Grows
    /// the ring until `capacity`, then recycles the oldest slot.
    fn slot(&mut self, capacity: usize) -> (&mut DecisionRecord, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() < capacity {
            self.ring.push(DecisionRecord::empty());
            let i = self.ring.len() - 1;
            (&mut self.ring[i], seq)
        } else {
            let i = self.start;
            self.start = (self.start + 1) % self.ring.len();
            self.evicted += 1;
            (&mut self.ring[i], seq)
        }
    }
}

/// A batch recording session from [`FlightRecorder::session`]: holds the
/// recorder lock so each [`RecorderSession::record_scratch`] is a plain
/// ring-slot fill with no lock round-trip. Disabled-recorder sessions
/// are inert.
pub struct RecorderSession<'a> {
    inner: Option<(parking_lot::MutexGuard<'a, RecorderState>, usize)>,
}

impl RecorderSession<'_> {
    /// Captures a record from a scratch collector into the ring, exactly
    /// like [`FlightRecorder::record_scratch`], under the session lock.
    #[allow(clippy::too_many_arguments)]
    pub fn record_scratch(
        &mut self,
        at: SimTime,
        sp: u64,
        trace: u64,
        kind: DecisionKind,
        outcome: Outcome,
        prov: &mut SchedProv,
    ) -> u64 {
        let Some((state, capacity)) = &mut self.inner else {
            prov.reset();
            return 0;
        };
        let seq = state.capture(*capacity, at, sp, trace, kind, outcome, prov);
        prov.reset();
        seq
    }
}

struct RecorderInner {
    capacity: usize,
    state: Mutex<RecorderState>,
}

/// Bounded, lock-cheap flight recorder of [`DecisionRecord`]s.
///
/// Cloneable handle; a disabled handle (the default) records nothing at
/// the cost of one `Option` branch per call. Enabled, the ring holds the
/// most recent `capacity` records — the oldest are evicted and counted,
/// like an aircraft flight recorder, so memory never exceeds
/// `capacity × record size` no matter how long the run.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl FlightRecorder {
    /// Default ring capacity. Sized so the ring's resident set
    /// (`capacity × sizeof(DecisionRecord)`, ~1.7 MiB) stays cache-friendly:
    /// a much larger ring cycles through memory faster than the cache can
    /// hold it and the eviction traffic slows the scheduler it is observing.
    /// Use [`FlightRecorder::with_capacity`] for deeper history.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// The no-op handle.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// A live recorder with the default capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A live recorder holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            inner: Some(Arc::new(RecorderInner {
                capacity,
                state: Mutex::new(RecorderState {
                    ring: Vec::with_capacity(capacity.min(1024)),
                    start: 0,
                    next_seq: 1,
                    evicted: 0,
                }),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends a record, assigning its sequence number. Returns the seq
    /// (0 on disabled handles). Evicts the oldest record when full.
    pub fn record(&self, mut record: DecisionRecord) -> u64 {
        let Some(i) = &self.inner else {
            return 0;
        };
        let mut s = i.state.lock();
        let (slot, seq) = s.slot(i.capacity);
        record.seq = seq;
        *slot = record;
        seq
    }

    /// Captures a record directly into the ring slot from a scratch
    /// collector — the hot-path variant of [`FlightRecorder::record`].
    /// Only the *visible* candidates and chain steps are cloned into the
    /// slot (no intermediate `DecisionRecord` is built or moved), and the
    /// collector is [`SchedProv::reset`] for reuse on the next decision.
    /// On a disabled handle the collector is still reset.
    pub fn record_scratch(
        &self,
        at: SimTime,
        sp: u64,
        trace: u64,
        kind: DecisionKind,
        outcome: Outcome,
        prov: &mut SchedProv,
    ) -> u64 {
        let Some(i) = &self.inner else {
            prov.reset();
            return 0;
        };
        let seq = i
            .state
            .lock()
            .capture(i.capacity, at, sp, trace, kind, outcome, prov);
        prov.reset();
        seq
    }

    /// Opens a batch recording session holding the recorder lock until
    /// dropped, so hot drains pay one lock round-trip per batch instead
    /// of one per record. Queries (`records`, `explain`, ...) block for
    /// the session's lifetime — hold it only across tight loops.
    pub fn session(&self) -> RecorderSession<'_> {
        RecorderSession {
            inner: self.inner.as_ref().map(|i| (i.state.lock(), i.capacity)),
        }
    }

    /// The configured ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map(|i| i.capacity).unwrap_or(0)
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().ring.len())
            .unwrap_or(0)
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted after the ring filled.
    pub fn evicted(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().evicted)
            .unwrap_or(0)
    }

    /// Total records ever appended (retained + evicted).
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().next_seq - 1)
            .unwrap_or(0)
    }

    /// All retained records, oldest first (cloned out).
    pub fn records(&self) -> Vec<DecisionRecord> {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Retained records about one sharePod, in decision order.
    pub fn for_sharepod(&self, sp: u64) -> Vec<DecisionRecord> {
        self.inner
            .as_ref()
            .map(|i| {
                i.state
                    .lock()
                    .iter()
                    .filter(|r| r.sp == sp)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Retained records joined to one trace id, in decision order.
    pub fn for_trace(&self, trace: u64) -> Vec<DecisionRecord> {
        self.inner
            .as_ref()
            .map(|i| {
                i.state
                    .lock()
                    .iter()
                    .filter(|r| r.trace != 0 && r.trace == trace)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The explain query: the full decision chain for a sharePod, or
    /// `None` when the recorder holds no record of it (never recorded, or
    /// evicted by the ring bound). Records keyed to other subjects but
    /// joined to the same causal trace (e.g. the kube-scheduler's
    /// node-rank records, keyed by backing-pod rather than sharePod) are
    /// merged into the chain in decision order.
    pub fn explain(&self, sp: u64) -> Option<Explanation> {
        let mut records = self.for_sharepod(sp);
        if records.is_empty() {
            return None;
        }
        let trace = records
            .iter()
            .map(|r| r.trace)
            .find(|&t| t != 0)
            .unwrap_or(0);
        if trace != 0 {
            records.extend(self.for_trace(trace).into_iter().filter(|r| r.sp != sp));
            records.sort_by_key(|r| r.seq);
        }
        Some(Explanation { sp, trace, records })
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .finish()
    }
}

/// The answer to "why did this sharePod end up where it did": every
/// retained record about it, in decision order, plus the trace join key.
#[derive(Debug, Clone, Serialize)]
pub struct Explanation {
    /// The sharePod.
    pub sp: u64,
    /// Its causal trace id (0 = untraced).
    pub trace: u64,
    /// The decision chain, oldest first.
    pub records: Vec<DecisionRecord>,
}

impl Explanation {
    /// The final outcome of the chain.
    pub fn final_outcome(&self) -> &Outcome {
        &self
            .records
            .last()
            .expect("explanations are non-empty")
            .outcome
    }

    /// JSON rendering (pretty).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serializable")
    }

    /// Human-readable rendering, one decision per paragraph.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sharePod {} (trace {}): {} decision record(s)\n",
            self.sp,
            self.trace,
            self.records.len()
        ));
        for r in &self.records {
            let verdict = match &r.outcome {
                Outcome::Placed { target } => format!("placed on {target}"),
                Outcome::NewDevice { target } => format!("new device {target}"),
                Outcome::Reconfigure { target } => format!("reconfigure {target}"),
                Outcome::Rejected { reason } => format!("rejected: {}", reason.label()),
                Outcome::Held { reason } => format!("held: {}", reason.label()),
                Outcome::Evicted { target } => format!("evicted from {target}"),
                Outcome::Action { name, target } => format!("action {name} on {target}"),
            };
            out.push_str(&format!(
                "[{:>12.6}s] #{} {} → {}\n",
                r.at.as_secs_f64(),
                r.seq,
                r.kind.label(),
                verdict
            ));
            if r.considered > 0 {
                out.push_str(&format!(
                    "  candidates ({} examined, {} captured):\n",
                    r.considered,
                    r.candidates.len()
                ));
                for c in &r.candidates {
                    out.push_str(&format!(
                        "    {} {} score={:.6} [{}]\n",
                        if c.chosen { "*" } else { " " },
                        c.target,
                        c.score,
                        c.rule
                    ));
                }
            }
            for step in &r.chain {
                out.push_str(&format!("  | {step}\n"));
            }
            if r.chain.dropped() > 0 {
                out.push_str(&format!("  | … (+{} more steps)\n", r.chain.dropped()));
            }
            for (k, v) in &r.fields {
                out.push_str(&format!("  {k}={v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sp: u64, trace: u64) -> DecisionRecord {
        SchedProv::on().into_record(
            SimTime::from_millis(5),
            sp,
            trace,
            DecisionKind::Schedule,
            Outcome::Placed {
                target: "vgpu-1".into(),
            },
        )
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::disabled();
        assert_eq!(r.record(rec(1, 0)), 0);
        assert!(!r.is_enabled());
        assert!(r.records().is_empty());
        assert!(r.explain(1).is_none());
        assert_eq!(r.capacity(), 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            r.record(rec(i, 0));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.evicted(), 6);
        assert_eq!(r.recorded(), 10);
        // The retained window is the most recent records, in seq order.
        let seqs: Vec<u64> = r.records().iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
    }

    #[test]
    fn explain_joins_sharepod_and_trace() {
        let r = FlightRecorder::enabled();
        r.record(rec(7, 42));
        r.record(rec(8, 43));
        r.record({
            let mut x = rec(7, 42);
            x.outcome = Outcome::Rejected {
                reason: ReasonCode::NoCapacity,
            };
            x
        });
        let ex = r.explain(7).expect("recorded");
        assert_eq!(ex.trace, 42);
        assert_eq!(ex.records.len(), 2);
        assert_eq!(ex.final_outcome().class(), "rejected");
        assert_eq!(r.for_trace(43).len(), 1);
        let json: serde_json::Value = serde_json::from_str(&ex.to_json()).unwrap();
        assert_eq!(json["sp"], 7u64);
        assert_eq!(json["records"][1]["outcome"]["class"], "rejected");
        assert_eq!(json["records"][1]["outcome"]["reason"], "no_capacity");
        assert!(ex.render_text().contains("rejected: no_capacity"));
    }

    #[test]
    fn prov_off_tracks_reason_but_not_candidates() {
        let mut p = SchedProv::off();
        p.candidate_with("best_fit", 0.5, || SmallStr::from("vgpu-1"));
        p.note(|| "never built".into());
        p.reject(ReasonCode::AffinityExcluded);
        assert!(!p.is_on());
        assert_eq!(p.considered(), 0);
        assert!(p.candidates().is_empty());
        assert_eq!(p.reason(), Some(ReasonCode::AffinityExcluded));
    }

    #[test]
    fn prov_candidate_cap_keeps_winner() {
        let mut p = SchedProv::on();
        for i in 0..20 {
            p.candidate_with("best_fit", i as f64, || format!("vgpu-{i}"));
        }
        assert_eq!(p.considered(), 20);
        assert_eq!(p.candidates().len(), SchedProv::MAX_CANDIDATES);
        // The winner fell past the cap: choose() re-adds it, chosen.
        p.choose("vgpu-19", "best_fit", 19.0);
        assert_eq!(p.candidates().len(), SchedProv::MAX_CANDIDATES + 1);
        assert!(p
            .candidates()
            .iter()
            .any(|c| c.target == "vgpu-19" && c.chosen));
        // Choosing a captured candidate marks it in place.
        let mut q = SchedProv::on();
        q.candidate_with("best_fit", 1.0, || SmallStr::from("a"));
        q.candidate_with("best_fit", 2.0, || SmallStr::from("b"));
        q.choose("a", "best_fit", 1.0);
        assert_eq!(q.candidates().len(), 2);
        assert!(q.candidates()[0].chosen);
    }

    #[test]
    fn reason_labels_round_trip() {
        for r in ReasonCode::ALL {
            assert_eq!(ReasonCode::from_label(r.label()), Some(r));
            // serde rendering equals the metric label.
            let json = serde_json::to_string(&r).unwrap();
            assert_eq!(json, format!("\"{}\"", r.label()));
        }
    }

    #[test]
    fn per_sharepod_order_is_seq_order() {
        let r = FlightRecorder::enabled();
        for _ in 0..5 {
            r.record(rec(3, 9));
            r.record(rec(4, 10));
        }
        let seqs: Vec<u64> = r.for_sharepod(3).iter().map(|x| x.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert_eq!(seqs.len(), 5);
    }
}
