//! Deterministic fault injection for the KubeShare simulation.
//!
//! The paper's testbed (§5) assumes a healthy cluster; this crate supplies
//! the adversarial half of the robustness story. A [`ChaosInjector`] turns a
//! seed plus MTBF/MTTR distributions into a stream of failure events —
//! node crashes and recoveries, anchor-pod launch failures, container
//! crashes, and token-backend restarts — that an embedding world schedules
//! as ordinary discrete-event-simulation events. All randomness flows from
//! per-fault-class forks of one `SimRng`, so two injectors built from the
//! same [`ChaosConfig`] emit byte-identical schedules, and adding a fault
//! class does not perturb the others.
//!
//! The injector is passive, like every state machine in this workspace: it
//! proposes `(SimTime, ChaosEvent)` pairs and records what it proposed in a
//! replayable [`FaultRecord`] trace; the embedding world owns the event
//! queue and the recovery logic.

use ks_sim_core::rng::SimRng;
use ks_sim_core::time::{SimDuration, SimTime};
use ks_telemetry::{SpanId, Telemetry};

/// Failure classes the injector can schedule.
///
/// Node indices refer to the embedding world's node ordering (the injector
/// does not know node names). `ContainerCrash` and `BackendRestart` carry no
/// victim: the world picks one via [`ChaosInjector::pick_victim`] so that
/// victim selection stays on its own deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// A node drops off the cluster (kubelet dead, devices unreachable).
    NodeCrash { node: usize },
    /// A previously crashed node rejoins with empty state.
    NodeRecover { node: usize },
    /// Some running container dies (the world chooses which).
    ContainerCrash,
    /// The token backend daemon on some vGPU restarts, losing its
    /// queue/window state.
    BackendRestart,
}

/// One entry in the deterministic fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRecord {
    /// A scheduled fault event, stamped with its fire time.
    Event { at: SimTime, event: ChaosEvent },
    /// Outcome of one anchor-launch coin flip.
    AnchorLaunch { failed: bool },
    /// Victim index drawn for a `ContainerCrash`/`BackendRestart`.
    Victim { index: usize },
}

/// Mean-time-between-failure / mean-time-to-repair configuration.
///
/// Every `Option<SimDuration>` mean is the parameter of an exponential
/// distribution; `None` disables that fault class. `anchor_failure_rate` is
/// a per-launch Bernoulli probability rather than a renewal process because
/// anchor launches are driven by the scheduler, not by wall-clock time.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for all fault streams.
    pub seed: u64,
    /// Mean up-time of a node before it crashes.
    pub node_mtbf: Option<SimDuration>,
    /// Mean down-time of a crashed node before it recovers.
    pub node_mttr: SimDuration,
    /// Mean gap between container-crash events (cluster-wide).
    pub container_mtbf: Option<SimDuration>,
    /// Mean gap between token-backend restarts (cluster-wide).
    pub backend_mtbf: Option<SimDuration>,
    /// Probability that any single anchor-pod launch fails.
    pub anchor_failure_rate: f64,
    /// No fault fires at or after this time; lets a run quiesce so
    /// steady-state recovery can be measured.
    pub horizon: SimTime,
}

impl ChaosConfig {
    /// A configuration that injects nothing.
    pub fn disabled() -> Self {
        ChaosConfig {
            seed: 0,
            node_mtbf: None,
            node_mttr: SimDuration::from_secs(30),
            container_mtbf: None,
            backend_mtbf: None,
            anchor_failure_rate: 0.0,
            horizon: SimTime::MAX,
        }
    }

    /// The churn preset used by the robustness harness: node MTBF much
    /// larger than MTTR (nodes are mostly up), moderate container churn,
    /// and a bounded anchor failure rate.
    pub fn preset(seed: u64) -> Self {
        ChaosConfig {
            seed,
            node_mtbf: Some(SimDuration::from_secs(120)),
            node_mttr: SimDuration::from_secs(10),
            container_mtbf: Some(SimDuration::from_secs(45)),
            backend_mtbf: Some(SimDuration::from_secs(90)),
            anchor_failure_rate: 0.2,
            horizon: SimTime::MAX,
        }
    }

    /// Returns a copy with a different seed (for replay experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a fault horizon.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }
}

/// Per-node renewal state: a node alternates between up and down phases.
#[derive(Debug, Clone)]
struct NodeStream {
    rng: SimRng,
}

/// Seeded fault-event generator.
///
/// Usage: call [`ChaosInjector::initial_events`] once at simulation start
/// and schedule the returned events; whenever one fires, call
/// [`ChaosInjector::next_after`] with it to get the follow-up event (the
/// recovery for a crash, or the next renewal of a self-rescheduling
/// stream). Anchor-launch failures are polled at launch time via
/// [`ChaosInjector::anchor_launch_fails`].
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    cfg: ChaosConfig,
    nodes: Vec<NodeStream>,
    container_rng: SimRng,
    backend_rng: SimRng,
    anchor_rng: SimRng,
    victim_rng: SimRng,
    trace: Vec<FaultRecord>,
    telemetry: Telemetry,
    /// Open `node_outage` span per node (crash fired, recovery pending).
    outage_spans: Vec<SpanId>,
}

impl ChaosInjector {
    /// Builds an injector for a cluster of `num_nodes` nodes.
    pub fn new(cfg: ChaosConfig, num_nodes: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.anchor_failure_rate),
            "anchor_failure_rate out of range: {}",
            cfg.anchor_failure_rate
        );
        let mut root = SimRng::seed_from_u64(cfg.seed ^ 0xC4A0_5C4A_05C4_A05C);
        // Fork order is part of the determinism contract: per-node streams
        // first (so the same node index always gets the same stream for a
        // given seed and node count), then the class-wide streams.
        let nodes = (0..num_nodes)
            .map(|_| NodeStream { rng: root.fork() })
            .collect();
        ChaosInjector {
            nodes,
            container_rng: root.fork(),
            backend_rng: root.fork(),
            anchor_rng: root.fork(),
            victim_rng: root.fork(),
            cfg,
            trace: Vec::new(),
            telemetry: Telemetry::disabled(),
            outage_spans: vec![SpanId::NONE; num_nodes],
        }
    }

    /// Attaches a telemetry handle. Faults are counted when they *fire*
    /// (i.e. when the world feeds them back through
    /// [`ChaosInjector::next_after`]), not when they are scheduled, so the
    /// metrics reflect what the cluster actually experienced. Node outages
    /// additionally open a `chaos/node_outage` span closed by the matching
    /// recovery.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn kind_label(event: ChaosEvent) -> &'static str {
        match event {
            ChaosEvent::NodeCrash { .. } => "node_crash",
            ChaosEvent::NodeRecover { .. } => "node_recover",
            ChaosEvent::ContainerCrash => "container_crash",
            ChaosEvent::BackendRestart => "backend_restart",
        }
    }

    /// Records a fired fault: counter, trace event, and outage span
    /// begin/end for node crash/recover pairs.
    fn note_fired(&mut self, now: SimTime, event: ChaosEvent) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let kind = Self::kind_label(event);
        self.telemetry
            .counter("ks_chaos_faults_total", &[("kind", kind)])
            .inc();
        match event {
            ChaosEvent::NodeCrash { node } => {
                self.outage_spans[node] = self.telemetry.span_begin(
                    now,
                    "chaos",
                    "node_outage",
                    &[("node", node.to_string())],
                );
            }
            ChaosEvent::NodeRecover { node } => {
                let span = std::mem::replace(&mut self.outage_spans[node], SpanId::NONE);
                self.telemetry.span_end(now, span, &[]);
            }
            _ => {
                self.telemetry
                    .trace_event(now, "chaos", "fault", &[("kind", kind.to_string())]);
            }
        }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// The deterministic trace of everything the injector has emitted.
    pub fn trace(&self) -> &[FaultRecord] {
        &self.trace
    }

    /// First event of every enabled fault stream, to be scheduled by the
    /// embedding world at simulation start.
    pub fn initial_events(&mut self) -> Vec<(SimTime, ChaosEvent)> {
        let mut out = Vec::new();
        if self.cfg.node_mtbf.is_some() {
            for node in 0..self.nodes.len() {
                if let Some(ev) = self.node_crash_after(SimTime::ZERO, node) {
                    out.push(ev);
                }
            }
        }
        if self.cfg.container_mtbf.is_some() {
            if let Some(ev) = self.renewal(SimTime::ZERO, ChaosEvent::ContainerCrash) {
                out.push(ev);
            }
        }
        if self.cfg.backend_mtbf.is_some() {
            if let Some(ev) = self.renewal(SimTime::ZERO, ChaosEvent::BackendRestart) {
                out.push(ev);
            }
        }
        out
    }

    /// Follow-up event after `event` fired at `now`: the matching recovery
    /// for a crash, the next crash after a recovery, or the next renewal of
    /// a cluster-wide stream. Returns `None` past the horizon.
    pub fn next_after(&mut self, now: SimTime, event: ChaosEvent) -> Option<(SimTime, ChaosEvent)> {
        self.note_fired(now, event);
        match event {
            ChaosEvent::NodeCrash { node } => {
                let gap = self.nodes[node].rng.exp_interarrival(self.cfg.node_mttr);
                self.emit(now + gap, ChaosEvent::NodeRecover { node })
            }
            ChaosEvent::NodeRecover { node } => self.node_crash_after(now, node),
            ChaosEvent::ContainerCrash | ChaosEvent::BackendRestart => self.renewal(now, event),
        }
    }

    /// Coin flip for one anchor-pod launch; recorded in the trace.
    pub fn anchor_launch_fails(&mut self) -> bool {
        let failed = self.cfg.anchor_failure_rate > 0.0
            && self.anchor_rng.bernoulli(self.cfg.anchor_failure_rate);
        self.trace.push(FaultRecord::AnchorLaunch { failed });
        if failed && self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_chaos_anchor_launch_failures_total", &[])
                .inc();
        }
        failed
    }

    /// Draws a victim index in `[0, n)` for a `ContainerCrash` or
    /// `BackendRestart`; recorded in the trace. Returns `None` when there
    /// is nothing to victimise.
    pub fn pick_victim(&mut self, n: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let index = self.victim_rng.index(n);
        self.trace.push(FaultRecord::Victim { index });
        Some(index)
    }

    fn node_crash_after(&mut self, now: SimTime, node: usize) -> Option<(SimTime, ChaosEvent)> {
        let mtbf = self.cfg.node_mtbf?;
        let gap = self.nodes[node].rng.exp_interarrival(mtbf);
        self.emit(now + gap, ChaosEvent::NodeCrash { node })
    }

    fn renewal(&mut self, now: SimTime, event: ChaosEvent) -> Option<(SimTime, ChaosEvent)> {
        let (mean, rng) = match event {
            ChaosEvent::ContainerCrash => (self.cfg.container_mtbf?, &mut self.container_rng),
            ChaosEvent::BackendRestart => (self.cfg.backend_mtbf?, &mut self.backend_rng),
            _ => unreachable!("renewal() only handles cluster-wide streams"),
        };
        let gap = rng.exp_interarrival(mean);
        self.emit(now + gap, event)
    }

    fn emit(&mut self, at: SimTime, event: ChaosEvent) -> Option<(SimTime, ChaosEvent)> {
        if at >= self.cfg.horizon {
            return None;
        }
        self.trace.push(FaultRecord::Event { at, event });
        Some((at, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(inj: &mut ChaosInjector, rounds: usize) -> Vec<(SimTime, ChaosEvent)> {
        let mut pending = inj.initial_events();
        let mut fired = Vec::new();
        for _ in 0..rounds {
            pending.sort_by_key(|(t, _)| *t);
            if pending.is_empty() {
                break;
            }
            let (t, ev) = pending.remove(0);
            fired.push((t, ev));
            if let Some(next) = inj.next_after(t, ev) {
                pending.push(next);
            }
        }
        fired
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = ChaosConfig::preset(42);
        let mut a = ChaosInjector::new(cfg.clone(), 3);
        let mut b = ChaosInjector::new(cfg, 3);
        let fa = drain(&mut a, 200);
        let fb = drain(&mut b, 200);
        assert_eq!(fa, fb);
        assert_eq!(a.trace(), b.trace());
        // Anchor coin flips come from their own stream and are likewise
        // reproducible.
        let flips_a: Vec<bool> = (0..50).map(|_| a.anchor_launch_fails()).collect();
        let flips_b: Vec<bool> = (0..50).map(|_| b.anchor_launch_fails()).collect();
        assert_eq!(flips_a, flips_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaosInjector::new(ChaosConfig::preset(1), 3);
        let mut b = ChaosInjector::new(ChaosConfig::preset(2), 3);
        assert_ne!(drain(&mut a, 50), drain(&mut b, 50));
    }

    #[test]
    fn crash_and_recover_alternate_per_node() {
        let mut inj = ChaosInjector::new(ChaosConfig::preset(7), 2);
        let fired = drain(&mut inj, 400);
        for node in 0..2 {
            let mut up = true;
            for (_, ev) in &fired {
                match ev {
                    ChaosEvent::NodeCrash { node: n } if *n == node => {
                        assert!(up, "node {node} crashed while already down");
                        up = false;
                    }
                    ChaosEvent::NodeRecover { node: n } if *n == node => {
                        assert!(!up, "node {node} recovered while up");
                        up = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn disabled_config_emits_nothing() {
        let mut inj = ChaosInjector::new(ChaosConfig::disabled(), 4);
        assert!(inj.initial_events().is_empty());
        assert!(!inj.anchor_launch_fails());
        assert!(inj
            .trace()
            .iter()
            .all(|r| matches!(r, FaultRecord::AnchorLaunch { failed: false })));
    }

    #[test]
    fn horizon_caps_the_schedule() {
        let horizon = SimTime::from_secs(300);
        let cfg = ChaosConfig::preset(11).with_horizon(horizon);
        let mut inj = ChaosInjector::new(cfg, 3);
        let fired = drain(&mut inj, 10_000);
        assert!(!fired.is_empty());
        assert!(fired.iter().all(|(t, _)| *t < horizon));
        // drain() stops because every stream ran past the horizon, not
        // because we hit the round cap.
        assert!(fired.len() < 10_000);
    }

    #[test]
    fn mtbf_matches_configured_mean() {
        // One node, long horizon: the empirical mean of up-phases should be
        // within 15% of the configured MTBF.
        let cfg = ChaosConfig {
            seed: 5,
            node_mtbf: Some(SimDuration::from_secs(100)),
            node_mttr: SimDuration::from_secs(5),
            container_mtbf: None,
            backend_mtbf: None,
            anchor_failure_rate: 0.0,
            horizon: SimTime::MAX,
        };
        let mut inj = ChaosInjector::new(cfg, 1);
        let fired = drain(&mut inj, 2000);
        let mut up_total = 0.0;
        let mut up_count = 0u32;
        let mut last_recover = SimTime::ZERO;
        for (t, ev) in fired {
            match ev {
                ChaosEvent::NodeCrash { .. } => {
                    up_total += t.saturating_since(last_recover).as_secs_f64();
                    up_count += 1;
                }
                ChaosEvent::NodeRecover { .. } => last_recover = t,
                _ => {}
            }
        }
        let mean = up_total / up_count as f64;
        assert!(
            (85.0..=115.0).contains(&mean),
            "empirical MTBF {mean:.1}s outside 100s +/- 15%"
        );
    }

    #[test]
    fn anchor_failure_rate_is_respected() {
        let mut inj = ChaosInjector::new(ChaosConfig::preset(9), 1);
        let fails = (0..2000).filter(|_| inj.anchor_launch_fails()).count();
        let rate = fails as f64 / 2000.0;
        assert!(
            (0.15..=0.25).contains(&rate),
            "empirical anchor failure rate {rate:.3} outside 0.2 +/- 0.05"
        );
    }

    #[test]
    fn victim_stream_is_deterministic_and_in_range() {
        let mut a = ChaosInjector::new(ChaosConfig::preset(3), 2);
        let mut b = ChaosInjector::new(ChaosConfig::preset(3), 2);
        for n in 1..20 {
            let va = a.pick_victim(n);
            assert_eq!(va, b.pick_victim(n));
            assert!(va.unwrap() < n);
        }
        assert_eq!(a.pick_victim(0), None);
    }
}
