//! Deterministic fault injection for the KubeShare simulation.
//!
//! The paper's testbed (§5) assumes a healthy cluster; this crate supplies
//! the adversarial half of the robustness story. A [`ChaosInjector`] turns a
//! seed plus MTBF/MTTR distributions into a stream of failure events —
//! node crashes and recoveries, anchor-pod launch failures, container
//! crashes, and token-backend restarts — that an embedding world schedules
//! as ordinary discrete-event-simulation events. All randomness flows from
//! per-fault-class forks of one `SimRng`, so two injectors built from the
//! same [`ChaosConfig`] emit byte-identical schedules, and adding a fault
//! class does not perturb the others.
//!
//! The injector is passive, like every state machine in this workspace: it
//! proposes `(SimTime, ChaosEvent)` pairs and records what it proposed in a
//! replayable [`FaultRecord`] trace; the embedding world owns the event
//! queue and the recovery logic.

use ks_sim_core::rng::SimRng;
use ks_sim_core::time::{SimDuration, SimTime};
use ks_telemetry::{SpanId, Telemetry};

/// Failure classes the injector can schedule.
///
/// Node indices refer to the embedding world's node ordering (the injector
/// does not know node names). `ContainerCrash` and `BackendRestart` carry no
/// victim: the world picks one via [`ChaosInjector::pick_victim`] so that
/// victim selection stays on its own deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// A node drops off the cluster (kubelet dead, devices unreachable).
    NodeCrash { node: usize },
    /// A previously crashed node rejoins with empty state.
    NodeRecover { node: usize },
    /// Some running container dies (the world chooses which).
    ContainerCrash,
    /// The token backend daemon on some vGPU restarts, losing its
    /// queue/window state.
    BackendRestart,
    /// Some vGPU's physical GPU silently slows down (thermal throttling,
    /// ECC retirement, a noisy co-tenant outside the framework's
    /// control): kernel bursts stretch by `1 + severity_pct/100` until
    /// the matching [`ChaosEvent::VgpuRestore`] fires. The world picks
    /// the victim via [`ChaosInjector::pick_degrade_victim`]. Severity
    /// is integer percent so fault events stay `Eq`/replayable.
    VgpuDegrade { severity_pct: u32 },
    /// The oldest still-degraded vGPU returns to full speed.
    VgpuRestore,
}

/// One entry in the deterministic fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRecord {
    /// A scheduled fault event, stamped with its fire time.
    Event { at: SimTime, event: ChaosEvent },
    /// Outcome of one anchor-launch coin flip.
    AnchorLaunch { failed: bool },
    /// Victim index drawn for a `ContainerCrash`/`BackendRestart`.
    Victim { index: usize },
    /// Victim index drawn for a `VgpuDegrade`.
    DegradeVictim { index: usize },
    /// Slice index drawn when a fault lands on a spatially partitioned
    /// vGPU and must be scoped to one resident slice.
    SliceVictim { index: usize },
}

/// Mean-time-between-failure / mean-time-to-repair configuration.
///
/// Every `Option<SimDuration>` mean is the parameter of an exponential
/// distribution; `None` disables that fault class. `anchor_failure_rate` is
/// a per-launch Bernoulli probability rather than a renewal process because
/// anchor launches are driven by the scheduler, not by wall-clock time.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for all fault streams.
    pub seed: u64,
    /// Mean up-time of a node before it crashes.
    pub node_mtbf: Option<SimDuration>,
    /// Mean down-time of a crashed node before it recovers.
    pub node_mttr: SimDuration,
    /// Mean gap between container-crash events (cluster-wide).
    pub container_mtbf: Option<SimDuration>,
    /// Mean gap between token-backend restarts (cluster-wide).
    pub backend_mtbf: Option<SimDuration>,
    /// Probability that any single anchor-pod launch fails.
    pub anchor_failure_rate: f64,
    /// Mean gap between vGPU-degradation events (cluster-wide).
    pub vgpu_degrade_mtbf: Option<SimDuration>,
    /// Mean duration of a degradation before the vGPU restores.
    pub vgpu_degrade_mttr: SimDuration,
    /// Severity range in integer percent slowdown, inclusive: each
    /// degradation draws uniformly from `[lo, hi]` and stretches kernel
    /// bursts by `1 + pct/100`.
    pub vgpu_degrade_severity_pct: (u32, u32),
    /// No fault fires at or after this time; lets a run quiesce so
    /// steady-state recovery can be measured.
    pub horizon: SimTime,
}

impl ChaosConfig {
    /// A configuration that injects nothing.
    pub fn disabled() -> Self {
        ChaosConfig {
            seed: 0,
            node_mtbf: None,
            node_mttr: SimDuration::from_secs(30),
            container_mtbf: None,
            backend_mtbf: None,
            anchor_failure_rate: 0.0,
            vgpu_degrade_mtbf: None,
            vgpu_degrade_mttr: SimDuration::from_secs(60),
            vgpu_degrade_severity_pct: (100, 300),
            horizon: SimTime::MAX,
        }
    }

    /// The churn preset used by the robustness harness: node MTBF much
    /// larger than MTTR (nodes are mostly up), moderate container churn,
    /// and a bounded anchor failure rate.
    pub fn preset(seed: u64) -> Self {
        ChaosConfig {
            seed,
            node_mtbf: Some(SimDuration::from_secs(120)),
            node_mttr: SimDuration::from_secs(10),
            container_mtbf: Some(SimDuration::from_secs(45)),
            backend_mtbf: Some(SimDuration::from_secs(90)),
            anchor_failure_rate: 0.2,
            vgpu_degrade_mtbf: None,
            vgpu_degrade_mttr: SimDuration::from_secs(60),
            vgpu_degrade_severity_pct: (100, 300),
            horizon: SimTime::MAX,
        }
    }

    /// Returns a copy with a different seed (for replay experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the degraded-vGPU stream enabled: mean gap
    /// `mtbf` between degradations, mean duration `mttr`, and severity
    /// drawn uniformly from `severity_pct` (inclusive, `lo ≤ hi`).
    pub fn with_vgpu_degrade(
        mut self,
        mtbf: SimDuration,
        mttr: SimDuration,
        severity_pct: (u32, u32),
    ) -> Self {
        assert!(
            severity_pct.0 <= severity_pct.1,
            "severity range inverted: {severity_pct:?}"
        );
        self.vgpu_degrade_mtbf = Some(mtbf);
        self.vgpu_degrade_mttr = mttr;
        self.vgpu_degrade_severity_pct = severity_pct;
        self
    }

    /// Returns a copy with a fault horizon.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }
}

/// Per-node renewal state: a node alternates between up and down phases.
#[derive(Debug, Clone)]
struct NodeStream {
    rng: SimRng,
}

/// Seeded fault-event generator.
///
/// Usage: call [`ChaosInjector::initial_events`] once at simulation start
/// and schedule the returned events; whenever one fires, call
/// [`ChaosInjector::next_after`] with it to get the follow-up event (the
/// recovery for a crash, or the next renewal of a self-rescheduling
/// stream). Anchor-launch failures are polled at launch time via
/// [`ChaosInjector::anchor_launch_fails`].
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    cfg: ChaosConfig,
    nodes: Vec<NodeStream>,
    container_rng: SimRng,
    backend_rng: SimRng,
    anchor_rng: SimRng,
    victim_rng: SimRng,
    degrade_rng: SimRng,
    degrade_victim_rng: SimRng,
    slice_victim_rng: SimRng,
    trace: Vec<FaultRecord>,
    telemetry: Telemetry,
    /// Open `node_outage` span per node (crash fired, recovery pending).
    outage_spans: Vec<SpanId>,
}

impl ChaosInjector {
    /// Builds an injector for a cluster of `num_nodes` nodes.
    pub fn new(cfg: ChaosConfig, num_nodes: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.anchor_failure_rate),
            "anchor_failure_rate out of range: {}",
            cfg.anchor_failure_rate
        );
        let mut root = SimRng::seed_from_u64(cfg.seed ^ 0xC4A0_5C4A_05C4_A05C);
        // Fork order is part of the determinism contract: per-node streams
        // first (so the same node index always gets the same stream for a
        // given seed and node count), then the class-wide streams. New
        // fault classes must fork AFTER the existing ones so configs that
        // do not use them replay byte-identically.
        let nodes = (0..num_nodes)
            .map(|_| NodeStream { rng: root.fork() })
            .collect();
        ChaosInjector {
            nodes,
            container_rng: root.fork(),
            backend_rng: root.fork(),
            anchor_rng: root.fork(),
            victim_rng: root.fork(),
            degrade_rng: root.fork(),
            degrade_victim_rng: root.fork(),
            slice_victim_rng: root.fork(),
            cfg,
            trace: Vec::new(),
            telemetry: Telemetry::disabled(),
            outage_spans: vec![SpanId::NONE; num_nodes],
        }
    }

    /// Attaches a telemetry handle. Faults are counted when they *fire*
    /// (i.e. when the world feeds them back through
    /// [`ChaosInjector::next_after`]), not when they are scheduled, so the
    /// metrics reflect what the cluster actually experienced. Node outages
    /// additionally open a `chaos/node_outage` span closed by the matching
    /// recovery.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn kind_label(event: ChaosEvent) -> &'static str {
        match event {
            ChaosEvent::NodeCrash { .. } => "node_crash",
            ChaosEvent::NodeRecover { .. } => "node_recover",
            ChaosEvent::ContainerCrash => "container_crash",
            ChaosEvent::BackendRestart => "backend_restart",
            ChaosEvent::VgpuDegrade { .. } => "vgpu_degrade",
            ChaosEvent::VgpuRestore => "vgpu_restore",
        }
    }

    /// Records a fired fault: counter, trace event, and outage span
    /// begin/end for node crash/recover pairs.
    fn note_fired(&mut self, now: SimTime, event: ChaosEvent) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let kind = Self::kind_label(event);
        self.telemetry
            .counter("ks_chaos_faults_total", &[("kind", kind)])
            .inc();
        match event {
            ChaosEvent::NodeCrash { node } => {
                self.outage_spans[node] = self.telemetry.span_begin(
                    now,
                    "chaos",
                    "node_outage",
                    &[("node", node.to_string())],
                );
            }
            ChaosEvent::NodeRecover { node } => {
                let span = std::mem::replace(&mut self.outage_spans[node], SpanId::NONE);
                self.telemetry.span_end(now, span, &[]);
            }
            _ => {
                self.telemetry
                    .trace_event(now, "chaos", "fault", &[("kind", kind.to_string())]);
            }
        }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// The deterministic trace of everything the injector has emitted.
    pub fn trace(&self) -> &[FaultRecord] {
        &self.trace
    }

    /// First event of every enabled fault stream, to be scheduled by the
    /// embedding world at simulation start.
    pub fn initial_events(&mut self) -> Vec<(SimTime, ChaosEvent)> {
        let mut out = Vec::new();
        if self.cfg.node_mtbf.is_some() {
            for node in 0..self.nodes.len() {
                if let Some(ev) = self.node_crash_after(SimTime::ZERO, node) {
                    out.push(ev);
                }
            }
        }
        if self.cfg.container_mtbf.is_some() {
            if let Some(ev) = self.renewal(SimTime::ZERO, ChaosEvent::ContainerCrash) {
                out.push(ev);
            }
        }
        if self.cfg.backend_mtbf.is_some() {
            if let Some(ev) = self.renewal(SimTime::ZERO, ChaosEvent::BackendRestart) {
                out.push(ev);
            }
        }
        if self.cfg.vgpu_degrade_mtbf.is_some() {
            if let Some(ev) = self.degrade_after(SimTime::ZERO) {
                out.push(ev);
            }
        }
        out
    }

    /// Follow-up event after `event` fired at `now`: the matching recovery
    /// for a crash, the next crash after a recovery, or the next renewal of
    /// a cluster-wide stream. Returns `None` past the horizon.
    pub fn next_after(&mut self, now: SimTime, event: ChaosEvent) -> Option<(SimTime, ChaosEvent)> {
        self.note_fired(now, event);
        match event {
            ChaosEvent::NodeCrash { node } => {
                let gap = self.nodes[node].rng.exp_interarrival(self.cfg.node_mttr);
                self.emit(now + gap, ChaosEvent::NodeRecover { node })
            }
            ChaosEvent::NodeRecover { node } => self.node_crash_after(now, node),
            ChaosEvent::ContainerCrash | ChaosEvent::BackendRestart => self.renewal(now, event),
            ChaosEvent::VgpuDegrade { .. } => {
                let gap = self
                    .degrade_rng
                    .exp_interarrival(self.cfg.vgpu_degrade_mttr);
                self.emit(now + gap, ChaosEvent::VgpuRestore)
            }
            ChaosEvent::VgpuRestore => self.degrade_after(now),
        }
    }

    /// Coin flip for one anchor-pod launch; recorded in the trace.
    pub fn anchor_launch_fails(&mut self) -> bool {
        let failed = self.cfg.anchor_failure_rate > 0.0
            && self.anchor_rng.bernoulli(self.cfg.anchor_failure_rate);
        self.trace.push(FaultRecord::AnchorLaunch { failed });
        if failed && self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_chaos_anchor_launch_failures_total", &[])
                .inc();
        }
        failed
    }

    /// Draws a victim index in `[0, n)` for a `ContainerCrash` or
    /// `BackendRestart`; recorded in the trace. Returns `None` when there
    /// is nothing to victimise.
    pub fn pick_victim(&mut self, n: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let index = self.victim_rng.index(n);
        self.trace.push(FaultRecord::Victim { index });
        Some(index)
    }

    /// Draws a victim index in `[0, n)` for a `VgpuDegrade`; recorded in
    /// the trace on its own stream so degrade victims never perturb
    /// container/backend victim draws. Returns `None` when there is
    /// nothing to degrade.
    pub fn pick_degrade_victim(&mut self, n: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let index = self.degrade_victim_rng.index(n);
        self.trace.push(FaultRecord::DegradeVictim { index });
        Some(index)
    }

    /// Draws a resident-slice index in `[0, n)` when a fault lands on a
    /// spatially partitioned vGPU: instead of taking the whole device, the
    /// blast radius is one slice (the world drains only that slice's
    /// sharePods, e.g. via a `"gpu#sN"` drain target). Its own stream, so
    /// enabling slice-scoped faults never perturbs whole-device victim
    /// draws. Returns `None` when the device has no resident slices.
    pub fn pick_slice_victim(&mut self, n: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let index = self.slice_victim_rng.index(n);
        self.trace.push(FaultRecord::SliceVictim { index });
        Some(index)
    }

    /// Schedules the next degradation: exponential gap, severity drawn
    /// uniformly from the configured range at schedule time (so it is
    /// part of the replayable trace entry).
    fn degrade_after(&mut self, now: SimTime) -> Option<(SimTime, ChaosEvent)> {
        let mtbf = self.cfg.vgpu_degrade_mtbf?;
        let gap = self.degrade_rng.exp_interarrival(mtbf);
        let (lo, hi) = self.cfg.vgpu_degrade_severity_pct;
        let severity_pct = lo + self.degrade_rng.index((hi - lo + 1) as usize) as u32;
        self.emit(now + gap, ChaosEvent::VgpuDegrade { severity_pct })
    }

    fn node_crash_after(&mut self, now: SimTime, node: usize) -> Option<(SimTime, ChaosEvent)> {
        let mtbf = self.cfg.node_mtbf?;
        let gap = self.nodes[node].rng.exp_interarrival(mtbf);
        self.emit(now + gap, ChaosEvent::NodeCrash { node })
    }

    fn renewal(&mut self, now: SimTime, event: ChaosEvent) -> Option<(SimTime, ChaosEvent)> {
        let (mean, rng) = match event {
            ChaosEvent::ContainerCrash => (self.cfg.container_mtbf?, &mut self.container_rng),
            ChaosEvent::BackendRestart => (self.cfg.backend_mtbf?, &mut self.backend_rng),
            _ => unreachable!("renewal() only handles cluster-wide streams"),
        };
        let gap = rng.exp_interarrival(mean);
        self.emit(now + gap, event)
    }

    fn emit(&mut self, at: SimTime, event: ChaosEvent) -> Option<(SimTime, ChaosEvent)> {
        if at >= self.cfg.horizon {
            return None;
        }
        self.trace.push(FaultRecord::Event { at, event });
        Some((at, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(inj: &mut ChaosInjector, rounds: usize) -> Vec<(SimTime, ChaosEvent)> {
        let mut pending = inj.initial_events();
        let mut fired = Vec::new();
        for _ in 0..rounds {
            pending.sort_by_key(|(t, _)| *t);
            if pending.is_empty() {
                break;
            }
            let (t, ev) = pending.remove(0);
            fired.push((t, ev));
            if let Some(next) = inj.next_after(t, ev) {
                pending.push(next);
            }
        }
        fired
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = ChaosConfig::preset(42);
        let mut a = ChaosInjector::new(cfg.clone(), 3);
        let mut b = ChaosInjector::new(cfg, 3);
        let fa = drain(&mut a, 200);
        let fb = drain(&mut b, 200);
        assert_eq!(fa, fb);
        assert_eq!(a.trace(), b.trace());
        // Anchor coin flips come from their own stream and are likewise
        // reproducible.
        let flips_a: Vec<bool> = (0..50).map(|_| a.anchor_launch_fails()).collect();
        let flips_b: Vec<bool> = (0..50).map(|_| b.anchor_launch_fails()).collect();
        assert_eq!(flips_a, flips_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaosInjector::new(ChaosConfig::preset(1), 3);
        let mut b = ChaosInjector::new(ChaosConfig::preset(2), 3);
        assert_ne!(drain(&mut a, 50), drain(&mut b, 50));
    }

    #[test]
    fn crash_and_recover_alternate_per_node() {
        let mut inj = ChaosInjector::new(ChaosConfig::preset(7), 2);
        let fired = drain(&mut inj, 400);
        for node in 0..2 {
            let mut up = true;
            for (_, ev) in &fired {
                match ev {
                    ChaosEvent::NodeCrash { node: n } if *n == node => {
                        assert!(up, "node {node} crashed while already down");
                        up = false;
                    }
                    ChaosEvent::NodeRecover { node: n } if *n == node => {
                        assert!(!up, "node {node} recovered while up");
                        up = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn disabled_config_emits_nothing() {
        let mut inj = ChaosInjector::new(ChaosConfig::disabled(), 4);
        assert!(inj.initial_events().is_empty());
        assert!(!inj.anchor_launch_fails());
        assert!(inj
            .trace()
            .iter()
            .all(|r| matches!(r, FaultRecord::AnchorLaunch { failed: false })));
    }

    #[test]
    fn horizon_caps_the_schedule() {
        let horizon = SimTime::from_secs(300);
        let cfg = ChaosConfig::preset(11).with_horizon(horizon);
        let mut inj = ChaosInjector::new(cfg, 3);
        let fired = drain(&mut inj, 10_000);
        assert!(!fired.is_empty());
        assert!(fired.iter().all(|(t, _)| *t < horizon));
        // drain() stops because every stream ran past the horizon, not
        // because we hit the round cap.
        assert!(fired.len() < 10_000);
    }

    #[test]
    fn mtbf_matches_configured_mean() {
        // One node, long horizon: the empirical mean of up-phases should be
        // within 15% of the configured MTBF.
        let cfg = ChaosConfig {
            seed: 5,
            node_mtbf: Some(SimDuration::from_secs(100)),
            node_mttr: SimDuration::from_secs(5),
            ..ChaosConfig::disabled()
        };
        let mut inj = ChaosInjector::new(cfg, 1);
        let fired = drain(&mut inj, 2000);
        let mut up_total = 0.0;
        let mut up_count = 0u32;
        let mut last_recover = SimTime::ZERO;
        for (t, ev) in fired {
            match ev {
                ChaosEvent::NodeCrash { .. } => {
                    up_total += t.saturating_since(last_recover).as_secs_f64();
                    up_count += 1;
                }
                ChaosEvent::NodeRecover { .. } => last_recover = t,
                _ => {}
            }
        }
        let mean = up_total / up_count as f64;
        assert!(
            (85.0..=115.0).contains(&mean),
            "empirical MTBF {mean:.1}s outside 100s +/- 15%"
        );
    }

    #[test]
    fn degrade_stream_alternates_and_is_replayable() {
        let cfg = ChaosConfig::disabled().with_seed(13).with_vgpu_degrade(
            SimDuration::from_secs(90),
            SimDuration::from_secs(30),
            (100, 300),
        );
        let mut a = ChaosInjector::new(cfg.clone(), 2);
        let mut b = ChaosInjector::new(cfg, 2);
        let fired = drain(&mut a, 300);
        assert_eq!(fired, drain(&mut b, 300));
        assert!(!fired.is_empty());
        // Strict degrade/restore alternation, severities in range.
        let mut degraded = false;
        for (_, ev) in &fired {
            match ev {
                ChaosEvent::VgpuDegrade { severity_pct } => {
                    assert!(!degraded, "degrade while already degraded");
                    assert!((100..=300).contains(severity_pct));
                    degraded = true;
                }
                ChaosEvent::VgpuRestore => {
                    assert!(degraded, "restore with nothing degraded");
                    degraded = false;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        // Victim draws are on their own stream and replayable.
        for n in 1..10 {
            let va = a.pick_degrade_victim(n);
            assert_eq!(va, b.pick_degrade_victim(n));
            assert!(va.unwrap() < n);
        }
        assert_eq!(a.pick_degrade_victim(0), None);
        assert!(a
            .trace()
            .iter()
            .any(|r| matches!(r, FaultRecord::DegradeVictim { .. })));
    }

    #[test]
    fn degrade_stream_does_not_perturb_existing_classes() {
        // Enabling the degrade stream must leave every other fault
        // class's schedule byte-identical: the new streams fork after the
        // existing ones.
        let plain = ChaosConfig::preset(21);
        let with_degrade = ChaosConfig::preset(21).with_vgpu_degrade(
            SimDuration::from_secs(70),
            SimDuration::from_secs(20),
            (150, 150),
        );
        let mut a = ChaosInjector::new(plain, 3);
        let mut b = ChaosInjector::new(with_degrade, 3);
        let fa = drain(&mut a, 400);
        let fb: Vec<_> = drain(&mut b, 400)
            .into_iter()
            .filter(|(_, ev)| {
                !matches!(ev, ChaosEvent::VgpuDegrade { .. } | ChaosEvent::VgpuRestore)
            })
            .collect();
        // drain() is round-capped, so compare the common prefix.
        let n = fa.len().min(fb.len());
        assert!(n > 50);
        assert_eq!(fa[..n], fb[..n]);
        // Fixed severity range (150, 150) always draws 150.
        assert!(b.trace().iter().any(|r| matches!(
            r,
            FaultRecord::Event {
                event: ChaosEvent::VgpuDegrade { severity_pct: 150 },
                ..
            }
        )));
    }

    #[test]
    fn slice_victim_stream_is_independent_and_replayable() {
        let mut a = ChaosInjector::new(ChaosConfig::preset(17), 2);
        let mut b = ChaosInjector::new(ChaosConfig::preset(17), 2);
        // Interleave slice draws into one injector only: the other victim
        // streams must not notice.
        for n in 1..8 {
            assert!(a.pick_slice_victim(n).unwrap() < n);
        }
        for n in 1..10 {
            assert_eq!(a.pick_victim(n), b.pick_victim(n));
            assert_eq!(a.pick_degrade_victim(n), b.pick_degrade_victim(n));
        }
        assert_eq!(a.pick_slice_victim(0), None);
        // Same seed replays the same slice draws.
        let draws: Vec<_> = (1..8).map(|n| b.pick_slice_victim(n)).collect();
        let mut c = ChaosInjector::new(ChaosConfig::preset(17), 2);
        let replay: Vec<_> = (1..8).map(|n| c.pick_slice_victim(n)).collect();
        assert_eq!(draws, replay);
        assert!(a
            .trace()
            .iter()
            .any(|r| matches!(r, FaultRecord::SliceVictim { .. })));
    }

    #[test]
    fn anchor_failure_rate_is_respected() {
        let mut inj = ChaosInjector::new(ChaosConfig::preset(9), 1);
        let fails = (0..2000).filter(|_| inj.anchor_launch_fails()).count();
        let rate = fails as f64 / 2000.0;
        assert!(
            (0.15..=0.25).contains(&rate),
            "empirical anchor failure rate {rate:.3} outside 0.2 +/- 0.05"
        );
    }

    #[test]
    fn victim_stream_is_deterministic_and_in_range() {
        let mut a = ChaosInjector::new(ChaosConfig::preset(3), 2);
        let mut b = ChaosInjector::new(ChaosConfig::preset(3), 2);
        for n in 1..20 {
            let va = a.pick_victim(n);
            assert_eq!(va, b.pick_victim(n));
            assert!(va.unwrap() < n);
        }
        assert_eq!(a.pick_victim(0), None);
    }
}
