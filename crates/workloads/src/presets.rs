//! Paper workload presets (§5).

use ks_sim_core::time::SimDuration;
use ks_vgpu::ShareSpec;

use crate::job::JobKind;

/// One fully specified experiment job: what it runs and what it asks for.
#[derive(Debug, Clone)]
pub struct JobPreset {
    /// Display name.
    pub name: &'static str,
    /// GPU behaviour.
    pub kind: JobKind,
    /// SharePod resource spec.
    pub share: ShareSpec,
}

/// Fig. 6's Job A: arrives at 0 s with `gpu_request=0.3, gpu_limit=0.6`.
/// TensorFlow ResNet-50 training, always busy; step count sized so the job
/// outlives the 660 s experiment window.
pub fn fig6_job_a() -> JobPreset {
    JobPreset {
        name: "fig6-A",
        kind: JobKind::Training {
            steps: 60_000,
            kernel: SimDuration::from_millis(25),
            duty: 1.0,
        },
        share: ShareSpec::new(0.3, 0.6, 0.3).unwrap(),
    }
}

/// Fig. 6's Job B: arrives at 200 s with `gpu_request=0.4, gpu_limit=0.6`.
pub fn fig6_job_b() -> JobPreset {
    JobPreset {
        name: "fig6-B",
        kind: JobKind::Training {
            steps: 60_000,
            kernel: SimDuration::from_millis(25),
            duty: 1.0,
        },
        share: ShareSpec::new(0.4, 0.6, 0.3).unwrap(),
    }
}

/// Fig. 6's Job C: arrives at 400 s with `gpu_request=0.3, gpu_limit=0.5`,
/// and completes its computation at ≈660 s (≈78 s of GPU work delivered at
/// ≈0.3 usage over 260 s).
pub fn fig6_job_c() -> JobPreset {
    JobPreset {
        name: "fig6-C",
        kind: JobKind::Training {
            steps: 3_120, // 3120 × 25 ms = 78 s of GPU work
            kernel: SimDuration::from_millis(25),
            duty: 1.0,
        },
        share: ShareSpec::new(0.3, 0.5, 0.3).unwrap(),
    }
}

/// Iteration kernel of §5.5's Job B. With the idle-yield protocol the
/// handoff cost amortizes and the B+B slowdown lands at the paper's ≈1.5×.
pub const INTERFERENCE_KERNEL_B: SimDuration = SimDuration::from_millis(15);

/// Iteration kernel of §5.5's Job A: short steps keep co-runners' waits
/// small (the paper's A-combos degrade <10%).
pub const INTERFERENCE_KERNEL_A: SimDuration = SimDuration::from_millis(15);

/// §5.5 Job A: requests *more* GPU than it actually uses (request 0.5,
/// actual duty 0.3) — resilient to interference.
pub fn interference_job_a(steps: u32) -> JobPreset {
    JobPreset {
        name: "interf-A",
        kind: JobKind::Training {
            steps,
            kernel: INTERFERENCE_KERNEL_A,
            duty: 0.30,
        },
        share: ShareSpec::new(0.50, 1.0, 0.45).unwrap(),
    }
}

/// §5.5 Job B: requests *less* than it actually uses (request 0.45, actual
/// duty 0.75) — two of these on one GPU slow each other to ≈1.5×.
pub fn interference_job_b(steps: u32) -> JobPreset {
    JobPreset {
        name: "interf-B",
        kind: JobKind::Training {
            steps,
            kernel: INTERFERENCE_KERNEL_B,
            duty: 0.75,
        },
        share: ShareSpec::new(0.45, 1.0, 0.45).unwrap(),
    }
}

/// The §5.5 job pair sized so both have the same standalone runtime
/// (`duration_s` seconds), which makes Fig. 13's makespan-based throughput
/// comparison clean.
pub fn interference_pair(duration_s: u64) -> (JobPreset, JobPreset) {
    let steps_a = (duration_s as f64 * 0.30 / INTERFERENCE_KERNEL_A.as_secs_f64()).round() as u32;
    let steps_b = (duration_s as f64 * 0.75 / INTERFERENCE_KERNEL_B.as_secs_f64()).round() as u32;
    (interference_job_a(steps_a), interference_job_b(steps_b))
}

/// Fig. 5 / §5.3 TF-Serving inference job with a given request rate and
/// per-request forward-pass time (DeepLab V3 segmentation ≈ 20 ms on V100).
pub fn tf_serving(rate: f64, total_requests: u32) -> JobKind {
    JobKind::Inference {
        rate,
        kernel: SimDuration::from_millis(20),
        total_requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_specs_match_paper() {
        assert_eq!(fig6_job_a().share, ShareSpec::new(0.3, 0.6, 0.3).unwrap());
        assert_eq!(fig6_job_b().share, ShareSpec::new(0.4, 0.6, 0.3).unwrap());
        assert_eq!(fig6_job_c().share, ShareSpec::new(0.3, 0.5, 0.3).unwrap());
    }

    #[test]
    fn fig6_requests_fully_subscribe_one_gpu() {
        let total =
            fig6_job_a().share.request + fig6_job_b().share.request + fig6_job_c().share.request;
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interference_jobs_shareable_by_request() {
        let a = interference_job_a(100);
        let b = interference_job_b(100);
        // Both requests < 0.5 … ≤ 0.5, so any pair packs on one GPU.
        assert!(a.share.request + b.share.request <= 1.0 + 1e-12);
        assert!(b.share.request + b.share.request <= 1.0 + 1e-12);
        // A over-provisions, B under-provisions.
        assert!(a.share.request > a.kind.duty());
        assert!(b.share.request < b.kind.duty());
    }

    #[test]
    fn interference_pair_matches_durations() {
        let (a, b) = interference_pair(120);
        let ra = a.kind.standalone_runtime().as_secs_f64();
        let rb = b.kind.standalone_runtime().as_secs_f64();
        assert!((ra - 120.0).abs() < 1.0, "A standalone {ra}");
        assert!((rb - 120.0).abs() < 1.0, "B standalone {rb}");
    }

    #[test]
    fn b_plus_b_predicts_1_5x_slowdown() {
        let b = interference_job_b(100);
        let duty = b.kind.duty();
        // Fair split of a saturated GPU gives each 0.5 → slowdown 1.5.
        let slowdown = duty / 0.5;
        assert!((slowdown - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tf_serving_usage_proportional_to_rate() {
        for rate in [5.0, 10.0, 20.0, 30.0] {
            let k = tf_serving(rate, 100);
            assert!((k.duty() - rate * 0.020).abs() < 1e-12);
        }
    }
}
