//! Stochastic workload generation for the §5.3 throughput experiments.
//!
//! "A workload is consisted of a set of model inference jobs. The job
//! inter-arrival time follows a Poisson process, and the job GPU usage
//! demand is randomly generated from a normal distribution." (paper §5.3)

use ks_sim_core::rng::SimRng;
use ks_sim_core::time::{SimDuration, SimTime};
use ks_vgpu::ShareSpec;

use crate::job::JobKind;

/// How the amount of work per job is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSizing {
    /// Every job carries the same total GPU-seconds of kernels, so jobs
    /// with lower demand run longer.
    FixedWork(SimDuration),
    /// Every job has the same *standalone wall duration*; its GPU work is
    /// `demand × duration`. This matches the paper's §5.3 setup, where
    /// TF-Serving jobs run for a comparable span and only their request
    /// rate (hence GPU usage) differs — which is why native Kubernetes'
    /// throughput is agnostic to the demand distribution (Fig. 8b).
    FixedDuration(SimDuration),
}

/// Parameters of a Fig. 8-style workload.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Number of jobs in the workload.
    pub jobs: u32,
    /// Mean job inter-arrival time (Poisson process). The paper's "job
    /// frequency factor" scales this down.
    pub mean_interarrival: SimDuration,
    /// Mean of the per-job GPU demand distribution (fraction of a GPU).
    pub demand_mean: f64,
    /// Standard deviation of the demand distribution.
    pub demand_std: f64,
    /// Per-job work sizing.
    pub sizing: JobSizing,
    /// Per-request forward-pass kernel time.
    pub kernel: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            jobs: 100,
            mean_interarrival: SimDuration::from_secs(6),
            demand_mean: 0.30,
            demand_std: 0.10,
            sizing: JobSizing::FixedDuration(SimDuration::from_secs(40)),
            kernel: SimDuration::from_millis(20),
            seed: 42,
        }
    }
}

/// One generated job instance.
#[derive(Debug, Clone)]
pub struct GeneratedJob {
    /// Job index in arrival order.
    pub index: u32,
    /// Arrival (submission) time.
    pub arrival: SimTime,
    /// GPU demand (duty cycle) drawn from the normal distribution.
    pub demand: f64,
    /// The inference job realizing that demand.
    pub kind: JobKind,
    /// SharePod spec: `gpu_request = demand` (the paper schedules by
    /// requested demand), limit allows soaking residual capacity.
    pub share: ShareSpec,
}

/// Generates the full workload deterministically from the seed.
pub fn generate(params: &WorkloadParams) -> Vec<GeneratedJob> {
    let mut rng = SimRng::seed_from_u64(params.seed);
    let mut jobs = Vec::with_capacity(params.jobs as usize);
    let mut t = SimTime::ZERO;
    for index in 0..params.jobs {
        t += rng.exp_interarrival(params.mean_interarrival);
        // Demand clamped to a workable fraction of one GPU.
        let demand = rng.normal_clamped(params.demand_mean, params.demand_std, 0.05, 1.0);
        let rate = demand / params.kernel.as_secs_f64();
        let work_secs = match params.sizing {
            JobSizing::FixedWork(w) => w.as_secs_f64(),
            JobSizing::FixedDuration(d) => d.as_secs_f64() * demand,
        };
        let total_requests = (work_secs / params.kernel.as_secs_f64()).round().max(1.0) as u32;
        let kind = JobKind::Inference {
            rate,
            kernel: params.kernel,
            total_requests,
        };
        let share = ShareSpec::new(demand, (demand * 1.1).min(1.0), demand.min(1.0))
            .expect("generated spec valid");
        jobs.push(GeneratedJob {
            index,
            arrival: t,
            demand,
            kind,
            share,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let p = WorkloadParams::default();
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.demand.to_bits(), y.demand.to_bits());
        }
    }

    #[test]
    fn arrivals_are_increasing_and_mean_converges() {
        let p = WorkloadParams {
            jobs: 2_000,
            ..WorkloadParams::default()
        };
        let jobs = generate(&p);
        let mut last = SimTime::ZERO;
        for j in &jobs {
            assert!(j.arrival >= last);
            last = j.arrival;
        }
        let mean_gap = last.as_secs_f64() / p.jobs as f64;
        assert!((mean_gap - 6.0).abs() < 0.5, "mean gap {mean_gap}");
    }

    #[test]
    fn demand_distribution_matches_params() {
        let p = WorkloadParams {
            jobs: 5_000,
            demand_mean: 0.3,
            demand_std: 0.1,
            ..WorkloadParams::default()
        };
        let jobs = generate(&p);
        let mean: f64 = jobs.iter().map(|j| j.demand).sum::<f64>() / jobs.len() as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
        assert!(jobs.iter().all(|j| (0.05..=1.0).contains(&j.demand)));
    }

    #[test]
    fn job_duty_equals_demand() {
        let jobs = generate(&WorkloadParams::default());
        for j in &jobs {
            assert!(
                (j.kind.duty() - j.demand).abs() < 1e-9,
                "duty {} vs demand {}",
                j.kind.duty(),
                j.demand
            );
            assert!((j.share.request - j.demand).abs() < 1e-12);
        }
    }

    #[test]
    fn fixed_work_sizing_is_constant_per_job() {
        let p = WorkloadParams {
            sizing: JobSizing::FixedWork(SimDuration::from_secs(18)),
            ..WorkloadParams::default()
        };
        let jobs = generate(&p);
        for j in &jobs {
            assert_eq!(j.kind.total_work(), SimDuration::from_secs(18));
        }
    }

    #[test]
    fn fixed_duration_sizing_scales_work_with_demand() {
        let p = WorkloadParams {
            sizing: JobSizing::FixedDuration(SimDuration::from_secs(40)),
            ..WorkloadParams::default()
        };
        let jobs = generate(&p);
        for j in &jobs {
            // work = demand × duration (± one-kernel rounding), so the
            // standalone runtime is ≈40 s for every job.
            let standalone = j.kind.standalone_runtime().as_secs_f64();
            assert!(
                (standalone - 40.0).abs() < 0.5,
                "standalone runtime {standalone}"
            );
        }
    }
}
