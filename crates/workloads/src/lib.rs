//! `ks-workloads` — deep-learning workload models for the KubeShare
//! reproduction (paper §5.1, Table 3).
//!
//! * [`job`] — TensorFlow-style training and TF-Serving-style inference as
//!   passive burst-generating state machines;
//! * [`presets`] — the paper's concrete jobs: Fig. 6's A/B/C, §5.5's
//!   interference jobs A/B, Fig. 5's TF-Serving sweep;
//! * [`generator`] — Poisson-arrival, normal-demand workloads for the
//!   Fig. 8/9 throughput experiments.

#![warn(missing_docs)]

pub mod generator;
pub mod job;
pub mod presets;
pub mod trace;

pub use generator::{generate, GeneratedJob, JobSizing, WorkloadParams};
pub use job::{JobCmd, JobDriver, JobInput, JobKind};
pub use presets::JobPreset;
pub use trace::{Trace, TraceError, TraceJob};
