//! Workload traces: persist a generated workload as JSON and replay it.
//!
//! The paper averages each Fig. 8 point over five runs of randomly
//! generated workloads. For a reproduction, the generated workloads
//! themselves are artifacts worth pinning: a [`Trace`] freezes the exact
//! job set (arrival times, demands, request counts) so an experiment can
//! be rerun byte-for-byte on another machine or against a modified
//! scheduler — without relying on RNG implementation stability.

use ks_sim_core::time::SimTime;
use ks_vgpu::ShareSpec;
use serde::{Deserialize, Serialize};

use crate::generator::{generate, GeneratedJob, WorkloadParams};
use crate::job::JobKind;

/// One frozen job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Index in arrival order.
    pub index: u32,
    /// Arrival time (µs since experiment start).
    pub arrival_us: u64,
    /// GPU demand the generator drew.
    pub demand: f64,
    /// Job behaviour.
    pub kind: JobKind,
    /// SharePod resource spec.
    pub share: ShareSpec,
}

/// A frozen workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Free-form description.
    pub description: String,
    /// The jobs, in arrival order.
    pub jobs: Vec<TraceJob>,
}

impl Trace {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Freezes a generated workload.
    pub fn from_generated(description: impl Into<String>, jobs: &[GeneratedJob]) -> Self {
        Trace {
            version: Self::VERSION,
            description: description.into(),
            jobs: jobs
                .iter()
                .map(|j| TraceJob {
                    index: j.index,
                    arrival_us: j.arrival.as_micros(),
                    demand: j.demand,
                    kind: j.kind.clone(),
                    share: j.share,
                })
                .collect(),
        }
    }

    /// Generates and freezes in one step.
    pub fn generate(description: impl Into<String>, params: &WorkloadParams) -> Self {
        Self::from_generated(description, &generate(params))
    }

    /// Thaws back into the generator's output shape.
    pub fn to_generated(&self) -> Vec<GeneratedJob> {
        self.jobs
            .iter()
            .map(|j| GeneratedJob {
                index: j.index,
                arrival: SimTime::from_micros(j.arrival_us),
                demand: j.demand,
                kind: j.kind.clone(),
                share: j.share,
            })
            .collect()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Parses a trace, validating the schema version and job invariants.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        let t: Trace = serde_json::from_str(json).map_err(|e| TraceError::Parse(e.to_string()))?;
        if t.version != Self::VERSION {
            return Err(TraceError::Version {
                found: t.version,
                expected: Self::VERSION,
            });
        }
        let mut last = 0u64;
        for j in &t.jobs {
            if j.arrival_us < last {
                return Err(TraceError::UnorderedArrivals { index: j.index });
            }
            last = j.arrival_us;
            j.share.validate().map_err(|e| TraceError::InvalidShare {
                index: j.index,
                reason: e.to_string(),
            })?;
        }
        Ok(t)
    }
}

/// Trace parsing/validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Malformed JSON.
    Parse(String),
    /// Unknown schema version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// Arrival times must be non-decreasing.
    UnorderedArrivals {
        /// Offending job index.
        index: u32,
    },
    /// A job's share spec fails validation.
    InvalidShare {
        /// Offending job index.
        index: u32,
        /// Validation message.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse(e) => write!(f, "malformed trace: {e}"),
            TraceError::Version { found, expected } => {
                write!(f, "trace version {found}, this build reads {expected}")
            }
            TraceError::UnorderedArrivals { index } => {
                write!(f, "job {index} arrives before its predecessor")
            }
            TraceError::InvalidShare { index, reason } => {
                write!(f, "job {index} has an invalid share spec: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::generate("fig8 factor 6", &WorkloadParams::default())
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = sample();
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, t);
        // And the thawed jobs match the original generator output.
        let regenerated = generate(&WorkloadParams::default());
        let thawed = back.to_generated();
        assert_eq!(thawed.len(), regenerated.len());
        for (a, b) in thawed.iter().zip(&regenerated) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.demand.to_bits(), b.demand.to_bits());
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut t = sample();
        t.version = 99;
        let err = Trace::from_json(&t.to_json()).unwrap_err();
        assert_eq!(
            err,
            TraceError::Version {
                found: 99,
                expected: 1
            }
        );
    }

    #[test]
    fn unordered_arrivals_rejected() {
        let mut t = sample();
        t.jobs[1].arrival_us = 0;
        t.jobs[0].arrival_us = 1_000_000;
        let err = Trace::from_json(&t.to_json()).unwrap_err();
        assert!(matches!(err, TraceError::UnorderedArrivals { .. }));
    }

    #[test]
    fn invalid_share_rejected() {
        let mut t = sample();
        t.jobs[0].share.request = 0.0;
        let err = Trace::from_json(&t.to_json()).unwrap_err();
        assert!(matches!(err, TraceError::InvalidShare { index: 0, .. }));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            Trace::from_json("not json"),
            Err(TraceError::Parse(_))
        ));
    }
}
