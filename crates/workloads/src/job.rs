//! Deep-learning job models (paper §5.1, Table 3).
//!
//! Two job types drive every experiment:
//!
//! * **Training** (TensorFlow / ResNet-50): a fixed number of steps, each a
//!   GPU kernel burst, issued back-to-back — the GPU is saturated while the
//!   job runs. A *duty cycle* below 1.0 models jobs with CPU phases between
//!   kernels (used for the interference jobs of §5.5).
//! * **Inference** (TF-Serving / DeepLab V3): client requests arrive as a
//!   Poisson process; each request computes one forward pass (a kernel
//!   burst), so GPU usage is proportional to the request rate (Fig. 5).
//!
//! Jobs are passive state machines: the embedding harness feeds
//! [`JobInput`]s and executes the returned [`JobCmd`]s, keeping the model
//! independent of which GPU-sharing system runs underneath.

use ks_sim_core::rng::SimRng;
use ks_sim_core::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of a job's GPU behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobKind {
    /// Step-based training: `steps` kernels of `kernel` duration each,
    /// issued with a think-time gap so the standalone GPU duty is `duty`.
    Training {
        /// Number of training steps (kernels).
        steps: u32,
        /// Kernel burst duration per step.
        kernel: SimDuration,
        /// Standalone GPU duty cycle in `(0, 1]`.
        duty: f64,
    },
    /// Request-driven inference: Poisson arrivals at `rate` req/s, one
    /// `kernel`-long burst per request, `total_requests` in the job.
    Inference {
        /// Mean client request rate (requests per second).
        rate: f64,
        /// Forward-pass kernel duration per request.
        kernel: SimDuration,
        /// Requests to serve before the job completes.
        total_requests: u32,
    },
}

impl JobKind {
    /// Expected standalone GPU duty cycle (fraction of time busy when the
    /// job has a GPU to itself) — the paper's "GPU usage demand".
    pub fn duty(&self) -> f64 {
        match self {
            JobKind::Training { duty, .. } => *duty,
            JobKind::Inference { rate, kernel, .. } => (rate * kernel.as_secs_f64()).min(1.0),
        }
    }

    /// Total GPU busy time the job needs.
    pub fn total_work(&self) -> SimDuration {
        match self {
            JobKind::Training { steps, kernel, .. } => *kernel * *steps as u64,
            JobKind::Inference {
                total_requests,
                kernel,
                ..
            } => *kernel * *total_requests as u64,
        }
    }

    /// Ideal standalone completion time (work / duty).
    pub fn standalone_runtime(&self) -> SimDuration {
        let duty = self.duty().max(1e-6);
        self.total_work().mul_f64(1.0 / duty)
    }
}

/// Inputs the harness feeds into a job driver.
#[derive(Debug, Clone, Copy)]
pub enum JobInput {
    /// The job's container is running; begin issuing work.
    Start,
    /// A previously submitted burst completed.
    BurstDone {
        /// Tag from the corresponding [`JobCmd::Submit`].
        tag: u64,
    },
    /// A previously requested wake-up fired.
    Wake,
}

/// Commands a job driver returns to the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobCmd {
    /// Submit a kernel burst to the container's GPU path.
    Submit {
        /// Burst duration.
        dur: SimDuration,
        /// Correlation tag (unique per job).
        tag: u64,
    },
    /// Wake the driver at this absolute time.
    WakeAt(SimTime),
    /// The job finished all its work.
    Finished,
}

/// Runtime state machine for one job.
#[derive(Debug)]
pub struct JobDriver {
    kind: JobKind,
    rng: SimRng,
    issued: u32,
    completed: u32,
    /// Inference: requests that arrived while a burst was pending are
    /// submitted immediately (the device queue handles them), so no local
    /// backlog is needed; this counts arrivals so far.
    arrivals: u32,
    started: bool,
}

impl JobDriver {
    /// Creates a driver with its own RNG stream.
    pub fn new(kind: JobKind, rng: SimRng) -> Self {
        JobDriver {
            kind,
            rng,
            issued: 0,
            completed: 0,
            arrivals: 0,
            started: false,
        }
    }

    /// The job's static description.
    pub fn kind(&self) -> &JobKind {
        &self.kind
    }

    /// Bursts completed so far.
    pub fn completed(&self) -> u32 {
        self.completed
    }

    /// True when all work is done.
    pub fn is_done(&self) -> bool {
        match &self.kind {
            JobKind::Training { steps, .. } => self.completed >= *steps,
            JobKind::Inference { total_requests, .. } => self.completed >= *total_requests,
        }
    }

    /// Feeds one input; returns the commands to execute.
    pub fn step(&mut self, now: SimTime, input: JobInput) -> Vec<JobCmd> {
        match input {
            JobInput::Start => {
                assert!(!self.started, "job started twice");
                self.started = true;
                match self.kind.clone() {
                    JobKind::Training { kernel, .. } => {
                        self.issued += 1;
                        vec![JobCmd::Submit {
                            dur: kernel,
                            tag: self.issued as u64,
                        }]
                    }
                    JobKind::Inference { rate, .. } => {
                        vec![JobCmd::WakeAt(self.next_arrival(now, rate))]
                    }
                }
            }
            JobInput::BurstDone { tag: _ } => {
                self.completed += 1;
                if self.is_done() {
                    return vec![JobCmd::Finished];
                }
                match self.kind.clone() {
                    JobKind::Training {
                        steps,
                        kernel,
                        duty,
                    } => {
                        if self.issued >= steps {
                            return Vec::new();
                        }
                        self.issued += 1;
                        let tag = self.issued as u64;
                        if duty >= 1.0 {
                            vec![JobCmd::Submit { dur: kernel, tag }]
                        } else {
                            // Think time so standalone duty equals `duty`:
                            // gap = kernel * (1 - duty) / duty.
                            let gap = kernel.mul_f64((1.0 - duty) / duty);
                            vec![JobCmd::WakeAt(now + gap)]
                        }
                    }
                    JobKind::Inference { .. } => Vec::new(),
                }
            }
            JobInput::Wake => match self.kind.clone() {
                JobKind::Training { kernel, .. } => {
                    // Think time over: issue the next step.
                    vec![JobCmd::Submit {
                        dur: kernel,
                        tag: self.issued as u64,
                    }]
                }
                JobKind::Inference {
                    rate,
                    kernel,
                    total_requests,
                } => {
                    // A client request arrives now.
                    let mut cmds = Vec::new();
                    if self.arrivals < total_requests {
                        self.arrivals += 1;
                        self.issued += 1;
                        cmds.push(JobCmd::Submit {
                            dur: kernel,
                            tag: self.issued as u64,
                        });
                    }
                    if self.arrivals < total_requests {
                        cmds.push(JobCmd::WakeAt(self.next_arrival(now, rate)));
                    }
                    cmds
                }
            },
        }
    }

    fn next_arrival(&mut self, now: SimTime, rate: f64) -> SimTime {
        let mean = SimDuration::from_secs_f64(1.0 / rate);
        now + self
            .rng
            .exp_interarrival(mean)
            .max(SimDuration::from_micros(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn duty_of_inference_is_rate_times_service() {
        let k = JobKind::Inference {
            rate: 20.0,
            kernel: SimDuration::from_millis(10),
            total_requests: 100,
        };
        assert!((k.duty() - 0.2).abs() < 1e-12);
        assert_eq!(k.total_work(), SimDuration::from_secs(1));
    }

    #[test]
    fn duty_saturates_at_one() {
        let k = JobKind::Inference {
            rate: 500.0,
            kernel: SimDuration::from_millis(10),
            total_requests: 1,
        };
        assert_eq!(k.duty(), 1.0);
    }

    #[test]
    fn training_driver_issues_back_to_back() {
        let kind = JobKind::Training {
            steps: 3,
            kernel: SimDuration::from_millis(50),
            duty: 1.0,
        };
        let mut d = JobDriver::new(kind, rng());
        let t0 = SimTime::ZERO;
        let cmds = d.step(t0, JobInput::Start);
        assert!(matches!(cmds.as_slice(), [JobCmd::Submit { .. }]));
        let cmds = d.step(SimTime::from_millis(50), JobInput::BurstDone { tag: 1 });
        assert!(matches!(cmds.as_slice(), [JobCmd::Submit { .. }]));
        d.step(SimTime::from_millis(100), JobInput::BurstDone { tag: 2 });
        let cmds = d.step(SimTime::from_millis(150), JobInput::BurstDone { tag: 3 });
        assert_eq!(cmds, vec![JobCmd::Finished]);
        assert!(d.is_done());
    }

    #[test]
    fn training_with_duty_inserts_think_time() {
        let kind = JobKind::Training {
            steps: 2,
            kernel: SimDuration::from_millis(30),
            duty: 0.3,
        };
        let mut d = JobDriver::new(kind, rng());
        d.step(SimTime::ZERO, JobInput::Start);
        let cmds = d.step(SimTime::from_millis(30), JobInput::BurstDone { tag: 1 });
        // gap = 30ms * 0.7/0.3 = 70ms → wake at 100ms.
        assert_eq!(cmds, vec![JobCmd::WakeAt(SimTime::from_millis(100))]);
        let cmds = d.step(SimTime::from_millis(100), JobInput::Wake);
        assert!(matches!(cmds.as_slice(), [JobCmd::Submit { .. }]));
    }

    #[test]
    fn standalone_runtime_accounts_for_duty() {
        let kind = JobKind::Training {
            steps: 10,
            kernel: SimDuration::from_millis(100),
            duty: 0.5,
        };
        assert_eq!(kind.standalone_runtime(), SimDuration::from_secs(2));
    }

    #[test]
    fn inference_driver_serves_all_requests() {
        let kind = JobKind::Inference {
            rate: 100.0,
            kernel: SimDuration::from_millis(5),
            total_requests: 5,
        };
        let mut d = JobDriver::new(kind, rng());
        let mut now = SimTime::ZERO;
        let mut pending_wakes: Vec<SimTime> = Vec::new();
        let mut inflight = 0u32;
        let mut cmds = d.step(now, JobInput::Start);
        let mut finished = false;
        let mut guard = 0;
        while !finished {
            guard += 1;
            assert!(guard < 1000, "livelock");
            for c in cmds.drain(..) {
                match c {
                    JobCmd::Submit { .. } => inflight += 1,
                    JobCmd::WakeAt(at) => pending_wakes.push(at),
                    JobCmd::Finished => finished = true,
                }
            }
            if finished {
                break;
            }
            // Prefer wakes (arrivals), then completions.
            if let Some(at) = pending_wakes.pop() {
                now = now.max(at);
                cmds = d.step(now, JobInput::Wake);
            } else if inflight > 0 {
                inflight -= 1;
                now += SimDuration::from_millis(5);
                cmds = d.step(now, JobInput::BurstDone { tag: 0 });
            } else {
                panic!("stuck: no wakes, no inflight, not finished");
            }
        }
        assert_eq!(d.completed(), 5);
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        let kind = JobKind::Training {
            steps: 1,
            kernel: SimDuration::from_millis(1),
            duty: 1.0,
        };
        let mut d = JobDriver::new(kind, rng());
        d.step(SimTime::ZERO, JobInput::Start);
        d.step(SimTime::ZERO, JobInput::Start);
    }
}
