//! `ks-baselines` — the GPU-management systems KubeShare is compared
//! against (paper Table 1 and §6).
//!
//! * [`native`] — unmodified Kubernetes: whole-GPU exclusive allocation;
//! * [`extender`] — the scaling-factor scheduler-extender family:
//!   Deepomatic (no isolation, single-GPU nodes), Aliyun gpushare
//!   (memory-only isolation), GaiaGPU (memory + compute isolation);
//! * [`fragmentation`] — the Fig. 3 demonstration of why device-blind
//!   schedulers over-commit some GPUs while others idle;
//! * [`capabilities`] — Table 1 as executable metadata, verified by the
//!   integration tests that exercise each mechanism.

#![warn(missing_docs)]

pub mod capabilities;
pub mod extender;
pub mod fragmentation;
pub mod native;

pub use capabilities::{Capabilities, Support};
pub use extender::{aliyun, deepomatic, gaiagpu, ExtenderConfig, ExtenderError, ExtenderSystem};
pub use fragmentation::{
    fig3_demands, place_locality_aware, place_round_robin, Placement, PlacementReport,
};
pub use native::NativeSystem;
