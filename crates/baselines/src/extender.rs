//! Scaling-factor scheduler-extender baselines (paper §6).
//!
//! Deepomatic, Aliyun gpushare and GaiaGPU all take the same structural
//! approach: multiply the GPU resource unit by a scaling factor so users
//! can request fractions as integers, and implement the packing logic as a
//! kube-scheduler *extender* that monopolizes all GPUs in the cluster.
//! They differ in isolation (none / memory-only / both) and in single- vs
//! multi-GPU node support. None treats the GPU as a first-class entity:
//! the physical device a pod lands on is decided by the kubelet's unit
//! assignment, invisible to users and schedulers alike.

use ks_cluster::api::pod::PodSpec;
use ks_cluster::api::{NodeConfig, ResourceList, Uid};
use ks_cluster::device_plugin::UnitAssignPolicy;
use ks_cluster::latency::LatencyModel;
use ks_cluster::scheduler::ScorePolicy;
use ks_cluster::sim::{ClusterConfig, ClusterEmit, ClusterSim, GpuPluginKind};
use ks_sim_core::time::SimTime;
use ks_vgpu::{IsolationMode, ShareSpec};

/// Configuration of one extender-style system.
#[derive(Debug, Clone)]
pub struct ExtenderConfig {
    /// System name (for reports).
    pub name: &'static str,
    /// Units advertised per physical GPU.
    pub scaling: u32,
    /// Extended resource name.
    pub resource: String,
    /// GPU-level isolation the system installs in containers.
    pub isolation: IsolationMode,
    /// Whether nodes with more than one GPU are supported.
    pub multi_gpu_nodes: bool,
    /// How the kubelet assigns units to pods (implicit device binding).
    pub assign_policy: UnitAssignPolicy,
}

/// Deepomatic's shared-GPU device plugin: fractional allocation only,
/// no isolation, single GPU per node.
pub fn deepomatic() -> ExtenderConfig {
    ExtenderConfig {
        name: "Deepomatic",
        scaling: 10,
        resource: "deepomatic.com/shared-gpu".to_string(),
        isolation: IsolationMode::NONE,
        multi_gpu_nodes: false,
        assign_policy: UnitAssignPolicy::Sequential,
    }
}

/// Aliyun gpushare: memory-based fractional units, memory isolation only.
pub fn aliyun() -> ExtenderConfig {
    ExtenderConfig {
        name: "Aliyun",
        scaling: 16, // one unit per GiB of a 16 GiB V100
        resource: "aliyun.com/gpu-mem".to_string(),
        isolation: IsolationMode::MEMORY_ONLY,
        multi_gpu_nodes: true,
        assign_policy: UnitAssignPolicy::Sequential,
    }
}

/// GaiaGPU: Aliyun-style units plus LD_PRELOAD compute isolation.
pub fn gaiagpu() -> ExtenderConfig {
    ExtenderConfig {
        name: "GaiaGPU",
        scaling: 100,
        resource: "tencent.com/vcuda-core".to_string(),
        isolation: IsolationMode::FULL,
        multi_gpu_nodes: true,
        assign_policy: UnitAssignPolicy::Sequential,
    }
}

/// Error from building or using an extender system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtenderError {
    /// The system cannot manage a node with more than one GPU.
    MultiGpuUnsupported {
        /// Offending node.
        node: String,
        /// Its GPU count.
        gpus: u32,
    },
}

impl std::fmt::Display for ExtenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtenderError::MultiGpuUnsupported { node, gpus } => {
                write!(f, "node {node} has {gpus} GPUs; this system supports 1")
            }
        }
    }
}

impl std::error::Error for ExtenderError {}

/// An extender-style GPU sharing system over the simulated cluster.
#[derive(Debug)]
pub struct ExtenderSystem {
    /// The underlying cluster (exclusively managed — no co-existence).
    pub cluster: ClusterSim,
    cfg: ExtenderConfig,
}

impl ExtenderSystem {
    /// Builds the system, validating node shapes against its limitations.
    pub fn new(cfg: ExtenderConfig, nodes: Vec<NodeConfig>) -> Result<Self, ExtenderError> {
        if !cfg.multi_gpu_nodes {
            if let Some(bad) = nodes.iter().find(|n| n.gpus > 1) {
                return Err(ExtenderError::MultiGpuUnsupported {
                    node: bad.name.clone(),
                    gpus: bad.gpus,
                });
            }
        }
        let cluster = ClusterSim::new(ClusterConfig {
            nodes,
            latency: LatencyModel::default(),
            gpu_plugin: GpuPluginKind::Fractional {
                scaling: cfg.scaling,
                resource: cfg.resource.clone(),
            },
            assign_policy: cfg.assign_policy,
            score: ScorePolicy::MostAllocated, // extenders bin-pack
        });
        Ok(ExtenderSystem { cluster, cfg })
    }

    /// System configuration.
    pub fn config(&self) -> &ExtenderConfig {
        &self.cfg
    }

    /// Converts a fractional demand into this system's integer units —
    /// the granularity loss of the scaling-factor trick.
    pub fn units_for(&self, fraction: f64) -> u64 {
        (fraction * self.cfg.scaling as f64).ceil() as u64
    }

    /// The demand actually reserved after integer rounding.
    pub fn effective_fraction(&self, fraction: f64) -> f64 {
        self.units_for(fraction) as f64 / self.cfg.scaling as f64
    }

    /// Submits a fractional-GPU job as a pod requesting integer units.
    /// Locality is NOT expressible — there is no field for it.
    pub fn submit_shared_job(
        &mut self,
        now: SimTime,
        name: impl Into<String>,
        share: ShareSpec,
        out: &mut ClusterEmit,
    ) -> Uid {
        let units = self.units_for(share.request.max(share.mem));
        let spec = PodSpec::new(
            "workload:latest",
            ResourceList::cpu_mem(1000, 1 << 30).with_extended(&self.cfg.resource, units),
        );
        self.cluster.submit_pod(now, name, spec, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_gpu_nodes(n: usize) -> Vec<NodeConfig> {
        (0..n)
            .map(|i| NodeConfig {
                name: format!("node-{i}"),
                cpu_millis: 8_000,
                memory_bytes: 32 << 30,
                gpus: 1,
                gpu_memory_bytes: 16 << 30,
            })
            .collect()
    }

    #[test]
    fn deepomatic_rejects_multi_gpu_nodes() {
        let nodes = vec![NodeConfig::p3_8xlarge("node-0")];
        let err = ExtenderSystem::new(deepomatic(), nodes).unwrap_err();
        assert_eq!(
            err,
            ExtenderError::MultiGpuUnsupported {
                node: "node-0".into(),
                gpus: 4
            }
        );
    }

    #[test]
    fn aliyun_accepts_multi_gpu_nodes() {
        let nodes = vec![NodeConfig::p3_8xlarge("node-0")];
        assert!(ExtenderSystem::new(aliyun(), nodes).is_ok());
    }

    #[test]
    fn unit_rounding_loses_granularity() {
        let sys = ExtenderSystem::new(deepomatic(), single_gpu_nodes(1)).unwrap();
        // Deepomatic's scaling of 10 rounds 0.25 up to 0.3.
        assert_eq!(sys.units_for(0.25), 3);
        assert!((sys.effective_fraction(0.25) - 0.3).abs() < 1e-12);
        // KubeShare would reserve exactly 0.25 — this is the "limited"
        // fine-grained allocation row of Table 1.
        let fine = ExtenderSystem::new(gaiagpu(), single_gpu_nodes(1)).unwrap();
        assert!((fine.effective_fraction(0.25) - 0.25).abs() < 1e-12);
        assert!((fine.effective_fraction(0.251) - 0.26).abs() < 1e-12);
    }

    #[test]
    fn shared_jobs_pack_onto_one_gpu() {
        use ks_sim_core::prelude::*;
        struct W {
            sys: ExtenderSystem,
        }
        struct Ev(ks_cluster::sim::ClusterEvent);
        impl SimEvent<W> for Ev {
            fn fire(self, now: SimTime, w: &mut W, q: &mut EventQueue<Self>) {
                let mut out = Vec::new();
                let mut notes = Vec::new();
                w.sys.cluster.handle(now, self.0, &mut out, &mut notes);
                for (at, e) in out {
                    q.schedule_at(at, Ev(e));
                }
            }
        }
        let sys = ExtenderSystem::new(aliyun(), single_gpu_nodes(1)).unwrap();
        let mut eng = Engine::new(W { sys });
        let mut out = Vec::new();
        let share = ShareSpec::new(0.4, 0.5, 0.4).unwrap();
        let a = eng
            .world
            .sys
            .submit_shared_job(SimTime::ZERO, "a", share, &mut out);
        let b = eng
            .world
            .sys
            .submit_shared_job(SimTime::ZERO, "b", share, &mut out);
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(1000);
        assert_eq!(
            eng.world.sys.cluster.pod(a).unwrap().status.phase,
            ks_cluster::PodPhase::Running
        );
        assert_eq!(
            eng.world.sys.cluster.pod_devices(a),
            eng.world.sys.cluster.pod_devices(b),
            "both fractions share the single GPU"
        );
    }
}
