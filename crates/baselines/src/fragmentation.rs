//! The resource-fragmentation demonstration of paper Fig. 3.
//!
//! Six containers (A–F) with fractional demands are placed onto a 4-GPU
//! node. A scheduler that is blind to device identity assigns them
//! round-robin (Fig. 3a) — some GPUs end up over-committed while others
//! idle. A locality-aware scheduler packs them (Fig. 3b), avoiding
//! over-commitment *and* minimizing the number of active GPUs.

use serde::Serialize;

/// Placement of one container.
#[derive(Debug, Clone, Serialize)]
pub struct Placement {
    /// Container name.
    pub container: String,
    /// GPU demand (fraction).
    pub demand: f64,
    /// Index of the GPU it landed on.
    pub gpu: usize,
}

/// Result of placing a container set on a node.
#[derive(Debug, Clone, Serialize)]
pub struct PlacementReport {
    /// Per-container placements.
    pub placements: Vec<Placement>,
    /// Total demand per GPU.
    pub gpu_load: Vec<f64>,
}

impl PlacementReport {
    /// GPUs with total demand > 1.0 (over-committed → interference).
    pub fn overcommitted_gpus(&self) -> usize {
        ks_partition::frag::overcommitted(&self.gpu_load)
    }

    /// GPUs with any load (must stay powered/reserved).
    pub fn active_gpus(&self) -> usize {
        ks_partition::frag::active(&self.gpu_load)
    }

    /// Largest per-GPU load.
    pub fn max_load(&self) -> f64 {
        ks_partition::frag::max_load(&self.gpu_load)
    }

    /// Pool fragmentation of the placement: free capacity that no single
    /// further container could claim, as a fraction of all free capacity.
    /// Time-sliced devices make any residual reachable, so this is 0 for
    /// loads at or under 1.0 — the measure's spatial bite shows up in
    /// [`ks_partition::pool_fragmentation`]'s partitioned views.
    pub fn fragmentation(&self) -> f64 {
        let views: Vec<ks_partition::DeviceFreeView> = self
            .gpu_load
            .iter()
            .map(|&l| {
                let free = (1.0 - l).max(0.0);
                ks_partition::DeviceFreeView {
                    free,
                    largest_alloc: free,
                }
            })
            .collect();
        ks_partition::pool_fragmentation(&views)
    }
}

/// Round-robin placement: container *i* goes to GPU *i mod n* — what a
/// device-identity-blind pipeline effectively does (paper Fig. 3a).
pub fn place_round_robin(demands: &[(String, f64)], gpus: usize) -> PlacementReport {
    assert!(gpus > 0);
    let mut load = vec![0.0; gpus];
    let placements = demands
        .iter()
        .enumerate()
        .map(|(i, (name, d))| {
            let gpu = i % gpus;
            load[gpu] += d;
            Placement {
                container: name.clone(),
                demand: *d,
                gpu,
            }
        })
        .collect();
    PlacementReport {
        placements,
        gpu_load: load,
    }
}

/// Locality-aware placement: best-fit decreasing without over-commitment
/// (what KubeShare's first-class scheduling achieves, paper Fig. 3b).
pub fn place_locality_aware(demands: &[(String, f64)], gpus: usize) -> PlacementReport {
    assert!(gpus > 0);
    let mut load = vec![0.0; gpus];
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| demands[b].1.partial_cmp(&demands[a].1).unwrap());
    let mut placements = vec![None; demands.len()];
    for idx in order {
        let (name, d) = &demands[idx];
        // Best fit: the fullest GPU that still fits without over-commit.
        let gpu = (0..gpus)
            .filter(|&g| load[g] + d <= 1.0 + 1e-9)
            .max_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap())
            // If nothing fits (total demand > capacity), fall back to the
            // least-loaded GPU.
            .unwrap_or_else(|| {
                (0..gpus)
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap())
                    .unwrap()
            });
        load[gpu] += d;
        placements[idx] = Some(Placement {
            container: name.clone(),
            demand: *d,
            gpu,
        });
    }
    PlacementReport {
        placements: placements.into_iter().map(Option::unwrap).collect(),
        gpu_load: load,
    }
}

/// The paper's Fig. 3 container set: six containers on four GPUs whose
/// total demand fits in two GPUs.
pub fn fig3_demands() -> Vec<(String, f64)> {
    vec![
        ("Container A".into(), 0.4),
        ("Container B".into(), 0.6),
        ("Container C".into(), 0.3),
        ("Container D".into(), 0.5),
        ("Container E".into(), 0.1),
        ("Container F".into(), 0.1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_fragments_fig3_set() {
        let r = place_round_robin(&fig3_demands(), 4);
        // All four GPUs active even though demand sums to 2.0.
        assert_eq!(r.active_gpus(), 4);
        // A(0.4)+E(0.1) on gpu0, B(0.6)+F(0.1) on gpu1, C on 2, D on 3:
        // nothing over 1.0 here, but utilization is spread thin.
        assert!(r.max_load() < 1.0);
    }

    #[test]
    fn round_robin_can_overcommit() {
        let demands: Vec<(String, f64)> = vec![
            ("a".into(), 0.8),
            ("b".into(), 0.8),
            ("c".into(), 0.8), // lands back on gpu0 with 'a' → 1.6
        ];
        let r = place_round_robin(&demands, 2);
        assert_eq!(r.overcommitted_gpus(), 1);
        assert!(r.max_load() > 1.5);
    }

    #[test]
    fn locality_aware_packs_without_overcommit() {
        let r = place_locality_aware(&fig3_demands(), 4);
        assert_eq!(r.overcommitted_gpus(), 0);
        // Total demand 2.0 fits in exactly 2 GPUs.
        assert_eq!(r.active_gpus(), 2);
        let total: f64 = r.gpu_load.iter().sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn locality_aware_never_overcommits_when_feasible() {
        let demands: Vec<(String, f64)> =
            vec![("a".into(), 0.8), ("b".into(), 0.8), ("c".into(), 0.8)];
        let r = place_locality_aware(&demands, 3);
        assert_eq!(r.overcommitted_gpus(), 0);
        assert_eq!(r.active_gpus(), 3);
    }

    #[test]
    fn reports_are_consistent() {
        let demands = fig3_demands();
        for report in [
            place_round_robin(&demands, 4),
            place_locality_aware(&demands, 4),
        ] {
            assert_eq!(report.placements.len(), demands.len());
            let sum_from_placements: f64 = report.placements.iter().map(|p| p.demand).sum();
            let sum_from_loads: f64 = report.gpu_load.iter().sum();
            assert!((sum_from_placements - sum_from_loads).abs() < 1e-9);
        }
    }
}
