//! The native Kubernetes baseline: whole-GPU, exclusive allocation.
//!
//! This is the "Kubernetes" series in the paper's Figs. 8, 9 and 13: every
//! GPU job requests one entire `nvidia.com/gpu` unit, so a 32-GPU cluster
//! runs at most 32 jobs regardless of their actual GPU demand.

use ks_cluster::api::pod::PodSpec;
use ks_cluster::api::{ResourceList, Uid, NVIDIA_GPU};
use ks_cluster::sim::{ClusterConfig, ClusterEmit, ClusterSim};
use ks_sim_core::time::SimTime;

/// Native Kubernetes GPU management.
#[derive(Debug)]
pub struct NativeSystem {
    /// The cluster.
    pub cluster: ClusterSim,
}

impl NativeSystem {
    /// Builds the system (the cluster must run the whole-device plugin).
    pub fn new(cfg: ClusterConfig) -> Self {
        NativeSystem {
            cluster: ClusterSim::new(cfg),
        }
    }

    /// Submits a GPU job: one whole GPU, whatever the job actually needs.
    pub fn submit_gpu_job(
        &mut self,
        now: SimTime,
        name: impl Into<String>,
        out: &mut ClusterEmit,
    ) -> Uid {
        let spec = PodSpec::new(
            "workload:latest",
            ResourceList::cpu_mem(1000, 1 << 30).with_extended(NVIDIA_GPU, 1),
        );
        self.cluster.submit_pod(now, name, spec, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim_core::prelude::*;

    struct W(NativeSystem);
    struct Ev(ks_cluster::sim::ClusterEvent);
    impl SimEvent<W> for Ev {
        fn fire(self, now: SimTime, w: &mut W, q: &mut EventQueue<Self>) {
            let mut out = Vec::new();
            let mut notes = Vec::new();
            w.0.cluster.handle(now, self.0, &mut out, &mut notes);
            for (at, e) in out {
                q.schedule_at(at, Ev(e));
            }
        }
    }

    #[test]
    fn at_most_one_job_per_gpu() {
        let mut eng = Engine::new(W(NativeSystem::new(ClusterConfig::paper_native())));
        // The paper testbed has 32 GPUs; submit 40 jobs.
        let mut out = Vec::new();
        let uids: Vec<Uid> = (0..40)
            .map(|i| {
                eng.world
                    .0
                    .submit_gpu_job(SimTime::ZERO, format!("job-{i}"), &mut out)
            })
            .collect();
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(100_000);
        let running = uids
            .iter()
            .filter(|&&u| {
                eng.world.0.cluster.pod(u).unwrap().status.phase == ks_cluster::PodPhase::Running
            })
            .count();
        assert_eq!(running, 32, "exactly one job per physical GPU");
    }
}
