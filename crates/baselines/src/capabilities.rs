//! The capability matrix of paper Table 1, as executable metadata.
//!
//! Each GPU-sharing system in this workspace reports its capabilities;
//! the `table1` harness prints the matrix and the integration tests verify
//! the *load-bearing* rows by actually exercising the mechanisms (memory
//! guard, compute isolation, locality scheduling, co-existence).

use serde::Serialize;

/// Feature support levels, matching the paper's Yes / No / limited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Support {
    /// Fully supported.
    Yes,
    /// Not supported.
    No,
    /// Supported with restrictions (e.g. granularity bound by a
    /// scaling factor).
    Limited,
}

impl std::fmt::Display for Support {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Support::Yes => write!(f, "Yes"),
            Support::No => write!(f, "No"),
            Support::Limited => write!(f, "limited"),
        }
    }
}

/// One system's row set in Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Capabilities {
    /// System name.
    pub system: &'static str,
    /// Sharing: multiple GPUs per node supported.
    pub multi_gpu_per_node: Support,
    /// Sharing: fine-grained (arbitrary fractional) allocation.
    pub fine_grained_allocation: Support,
    /// Isolation: GPU memory.
    pub memory_isolation: Support,
    /// Isolation: computation (kernel execution time).
    pub compute_isolation: Support,
    /// Scheduling: GPUs are first-class entities with identity.
    pub first_class_gpu: Support,
    /// Scheduling: locality constraints on device binding.
    pub locality_constraints: Support,
    /// Compatibility: co-exists with the native kube-scheduler.
    pub coexists_with_kube_scheduler: Support,
}

/// Deepomatic's shared-GPU device plugin.
pub fn deepomatic() -> Capabilities {
    Capabilities {
        system: "Deepomatic",
        multi_gpu_per_node: Support::No,
        fine_grained_allocation: Support::Limited,
        memory_isolation: Support::No,
        compute_isolation: Support::No,
        first_class_gpu: Support::No,
        locality_constraints: Support::No,
        coexists_with_kube_scheduler: Support::No,
    }
}

/// Alibaba's gpushare scheduler extender.
pub fn aliyun() -> Capabilities {
    Capabilities {
        system: "Aliyun",
        multi_gpu_per_node: Support::Yes,
        fine_grained_allocation: Support::Limited,
        memory_isolation: Support::Yes,
        compute_isolation: Support::No,
        first_class_gpu: Support::No,
        locality_constraints: Support::No,
        coexists_with_kube_scheduler: Support::No,
    }
}

/// GaiaGPU (the paper's "GigaGPU" row).
pub fn gaiagpu() -> Capabilities {
    Capabilities {
        system: "GaiaGPU",
        multi_gpu_per_node: Support::Yes,
        fine_grained_allocation: Support::Limited,
        memory_isolation: Support::Yes,
        compute_isolation: Support::Yes,
        first_class_gpu: Support::No,
        locality_constraints: Support::No,
        coexists_with_kube_scheduler: Support::No,
    }
}

/// KubeShare.
pub fn kubeshare() -> Capabilities {
    Capabilities {
        system: "KubeShare",
        multi_gpu_per_node: Support::Yes,
        fine_grained_allocation: Support::Yes,
        memory_isolation: Support::Yes,
        compute_isolation: Support::Yes,
        first_class_gpu: Support::Yes,
        locality_constraints: Support::Yes,
        coexists_with_kube_scheduler: Support::Yes,
    }
}

/// All four systems in the paper's column order.
pub fn all() -> Vec<Capabilities> {
    vec![deepomatic(), aliyun(), gaiagpu(), kubeshare()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_kubeshare_has_every_feature() {
        for c in all() {
            let full = c.multi_gpu_per_node == Support::Yes
                && c.fine_grained_allocation == Support::Yes
                && c.memory_isolation == Support::Yes
                && c.compute_isolation == Support::Yes
                && c.first_class_gpu == Support::Yes
                && c.locality_constraints == Support::Yes
                && c.coexists_with_kube_scheduler == Support::Yes;
            assert_eq!(full, c.system == "KubeShare", "{}", c.system);
        }
    }

    #[test]
    fn matrix_matches_paper_rows() {
        let d = deepomatic();
        assert_eq!(d.multi_gpu_per_node, Support::No);
        assert_eq!(d.memory_isolation, Support::No);
        let a = aliyun();
        assert_eq!(a.memory_isolation, Support::Yes);
        assert_eq!(a.compute_isolation, Support::No);
        let g = gaiagpu();
        assert_eq!(g.compute_isolation, Support::Yes);
        assert_eq!(g.first_class_gpu, Support::No);
    }
}
