//! The vGPU pool: the set of shared GPUs KubeShare manages (paper §4.1,
//! §4.4).
//!
//! Each vGPU has a first-class identity ([`crate::gpuid::GpuId`]), residual
//! resource accounting (by `gpu_request`/`gpu_mem`, the quantities the
//! scheduler packs on), accumulated locality labels, and a lifecycle:
//! *creating* (anchor pod launching) → *active* (sharePods attached) →
//! *idle* (none attached) → *deleted* (GPU released back to Kubernetes).

use std::collections::{BTreeMap, BTreeSet};

use ks_cluster::api::Uid;
use serde::Serialize;

use crate::gpuid::GpuId;

/// Lifecycle phase of a vGPU (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum VgpuPhase {
    /// Anchor pod launched; waiting for the physical GPU's UUID.
    Creating,
    /// At least one sharePod attached.
    Active,
    /// No sharePods attached; GPU still held from Kubernetes.
    Idle,
}

/// One vGPU in the pool.
#[derive(Debug, Clone)]
pub struct PoolDevice {
    /// First-class identifier.
    pub id: GpuId,
    /// Lifecycle phase.
    pub phase: VgpuPhase,
    /// Node hosting the physical GPU (known once the anchor pod binds).
    pub node: Option<String>,
    /// Physical driver UUID (known once the anchor pod runs).
    pub uuid: Option<String>,
    /// Residual computing capacity: `1 − Σ gpu_request` of attached pods.
    pub util_free: f64,
    /// Residual memory fraction: `1 − Σ gpu_mem` of attached pods.
    pub mem_free: f64,
    /// Affinity labels present on this device.
    pub aff: BTreeSet<String>,
    /// Anti-affinity labels present on this device.
    pub anti_aff: BTreeSet<String>,
    /// Exclusion label of this device (single, overwritten on assignment).
    pub excl: Option<String>,
    /// Attached sharePods and their (request, mem) for release accounting.
    pub attached: BTreeMap<Uid, (f64, f64)>,
    /// Set once DevMgr decided to release the GPU back to Kubernetes; the
    /// anchor pod is being torn down and no new sharePod may bind here.
    pub releasing: bool,
}

impl PoolDevice {
    fn fresh(id: GpuId) -> Self {
        PoolDevice {
            id,
            phase: VgpuPhase::Creating,
            node: None,
            uuid: None,
            util_free: 1.0,
            mem_free: 1.0,
            aff: BTreeSet::new(),
            anti_aff: BTreeSet::new(),
            excl: None,
            attached: BTreeMap::new(),
            releasing: false,
        }
    }

    /// True if no sharePod is scheduled on the device (the algorithm's
    /// `d.idle`). A *creating* device with nothing attached is also idle
    /// in this sense.
    pub fn is_idle(&self) -> bool {
        self.attached.is_empty()
    }
}

/// The pool of vGPUs.
#[derive(Debug, Default)]
pub struct VgpuPool {
    devices: BTreeMap<GpuId, PoolDevice>,
    next_id: u64,
}

impl VgpuPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates a fresh GPUID (not yet in the pool).
    pub fn fresh_id(&mut self) -> GpuId {
        loop {
            self.next_id += 1;
            let id = GpuId::generate(self.next_id);
            if !self.devices.contains_key(&id) {
                return id;
            }
        }
    }

    /// Adds a new vGPU in `Creating` phase under the given id.
    ///
    /// # Panics
    /// Panics if the id already exists.
    pub fn insert_creating(&mut self, id: GpuId) -> &mut PoolDevice {
        assert!(!self.devices.contains_key(&id), "vGPU {id} already in pool");
        self.devices
            .entry(id.clone())
            .or_insert(PoolDevice::fresh(id))
    }

    /// Marks a creating vGPU ready: physical GPU acquired.
    pub fn mark_ready(&mut self, id: &GpuId, node: String, uuid: String) {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        debug_assert_eq!(d.phase, VgpuPhase::Creating);
        d.node = Some(node);
        d.uuid = Some(uuid);
        d.phase = if d.attached.is_empty() {
            VgpuPhase::Idle
        } else {
            VgpuPhase::Active
        };
    }

    /// Attaches a sharePod's demand to a vGPU, consuming residual capacity
    /// and accumulating labels.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's request tuple
    pub fn attach(
        &mut self,
        id: &GpuId,
        sharepod: Uid,
        request: f64,
        mem: f64,
        aff: Option<&str>,
        anti_aff: Option<&str>,
        excl: Option<&str>,
    ) {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        assert!(
            d.util_free + 1e-9 >= request && d.mem_free + 1e-9 >= mem,
            "over-committing vGPU {id}: free=({:.3},{:.3}) need=({request:.3},{mem:.3})",
            d.util_free,
            d.mem_free
        );
        d.util_free = (d.util_free - request).max(0.0);
        d.mem_free = (d.mem_free - mem).max(0.0);
        if let Some(a) = aff {
            d.aff.insert(a.to_string());
        }
        if let Some(a) = anti_aff {
            d.anti_aff.insert(a.to_string());
        }
        d.excl = excl.map(str::to_string);
        d.attached.insert(sharepod, (request, mem));
        if d.phase != VgpuPhase::Creating {
            d.phase = VgpuPhase::Active;
        }
    }

    /// Detaches a sharePod, restoring capacity. Returns `true` if the vGPU
    /// became idle (labels are cleared then, so an idle device is clean for
    /// any future tenant).
    pub fn detach(&mut self, id: &GpuId, sharepod: Uid) -> bool {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        let (request, mem) = d
            .attached
            .remove(&sharepod)
            .expect("sharePod attached to vGPU");
        d.util_free = (d.util_free + request).min(1.0);
        d.mem_free = (d.mem_free + mem).min(1.0);
        if d.attached.is_empty() {
            d.aff.clear();
            d.anti_aff.clear();
            d.excl = None;
            if d.phase != VgpuPhase::Creating {
                d.phase = VgpuPhase::Idle;
            }
            true
        } else {
            false
        }
    }

    /// Marks a vGPU as being released: it stays in the pool (its anchor is
    /// still terminating) but is invisible to the scheduler.
    pub fn mark_releasing(&mut self, id: &GpuId) {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        debug_assert!(d.attached.is_empty(), "releasing vGPU {id} with tenants");
        d.releasing = true;
    }

    /// Removes a vGPU entirely (GPU released back to Kubernetes).
    ///
    /// # Panics
    /// Panics if sharePods are still attached.
    pub fn remove(&mut self, id: &GpuId) -> PoolDevice {
        let d = self.devices.remove(id).expect("vGPU in pool");
        assert!(d.attached.is_empty(), "removing vGPU {id} with tenants");
        d
    }

    /// Looks up a device.
    pub fn get(&self, id: &GpuId) -> Option<&PoolDevice> {
        self.devices.get(id)
    }

    /// All devices in deterministic id order.
    pub fn devices(&self) -> impl Iterator<Item = &PoolDevice> {
        self.devices.values()
    }

    /// Devices currently idle and not already being released (candidates
    /// for release or for reuse).
    pub fn idle_devices(&self) -> Vec<GpuId> {
        self.devices
            .values()
            .filter(|d| d.phase == VgpuPhase::Idle && !d.releasing)
            .map(|d| d.id.clone())
            .collect()
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_ready(n: usize) -> (VgpuPool, Vec<GpuId>) {
        let mut p = VgpuPool::new();
        let ids: Vec<GpuId> = (0..n)
            .map(|i| {
                let id = p.fresh_id();
                p.insert_creating(id.clone());
                p.mark_ready(&id, format!("node-{i}"), format!("GPU-{i}"));
                id
            })
            .collect();
        (p, ids)
    }

    #[test]
    fn lifecycle_creating_to_idle_to_active() {
        let mut p = VgpuPool::new();
        let id = p.fresh_id();
        p.insert_creating(id.clone());
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Creating);
        p.mark_ready(&id, "n0".into(), "GPU-x".into());
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Idle);
        p.attach(&id, Uid(1), 0.5, 0.5, None, None, None);
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Active);
        assert!(p.detach(&id, Uid(1)));
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Idle);
    }

    #[test]
    fn attach_while_creating_keeps_creating_phase() {
        let mut p = VgpuPool::new();
        let id = p.fresh_id();
        p.insert_creating(id.clone());
        p.attach(&id, Uid(1), 0.3, 0.3, None, None, None);
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Creating);
        p.mark_ready(&id, "n".into(), "GPU-x".into());
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Active);
    }

    #[test]
    fn capacity_accounting() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(&ids[0], Uid(1), 0.3, 0.4, None, None, None);
        p.attach(&ids[0], Uid(2), 0.5, 0.2, None, None, None);
        let d = p.get(&ids[0]).unwrap();
        assert!((d.util_free - 0.2).abs() < 1e-9);
        assert!((d.mem_free - 0.4).abs() < 1e-9);
        p.detach(&ids[0], Uid(1));
        let d = p.get(&ids[0]).unwrap();
        assert!((d.util_free - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "over-committing")]
    fn overcommit_panics() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(&ids[0], Uid(1), 0.8, 0.1, None, None, None);
        p.attach(&ids[0], Uid(2), 0.3, 0.1, None, None, None);
    }

    #[test]
    fn labels_accumulate_and_clear_on_idle() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(
            &ids[0],
            Uid(1),
            0.2,
            0.2,
            Some("g1"),
            Some("noisy"),
            Some("tenant"),
        );
        p.attach(&ids[0], Uid(2), 0.2, 0.2, Some("g2"), None, Some("tenant"));
        let d = p.get(&ids[0]).unwrap();
        assert!(d.aff.contains("g1") && d.aff.contains("g2"));
        assert!(d.anti_aff.contains("noisy"));
        assert_eq!(d.excl.as_deref(), Some("tenant"));
        p.detach(&ids[0], Uid(1));
        assert!(p.detach(&ids[0], Uid(2)), "becomes idle");
        let d = p.get(&ids[0]).unwrap();
        assert!(d.aff.is_empty() && d.anti_aff.is_empty() && d.excl.is_none());
    }

    #[test]
    fn idle_devices_listed() {
        let (mut p, ids) = pool_with_ready(2);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, None);
        let idle = p.idle_devices();
        assert_eq!(
            idle,
            vec![ids[1].clone()]
                .into_iter()
                .filter(|i| idle.contains(i))
                .collect::<Vec<_>>()
        );
        assert_eq!(idle.len(), 1);
    }

    #[test]
    #[should_panic(expected = "with tenants")]
    fn remove_active_panics() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, None);
        p.remove(&ids[0]);
    }

    #[test]
    fn fresh_ids_never_collide() {
        let mut p = VgpuPool::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let id = p.fresh_id();
            p.insert_creating(id.clone());
            assert!(seen.insert(id));
        }
    }
}
