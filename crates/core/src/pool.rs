//! The vGPU pool: the set of shared GPUs KubeShare manages (paper §4.1,
//! §4.4).
//!
//! Each vGPU has a first-class identity ([`crate::gpuid::GpuId`]), residual
//! resource accounting (by `gpu_request`/`gpu_mem`, the quantities the
//! scheduler packs on), accumulated locality labels, and a lifecycle:
//! *creating* (anchor pod launching) → *active* (sharePods attached) →
//! *idle* (none attached) → *deleted* (GPU released back to Kubernetes).
//!
//! # Capacity indexes
//!
//! Beyond the id-ordered device map, the pool maintains a set of
//! incrementally-updated indexes so Algorithm 1's hot path (best-fit /
//! worst-fit selection, affinity lookup, idle reuse) runs as ordered-range
//! lookups instead of full scans (DESIGN.md §10):
//!
//! * `plain_fit` / `labeled_fit` — schedulable (non-releasing) devices
//!   keyed by their *fit key* `util_free + mem_free`, split by whether the
//!   device carries affinity labels (best-fit scans `plain_fit` ascending,
//!   worst-fit scans `labeled_fit` descending);
//! * `unattached` — devices with no tenants (Algorithm 1's `d.idle`),
//!   in id order;
//! * `idle` — devices in the `Idle` lifecycle phase (release-policy
//!   candidates), in id order;
//! * `aff_index` — affinity label → devices carrying it, in id order;
//! * `by_node` — node name → devices hosted there (includes releasing
//!   devices: node-failure handling must see them too).
//!
//! Every mutation (`insert_creating`, `mark_ready`, `attach`, `detach`,
//! `mark_releasing`, `remove`) keeps the indexes exact;
//! [`VgpuPool::verify_indexes`] cross-checks them against a from-scratch
//! rebuild and backs the index-consistency property tests.

use std::collections::{BTreeMap, BTreeSet};

use ks_cluster::api::Uid;
use ks_cluster::scheduler::OrdF64;
use ks_partition::{
    DeviceFreeView, PartitionError, PartitionTable, Profile, TableState, SLOTS_PER_GPU,
};
use ks_sim_core::time::{SimDuration, SimTime};
use serde::Serialize;

use crate::gpuid::GpuId;

/// Lifecycle phase of a vGPU (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum VgpuPhase {
    /// Anchor pod launched; waiting for the physical GPU's UUID.
    Creating,
    /// At least one sharePod attached.
    Active,
    /// No sharePods attached; GPU still held from Kubernetes.
    Idle,
}

/// One vGPU in the pool.
#[derive(Debug, Clone)]
pub struct PoolDevice {
    /// First-class identifier.
    pub id: GpuId,
    /// Lifecycle phase.
    pub phase: VgpuPhase,
    /// Node hosting the physical GPU (known once the anchor pod binds).
    pub node: Option<String>,
    /// Physical driver UUID (known once the anchor pod runs).
    pub uuid: Option<String>,
    /// Residual computing capacity: `1 − Σ gpu_request` of attached pods.
    pub util_free: f64,
    /// Residual memory fraction: `1 − Σ gpu_mem` of attached pods.
    pub mem_free: f64,
    /// Affinity labels present on this device.
    pub aff: BTreeSet<String>,
    /// Anti-affinity labels present on this device.
    pub anti_aff: BTreeSet<String>,
    /// Exclusion label of this device (single, overwritten on assignment).
    pub excl: Option<String>,
    /// Attached sharePods and their (request, mem) for release accounting.
    pub attached: BTreeMap<Uid, (f64, f64)>,
    /// Set once DevMgr decided to release the GPU back to Kubernetes; the
    /// anchor pod is being torn down and no new sharePod may bind here.
    pub releasing: bool,
    /// Spatial substrate: the MIG-style slice layout when this device is
    /// partitioned, `None` for the paper's time-sliced devices. The
    /// `util_free`/`mem_free` residuals mirror `free_slots / 7` exactly so
    /// node-capacity accounting and gauges work unchanged.
    pub partition: Option<PartitionTable>,
    /// Slice tenants: sharePod → start slot of the slice it occupies.
    pub slice_of: BTreeMap<Uid, u8>,
}

impl PoolDevice {
    fn fresh(id: GpuId) -> Self {
        PoolDevice {
            id,
            phase: VgpuPhase::Creating,
            node: None,
            uuid: None,
            util_free: 1.0,
            mem_free: 1.0,
            aff: BTreeSet::new(),
            anti_aff: BTreeSet::new(),
            excl: None,
            attached: BTreeMap::new(),
            releasing: false,
            partition: None,
            slice_of: BTreeMap::new(),
        }
    }

    /// Whether this device runs the spatial substrate (is partitioned).
    pub fn is_spatial(&self) -> bool {
        self.partition.is_some()
    }

    /// True if no sharePod is scheduled on the device (the algorithm's
    /// `d.idle`). A *creating* device with nothing attached is also idle
    /// in this sense.
    pub fn is_idle(&self) -> bool {
        self.attached.is_empty()
    }

    /// The fit key Algorithm 1 orders placement candidates by: total
    /// residual capacity. Best-fit minimizes it, worst-fit maximizes it;
    /// for a fixed request the placement residual is this sum minus a
    /// constant, so ordering by the sum is ordering by the residual.
    pub fn fit_key(&self) -> f64 {
        self.util_free + self.mem_free
    }
}

/// The capacity indexes over the device map. Kept in a dedicated struct so
/// maintenance and verification share one rebuild routine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PoolIndexes {
    /// Schedulable devices without affinity labels, by (fit key, id).
    plain_fit: BTreeMap<OrdF64, BTreeSet<GpuId>>,
    /// Schedulable devices with affinity labels, by (fit key, id).
    labeled_fit: BTreeMap<OrdF64, BTreeSet<GpuId>>,
    /// Schedulable devices with no attached sharePods, in id order.
    unattached: BTreeSet<GpuId>,
    /// Non-releasing devices in the `Idle` phase, in id order.
    idle: BTreeSet<GpuId>,
    /// Affinity label → schedulable devices carrying it.
    aff_index: BTreeMap<String, BTreeSet<GpuId>>,
    /// Node → devices hosted there (releasing devices included).
    by_node: BTreeMap<String, BTreeSet<GpuId>>,
    /// Non-releasing partitioned devices, in id order. Spatial devices
    /// live *only* here (plus `by_node`): they are invisible to the
    /// time-slice fit/idle/affinity indexes, so Algorithm 1's token-lease
    /// path never sees them and the release policy never reclaims them.
    spatial: BTreeSet<GpuId>,
}

impl PoolIndexes {
    /// Adds one device to every index it belongs in.
    fn insert(&mut self, d: &PoolDevice) {
        if let Some(node) = &d.node {
            self.by_node
                .entry(node.clone())
                .or_default()
                .insert(d.id.clone());
        }
        if d.releasing {
            // Invisible to the scheduler: no capacity/idle/affinity entries.
            return;
        }
        if d.partition.is_some() {
            // Spatial devices are scheduled through the partition path,
            // never the time-slice fit/idle/affinity indexes.
            self.spatial.insert(d.id.clone());
            return;
        }
        let key = OrdF64::of(d.fit_key());
        let fit = if d.aff.is_empty() {
            &mut self.plain_fit
        } else {
            &mut self.labeled_fit
        };
        fit.entry(key).or_default().insert(d.id.clone());
        if d.attached.is_empty() {
            self.unattached.insert(d.id.clone());
        }
        if d.phase == VgpuPhase::Idle {
            self.idle.insert(d.id.clone());
        }
        for label in &d.aff {
            self.aff_index
                .entry(label.clone())
                .or_default()
                .insert(d.id.clone());
        }
    }

    /// Removes one device from every index, given its *current* state
    /// (call before mutating the device).
    fn remove(&mut self, d: &PoolDevice) {
        if let Some(node) = &d.node {
            if let Some(set) = self.by_node.get_mut(node) {
                set.remove(&d.id);
                if set.is_empty() {
                    self.by_node.remove(node);
                }
            }
        }
        if d.releasing {
            return;
        }
        if d.partition.is_some() {
            self.spatial.remove(&d.id);
            return;
        }
        let key = OrdF64::of(d.fit_key());
        let fit = if d.aff.is_empty() {
            &mut self.plain_fit
        } else {
            &mut self.labeled_fit
        };
        if let Some(set) = fit.get_mut(&key) {
            set.remove(&d.id);
            if set.is_empty() {
                fit.remove(&key);
            }
        }
        self.unattached.remove(&d.id);
        self.idle.remove(&d.id);
        for label in &d.aff {
            if let Some(set) = self.aff_index.get_mut(label) {
                set.remove(&d.id);
                if set.is_empty() {
                    self.aff_index.remove(label);
                }
            }
        }
    }

    /// Builds the indexes from scratch for a device map.
    fn rebuild(devices: &BTreeMap<GpuId, PoolDevice>) -> Self {
        let mut ix = PoolIndexes::default();
        for d in devices.values() {
            ix.insert(d);
        }
        ix
    }
}

/// The pool of vGPUs.
#[derive(Debug, Clone, Default)]
pub struct VgpuPool {
    devices: BTreeMap<GpuId, PoolDevice>,
    next_id: u64,
    ix: PoolIndexes,
    /// Device count per phase (`Creating`/`Active`/`Idle` by discriminant),
    /// maintained on every transition so gauge mirrors don't rescan the
    /// pool after each event.
    tally: [u32; 3],
}

impl VgpuPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates a fresh GPUID (not yet in the pool).
    pub fn fresh_id(&mut self) -> GpuId {
        loop {
            self.next_id += 1;
            let id = GpuId::generate(self.next_id);
            if !self.devices.contains_key(&id) {
                return id;
            }
        }
    }

    /// Adds a new vGPU in `Creating` phase under the given id.
    ///
    /// # Panics
    /// Panics if the id already exists.
    pub fn insert_creating(&mut self, id: GpuId) {
        assert!(!self.devices.contains_key(&id), "vGPU {id} already in pool");
        let d = PoolDevice::fresh(id.clone());
        self.tally[d.phase as usize] += 1;
        self.ix.insert(&d);
        self.devices.insert(id, d);
    }

    /// Adds a new *partitioned* vGPU in `Creating` phase under the given
    /// id: its anchor pod claims a whole physical GPU which is carved
    /// into the MIG-style slice grid instead of time-sliced.
    ///
    /// # Panics
    /// Panics if the id already exists.
    pub fn insert_creating_spatial(&mut self, id: GpuId) {
        assert!(!self.devices.contains_key(&id), "vGPU {id} already in pool");
        let mut d = PoolDevice::fresh(id.clone());
        d.partition = Some(PartitionTable::new());
        self.tally[d.phase as usize] += 1;
        self.ix.insert(&d);
        self.devices.insert(id, d);
    }

    /// Marks a creating vGPU ready: physical GPU acquired.
    pub fn mark_ready(&mut self, id: &GpuId, node: String, uuid: String) {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        debug_assert_eq!(d.phase, VgpuPhase::Creating);
        self.tally[d.phase as usize] -= 1;
        self.ix.remove(d);
        d.node = Some(node);
        d.uuid = Some(uuid);
        d.phase = if d.attached.is_empty() {
            VgpuPhase::Idle
        } else {
            VgpuPhase::Active
        };
        self.tally[d.phase as usize] += 1;
        let d = &self.devices[id];
        self.ix.insert(d);
    }

    /// Attaches a sharePod's demand to a vGPU, consuming residual capacity
    /// and accumulating labels.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's request tuple
    pub fn attach(
        &mut self,
        id: &GpuId,
        sharepod: Uid,
        request: f64,
        mem: f64,
        aff: Option<&str>,
        anti_aff: Option<&str>,
        excl: Option<&str>,
    ) {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        assert!(
            !d.is_spatial(),
            "token-lease attach on partitioned vGPU {id}; use attach_slice"
        );
        assert!(
            d.util_free + 1e-9 >= request && d.mem_free + 1e-9 >= mem,
            "over-committing vGPU {id}: free=({:.3},{:.3}) need=({request:.3},{mem:.3})",
            d.util_free,
            d.mem_free
        );
        self.ix.remove(d);
        d.util_free = (d.util_free - request).max(0.0);
        d.mem_free = (d.mem_free - mem).max(0.0);
        if let Some(a) = aff {
            d.aff.insert(a.to_string());
        }
        if let Some(a) = anti_aff {
            d.anti_aff.insert(a.to_string());
        }
        d.excl = excl.map(str::to_string);
        d.attached.insert(sharepod, (request, mem));
        if d.phase != VgpuPhase::Creating {
            self.tally[d.phase as usize] -= 1;
            d.phase = VgpuPhase::Active;
            self.tally[d.phase as usize] += 1;
        }
        let d = &self.devices[id];
        self.ix.insert(d);
    }

    /// Binds a sharePod to a dedicated slice on a partitioned vGPU. The
    /// slice profile is placed at the fragmentation-aware best start;
    /// labels accumulate exactly as in [`VgpuPool::attach`]. Returns the
    /// start slot, or the partition error (`NoFit` when no legal start
    /// hosts the profile, `BadState` while draining/reconfiguring).
    #[allow(clippy::too_many_arguments)] // mirrors attach's request tuple
    pub fn attach_slice(
        &mut self,
        id: &GpuId,
        sharepod: Uid,
        profile: Profile,
        request: f64,
        mem: f64,
        aff: Option<&str>,
        anti_aff: Option<&str>,
        excl: Option<&str>,
    ) -> Result<u8, PartitionError> {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        assert!(!d.releasing, "binding to releasing vGPU {id}");
        let table = d
            .partition
            .as_ref()
            .expect("attach_slice on time-sliced vGPU");
        if table.state() != TableState::Active {
            return Err(PartitionError::BadState);
        }
        if !table.can_place(profile) {
            return Err(PartitionError::NoFit);
        }
        self.ix.remove(d);
        let table = d.partition.as_mut().expect("checked above");
        let start = table.alloc(profile).expect("can_place checked");
        let free = f64::from(table.free_slots()) / f64::from(SLOTS_PER_GPU);
        d.util_free = free;
        d.mem_free = free;
        d.slice_of.insert(sharepod, start);
        if let Some(a) = aff {
            d.aff.insert(a.to_string());
        }
        if let Some(a) = anti_aff {
            d.anti_aff.insert(a.to_string());
        }
        d.excl = excl.map(str::to_string);
        d.attached.insert(sharepod, (request, mem));
        if d.phase != VgpuPhase::Creating {
            self.tally[d.phase as usize] -= 1;
            d.phase = VgpuPhase::Active;
            self.tally[d.phase as usize] += 1;
        }
        let d = &self.devices[id];
        self.ix.insert(d);
        Ok(start)
    }

    /// Detaches a sharePod, restoring capacity. Returns `true` if the vGPU
    /// became idle (labels are cleared then, so an idle device is clean for
    /// any future tenant). On a partitioned device this frees the tenant's
    /// slice (legal while active or draining), so the generic teardown
    /// paths — node failure, pod deletion, drain — work unchanged.
    pub fn detach(&mut self, id: &GpuId, sharepod: Uid) -> bool {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        self.ix.remove(d);
        let (request, mem) = d
            .attached
            .remove(&sharepod)
            .expect("sharePod attached to vGPU");
        if let Some(table) = d.partition.as_mut() {
            let start = d.slice_of.remove(&sharepod).expect("slice tenant");
            table.free(start).expect("resident slice");
            let free = f64::from(table.free_slots()) / f64::from(SLOTS_PER_GPU);
            d.util_free = free;
            d.mem_free = free;
        } else {
            d.util_free = (d.util_free + request).min(1.0);
            d.mem_free = (d.mem_free + mem).min(1.0);
        }
        let became_idle = d.attached.is_empty();
        if became_idle {
            // Full restore, exactly: an idle device has no tenants, so its
            // residuals are whole by definition. Snapping to 1.0 (instead
            // of keeping the float round-trip) keeps every idle device at
            // fit key 2.0 exactly, which the capacity indexes rely on.
            d.util_free = 1.0;
            d.mem_free = 1.0;
            d.aff.clear();
            d.anti_aff.clear();
            d.excl = None;
            if d.phase != VgpuPhase::Creating {
                self.tally[d.phase as usize] -= 1;
                d.phase = VgpuPhase::Idle;
                self.tally[d.phase as usize] += 1;
            }
        }
        let d = &self.devices[id];
        self.ix.insert(d);
        became_idle
    }

    /// Starts a partition reconfiguration on a spatial device: the table
    /// goes `Active → Draining` and the resident slice tenants are
    /// returned for the caller to requeue (each requeue's detach frees
    /// its slice; once empty, call
    /// [`VgpuPool::note_partition_drained`]).
    pub fn begin_partition_drain(&mut self, id: &GpuId) -> Result<Vec<Uid>, PartitionError> {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        let table = d
            .partition
            .as_mut()
            .expect("partition drain on time-sliced vGPU");
        table.begin_reconfig()?;
        Ok(d.attached.keys().copied().collect())
    }

    /// Records that a spatial device's drain completed; the new layout
    /// activates no earlier than `now + cost`. Returns the activation
    /// time.
    pub fn note_partition_drained(
        &mut self,
        id: &GpuId,
        now: SimTime,
        cost: SimDuration,
    ) -> Result<SimTime, PartitionError> {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        let table = d
            .partition
            .as_mut()
            .expect("partition drain on time-sliced vGPU");
        table.note_drained(now, cost)
    }

    /// Completes a spatial device's reconfiguration at or after the
    /// activation time recorded by [`VgpuPool::note_partition_drained`].
    pub fn activate_partition(&mut self, id: &GpuId, now: SimTime) -> Result<(), PartitionError> {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        let table = d
            .partition
            .as_mut()
            .expect("partition activate on time-sliced vGPU");
        table.activate(now)
    }

    /// Non-releasing partitioned devices in id order — the candidate set
    /// of the spatial placement path.
    pub fn spatial_devices(&self) -> impl Iterator<Item = &PoolDevice> {
        self.ix.spatial.iter().map(move |id| &self.devices[id])
    }

    /// Number of non-releasing partitioned devices.
    pub fn spatial_count(&self) -> usize {
        self.ix.spatial.len()
    }

    /// The sharePod occupying the slice that starts at `start` on a
    /// partitioned device, if any.
    pub fn slice_tenant(&self, id: &GpuId, start: u8) -> Option<Uid> {
        self.devices.get(id).and_then(|d| {
            d.slice_of
                .iter()
                .find(|&(_, &s)| s == start)
                .map(|(&u, _)| u)
        })
    }

    /// Pool-level fragmentation over all schedulable (non-releasing)
    /// devices: the fraction of free capacity no single allocation can
    /// claim ([`ks_partition::pool_fragmentation`]). Time-sliced devices
    /// contribute `largest_alloc == free` (any residual is reachable);
    /// partitioned ones contribute their largest placeable profile — 0
    /// mid-reconfig, so draining devices raise the gauge until they come
    /// back.
    pub fn fragmentation(&self) -> f64 {
        let views: Vec<DeviceFreeView> = self
            .devices
            .values()
            .filter(|d| !d.releasing)
            .map(|d| match &d.partition {
                Some(t) => DeviceFreeView {
                    free: f64::from(t.free_slots()) / f64::from(SLOTS_PER_GPU),
                    largest_alloc: f64::from(t.largest_placeable_slots())
                        / f64::from(SLOTS_PER_GPU),
                },
                None => DeviceFreeView {
                    free: d.util_free,
                    largest_alloc: d.util_free,
                },
            })
            .collect();
        ks_partition::pool_fragmentation(&views)
    }

    /// Marks a vGPU as being released: it stays in the pool (its anchor is
    /// still terminating) but is invisible to the scheduler.
    pub fn mark_releasing(&mut self, id: &GpuId) {
        let d = self.devices.get_mut(id).expect("vGPU in pool");
        debug_assert!(d.attached.is_empty(), "releasing vGPU {id} with tenants");
        self.ix.remove(d);
        d.releasing = true;
        let d = &self.devices[id];
        self.ix.insert(d);
    }

    /// Removes a vGPU entirely (GPU released back to Kubernetes).
    ///
    /// # Panics
    /// Panics if sharePods are still attached.
    pub fn remove(&mut self, id: &GpuId) -> PoolDevice {
        let d = self.devices.get(id).expect("vGPU in pool");
        assert!(d.attached.is_empty(), "removing vGPU {id} with tenants");
        self.tally[d.phase as usize] -= 1;
        self.ix.remove(d);
        self.devices.remove(id).expect("vGPU in pool")
    }

    /// Looks up a device.
    pub fn get(&self, id: &GpuId) -> Option<&PoolDevice> {
        self.devices.get(id)
    }

    /// All devices in deterministic id order.
    pub fn devices(&self) -> impl Iterator<Item = &PoolDevice> {
        self.devices.values()
    }

    /// Devices currently idle and not already being released (candidates
    /// for release or for reuse), in id order. Served from the idle index —
    /// no allocation; collect if a snapshot is needed across mutations.
    pub fn idle_devices(&self) -> impl Iterator<Item = &GpuId> + '_ {
        self.ix.idle.iter()
    }

    /// Number of idle, non-releasing devices (release-policy accounting).
    pub fn idle_count(&self) -> usize {
        self.ix.idle.len()
    }

    /// First (id order) schedulable device with no attached sharePods —
    /// Algorithm 1's idle-device preference in the affinity step.
    pub fn first_unattached(&self) -> Option<&GpuId> {
        self.ix.unattached.iter().next()
    }

    /// First (id order) schedulable device carrying the affinity label —
    /// the binding target of Algorithm 1's affinity step.
    pub fn affinity_target(&self, label: &str) -> Option<&GpuId> {
        self.ix.aff_index.get(label).and_then(|s| s.iter().next())
    }

    /// Devices hosted on a node (releasing devices included), in id order.
    pub fn devices_on_node<'a>(&'a self, node: &str) -> impl Iterator<Item = &'a GpuId> + 'a {
        self.ix
            .by_node
            .get(node)
            .into_iter()
            .flat_map(|set| set.iter())
    }

    /// Schedulable devices *without* affinity labels whose fit key is at
    /// least `min_fit`, ascending by (fit key, id) — the best-fit scan
    /// order (tightest candidate first, id as the tie-break).
    pub fn plain_fit_range(&self, min_fit: f64) -> impl Iterator<Item = &PoolDevice> {
        self.ix
            .plain_fit
            .range(OrdF64::of(min_fit)..)
            .flat_map(move |(_, set)| set.iter().map(move |id| &self.devices[id]))
    }

    /// Schedulable devices *with* affinity labels whose fit key is at least
    /// `min_fit`, descending by fit key with ascending id inside one key —
    /// the worst-fit scan order (roomiest candidate first, id tie-break).
    pub fn labeled_fit_range_desc(&self, min_fit: f64) -> impl Iterator<Item = &PoolDevice> {
        self.ix
            .labeled_fit
            .range(OrdF64::of(min_fit)..)
            .rev()
            .flat_map(move |(_, set)| set.iter().map(move |id| &self.devices[id]))
    }

    /// Cross-checks the incrementally-maintained indexes against a
    /// from-scratch rebuild. Returns a description of the first mismatch.
    /// Backs the index-consistency property tests; cheap enough to call
    /// from any invariant-minded test.
    pub fn verify_indexes(&self) -> Result<(), String> {
        let mut fresh_tally = [0u32; 3];
        for d in self.devices.values() {
            fresh_tally[d.phase as usize] += 1;
        }
        if fresh_tally != self.tally {
            return Err(format!(
                "phase tally drifted: incremental {:?} != rebuilt {fresh_tally:?}",
                self.tally
            ));
        }
        for d in self.devices.values() {
            let Some(t) = &d.partition else { continue };
            t.verify().map_err(|e| format!("device {}: {e}", d.id))?;
            if d.slice_of.len() != t.slice_count() {
                return Err(format!(
                    "device {}: {} slice tenants but {} slices",
                    d.id,
                    d.slice_of.len(),
                    t.slice_count()
                ));
            }
            let free = f64::from(t.free_slots()) / f64::from(SLOTS_PER_GPU);
            if d.util_free != free || d.mem_free != free {
                return Err(format!(
                    "device {}: residual mirror ({}, {}) != {free} free slots",
                    d.id, d.util_free, d.mem_free
                ));
            }
        }
        let fresh = PoolIndexes::rebuild(&self.devices);
        if fresh == self.ix {
            return Ok(());
        }
        for (name, got, want) in [
            (
                "plain_fit",
                format!("{:?}", self.ix.plain_fit),
                format!("{:?}", fresh.plain_fit),
            ),
            (
                "labeled_fit",
                format!("{:?}", self.ix.labeled_fit),
                format!("{:?}", fresh.labeled_fit),
            ),
            (
                "unattached",
                format!("{:?}", self.ix.unattached),
                format!("{:?}", fresh.unattached),
            ),
            (
                "idle",
                format!("{:?}", self.ix.idle),
                format!("{:?}", fresh.idle),
            ),
            (
                "aff_index",
                format!("{:?}", self.ix.aff_index),
                format!("{:?}", fresh.aff_index),
            ),
            (
                "by_node",
                format!("{:?}", self.ix.by_node),
                format!("{:?}", fresh.by_node),
            ),
            (
                "spatial",
                format!("{:?}", self.ix.spatial),
                format!("{:?}", fresh.spatial),
            ),
        ] {
            if got != want {
                return Err(format!(
                    "index {name} drifted: incremental {got} != rebuilt {want}"
                ));
            }
        }
        Err("index drift in unknown structure".into())
    }

    /// Device count per phase as `(creating, active, idle)`, maintained
    /// incrementally — O(1), safe to read after every event.
    pub fn phase_counts(&self) -> (u32, u32, u32) {
        (
            self.tally[VgpuPhase::Creating as usize],
            self.tally[VgpuPhase::Active as usize],
            self.tally[VgpuPhase::Idle as usize],
        )
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_ready(n: usize) -> (VgpuPool, Vec<GpuId>) {
        let mut p = VgpuPool::new();
        let ids: Vec<GpuId> = (0..n)
            .map(|i| {
                let id = p.fresh_id();
                p.insert_creating(id.clone());
                p.mark_ready(&id, format!("node-{i}"), format!("GPU-{i}"));
                id
            })
            .collect();
        (p, ids)
    }

    #[test]
    fn lifecycle_creating_to_idle_to_active() {
        let mut p = VgpuPool::new();
        let id = p.fresh_id();
        p.insert_creating(id.clone());
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Creating);
        p.mark_ready(&id, "n0".into(), "GPU-x".into());
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Idle);
        p.attach(&id, Uid(1), 0.5, 0.5, None, None, None);
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Active);
        assert!(p.detach(&id, Uid(1)));
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Idle);
        p.verify_indexes().unwrap();
    }

    #[test]
    fn attach_while_creating_keeps_creating_phase() {
        let mut p = VgpuPool::new();
        let id = p.fresh_id();
        p.insert_creating(id.clone());
        p.attach(&id, Uid(1), 0.3, 0.3, None, None, None);
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Creating);
        p.mark_ready(&id, "n".into(), "GPU-x".into());
        assert_eq!(p.get(&id).unwrap().phase, VgpuPhase::Active);
        p.verify_indexes().unwrap();
    }

    #[test]
    fn capacity_accounting() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(&ids[0], Uid(1), 0.3, 0.4, None, None, None);
        p.attach(&ids[0], Uid(2), 0.5, 0.2, None, None, None);
        let d = p.get(&ids[0]).unwrap();
        assert!((d.util_free - 0.2).abs() < 1e-9);
        assert!((d.mem_free - 0.4).abs() < 1e-9);
        p.detach(&ids[0], Uid(1));
        let d = p.get(&ids[0]).unwrap();
        assert!((d.util_free - 0.5).abs() < 1e-9);
    }

    #[test]
    fn detach_to_idle_restores_exact_full_capacity() {
        let (mut p, ids) = pool_with_ready(1);
        // 0.7 + 0.3 does not round-trip exactly in f64; the idle reset
        // must snap back to a bit-exact 1.0 anyway.
        p.attach(&ids[0], Uid(1), 0.3, 0.3, None, None, None);
        p.attach(&ids[0], Uid(2), 0.1, 0.1, None, None, None);
        p.detach(&ids[0], Uid(1));
        p.detach(&ids[0], Uid(2));
        let d = p.get(&ids[0]).unwrap();
        assert_eq!(d.util_free, 1.0);
        assert_eq!(d.mem_free, 1.0);
        assert_eq!(d.fit_key(), 2.0);
    }

    #[test]
    #[should_panic(expected = "over-committing")]
    fn overcommit_panics() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(&ids[0], Uid(1), 0.8, 0.1, None, None, None);
        p.attach(&ids[0], Uid(2), 0.3, 0.1, None, None, None);
    }

    #[test]
    fn labels_accumulate_and_clear_on_idle() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(
            &ids[0],
            Uid(1),
            0.2,
            0.2,
            Some("g1"),
            Some("noisy"),
            Some("tenant"),
        );
        p.attach(&ids[0], Uid(2), 0.2, 0.2, Some("g2"), None, Some("tenant"));
        let d = p.get(&ids[0]).unwrap();
        assert!(d.aff.contains("g1") && d.aff.contains("g2"));
        assert!(d.anti_aff.contains("noisy"));
        assert_eq!(d.excl.as_deref(), Some("tenant"));
        assert_eq!(p.affinity_target("g1"), Some(&ids[0]));
        assert_eq!(p.affinity_target("g2"), Some(&ids[0]));
        p.detach(&ids[0], Uid(1));
        assert!(p.detach(&ids[0], Uid(2)), "becomes idle");
        let d = p.get(&ids[0]).unwrap();
        assert!(d.aff.is_empty() && d.anti_aff.is_empty() && d.excl.is_none());
        assert_eq!(p.affinity_target("g1"), None);
        p.verify_indexes().unwrap();
    }

    #[test]
    fn idle_devices_listed() {
        let (mut p, ids) = pool_with_ready(2);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, None);
        let idle: Vec<&GpuId> = p.idle_devices().collect();
        assert_eq!(idle, vec![&ids[1]]);
        assert_eq!(p.idle_count(), 1);
    }

    #[test]
    fn releasing_device_leaves_scheduler_indexes() {
        let (mut p, ids) = pool_with_ready(2);
        p.mark_releasing(&ids[0]);
        assert_eq!(p.idle_count(), 1);
        assert_eq!(p.first_unattached(), Some(&ids[1]));
        assert!(p.plain_fit_range(0.0).all(|d| d.id != ids[0]));
        // Still visible by node for failure handling.
        assert_eq!(p.devices_on_node("node-0").next(), Some(&ids[0]));
        p.verify_indexes().unwrap();
    }

    #[test]
    fn fit_ranges_order_by_key_then_id() {
        let (mut p, ids) = pool_with_ready(3);
        p.attach(&ids[0], Uid(1), 0.6, 0.6, None, None, None); // fit 0.8
        p.attach(&ids[1], Uid(2), 0.2, 0.2, None, None, None); // fit 1.6
                                                               // ids[2] idle: fit 2.0
        let order: Vec<&GpuId> = p.plain_fit_range(0.0).map(|d| &d.id).collect();
        assert_eq!(order, vec![&ids[0], &ids[1], &ids[2]]);
        let bounded: Vec<&GpuId> = p.plain_fit_range(1.0).map(|d| &d.id).collect();
        assert_eq!(bounded, vec![&ids[1], &ids[2]]);
        // Labeled devices live in the other index, scanned descending.
        p.attach(&ids[2], Uid(3), 0.5, 0.5, Some("g"), None, None); // fit 1.0
        p.attach(&ids[1], Uid(4), 0.1, 0.1, Some("g"), None, None); // fit 1.4
        let desc: Vec<&GpuId> = p.labeled_fit_range_desc(0.0).map(|d| &d.id).collect();
        assert_eq!(desc, vec![&ids[1], &ids[2]]);
        p.verify_indexes().unwrap();
    }

    #[test]
    fn per_node_index_tracks_ready_devices() {
        let (mut p, ids) = pool_with_ready(2);
        assert_eq!(
            p.devices_on_node("node-0").collect::<Vec<_>>(),
            vec![&ids[0]]
        );
        p.remove(&ids[0]);
        assert_eq!(p.devices_on_node("node-0").count(), 0);
        assert_eq!(p.devices_on_node("node-1").count(), 1);
        p.verify_indexes().unwrap();
    }

    #[test]
    #[should_panic(expected = "with tenants")]
    fn remove_active_panics() {
        let (mut p, ids) = pool_with_ready(1);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, None);
        p.remove(&ids[0]);
    }

    fn spatial_pool_with_ready(n: usize) -> (VgpuPool, Vec<GpuId>) {
        let mut p = VgpuPool::new();
        let ids: Vec<GpuId> = (0..n)
            .map(|i| {
                let id = p.fresh_id();
                p.insert_creating_spatial(id.clone());
                p.mark_ready(&id, format!("node-{i}"), format!("GPU-{i}"));
                id
            })
            .collect();
        (p, ids)
    }

    #[test]
    fn spatial_devices_hide_from_time_slice_indexes() {
        let (mut p, ids) = spatial_pool_with_ready(1);
        assert_eq!(p.spatial_count(), 1);
        assert_eq!(p.first_unattached(), None);
        assert_eq!(p.idle_count(), 0);
        assert_eq!(p.plain_fit_range(0.0).count(), 0);
        p.attach_slice(
            &ids[0],
            Uid(1),
            Profile::P2,
            0.2,
            0.2,
            Some("g"),
            None,
            None,
        )
        .unwrap();
        assert_eq!(p.affinity_target("g"), None);
        // Still visible by node for failure handling.
        assert_eq!(p.devices_on_node("node-0").next(), Some(&ids[0]));
        p.verify_indexes().unwrap();
    }

    #[test]
    fn slice_attach_detach_mirrors_residuals() {
        let (mut p, ids) = spatial_pool_with_ready(1);
        let start = p
            .attach_slice(&ids[0], Uid(1), Profile::P3, 0.4, 0.3, None, None, None)
            .unwrap();
        assert_eq!(p.slice_tenant(&ids[0], start), Some(Uid(1)));
        let d = p.get(&ids[0]).unwrap();
        assert_eq!(d.util_free, 4.0 / 7.0);
        assert_eq!(d.phase, VgpuPhase::Active);
        assert!(p.detach(&ids[0], Uid(1)), "becomes idle");
        let d = p.get(&ids[0]).unwrap();
        assert_eq!(d.util_free, 1.0);
        assert_eq!(d.phase, VgpuPhase::Idle);
        assert_eq!(p.slice_tenant(&ids[0], start), None);
        p.verify_indexes().unwrap();
    }

    #[test]
    fn slice_no_fit_reported_not_panicked() {
        let (mut p, ids) = spatial_pool_with_ready(1);
        p.attach_slice(&ids[0], Uid(1), Profile::P7, 1.0, 1.0, None, None, None)
            .unwrap();
        assert_eq!(
            p.attach_slice(&ids[0], Uid(2), Profile::P1, 0.1, 0.1, None, None, None),
            Err(PartitionError::NoFit)
        );
        p.verify_indexes().unwrap();
    }

    #[test]
    fn partition_reconfig_round_trip() {
        let (mut p, ids) = spatial_pool_with_ready(1);
        p.attach_slice(&ids[0], Uid(1), Profile::P2, 0.25, 0.25, None, None, None)
            .unwrap();
        let tenants = p.begin_partition_drain(&ids[0]).unwrap();
        assert_eq!(tenants, vec![Uid(1)]);
        // No new slice while draining.
        assert_eq!(
            p.attach_slice(&ids[0], Uid(2), Profile::P1, 0.1, 0.1, None, None, None),
            Err(PartitionError::BadState)
        );
        p.detach(&ids[0], Uid(1));
        let now = SimTime::from_secs(3);
        let cost = SimDuration::from_secs(2);
        let until = p.note_partition_drained(&ids[0], now, cost).unwrap();
        assert_eq!(
            p.activate_partition(&ids[0], now),
            Err(PartitionError::NotReady)
        );
        p.activate_partition(&ids[0], until).unwrap();
        assert!(p
            .attach_slice(&ids[0], Uid(3), Profile::P7, 1.0, 1.0, None, None, None)
            .is_ok());
        p.verify_indexes().unwrap();
    }

    #[test]
    fn fragmentation_blends_substrates() {
        // One whole time-sliced device: unfragmented.
        let (mut p, _) = pool_with_ready(1);
        assert_eq!(p.fragmentation(), 0.0);
        // Add a partitioned device with a stranded-slot layout: a P2 at
        // slots 2-3 leaves 5 free slots with only a P3 placeable.
        let sid = p.fresh_id();
        p.insert_creating_spatial(sid.clone());
        p.mark_ready(&sid, "node-s".into(), "GPU-s".into());
        p.attach_slice(&sid, Uid(9), Profile::P2, 0.25, 0.25, None, None, None)
            .unwrap();
        // Force the fragmented layout the best-start heuristic avoids.
        {
            // free = 1 + 5/7, reachable = 1 + largest/7.
            let f = p.fragmentation();
            let d = p.get(&sid).unwrap();
            let largest = d.partition.as_ref().unwrap().largest_placeable_slots();
            let expect = 1.0 - (1.0 + f64::from(largest) / 7.0) / (1.0 + 5.0 / 7.0);
            assert!((f - expect).abs() < 1e-12, "got {f}, want {expect}");
        }
        p.verify_indexes().unwrap();
    }

    #[test]
    #[should_panic(expected = "use attach_slice")]
    fn token_attach_on_spatial_panics() {
        let (mut p, ids) = spatial_pool_with_ready(1);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, None);
    }

    #[test]
    fn fresh_ids_never_collide() {
        let mut p = VgpuPool::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let id = p.fresh_id();
            p.insert_creating(id.clone());
            assert!(seen.insert(id));
        }
        p.verify_indexes().unwrap();
    }
}
