//! Algorithm 1: locality & resource aware scheduling (paper §4.3).
//!
//! Given a container's requirements `r` (gpu_request, gpu_mem, locality
//! labels) and the vGPU pool `D`, pick the GPUID to bind:
//!
//! * **Step 1** — affinity: if `r` has an affinity label and a device
//!   already carries it, the container *must* go there (reject on any
//!   conflict with exclusion/anti-affinity/capacity). If no device carries
//!   the label yet, prefer an idle or brand-new device so the group has
//!   room to grow.
//! * **Step 2** — filter: drop devices that conflict on exclusion or
//!   anti-affinity or lack residual capacity (idle devices are clean and
//!   always pass).
//! * **Step 3** — placement: **best-fit** among devices *without* affinity
//!   labels, then **worst-fit** among devices *with* affinity labels
//!   (keeping room for their future group members), then a new device.
//!
//! Two implementations exist behind [`SchedMode`]: the paper-faithful
//! linear-scan reference ([`schedule`]) and an indexed path that serves
//! the same steps from [`VgpuPool`]'s capacity indexes in logarithmic
//! time. They produce byte-identical decisions; the differential oracle
//! in `tests/sched_differential.rs` enforces this (DESIGN.md §10).

pub use ks_cluster::scheduler::SchedMode;

use ks_cluster::api::Uid;
use ks_partition::{Profile, Substrate, TableState, SLOTS_PER_GPU};
use ks_sim_core::time::SimTime;
use ks_telemetry::provenance::{DecisionKind, FlightRecorder, Outcome, ReasonCode, SchedProv};

use crate::gpuid::GpuId;
use crate::locality::Locality;
use crate::pool::{PoolDevice, VgpuPool};

/// A container's scheduling requirements (`r` in Algorithm 1).
#[derive(Debug, Clone)]
pub struct SchedRequest {
    /// `gpu_request` — minimum compute share to reserve.
    pub util: f64,
    /// `gpu_mem` — memory fraction to reserve.
    pub mem: f64,
    /// Locality labels.
    pub locality: Locality,
}

/// The algorithm's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Bind to an existing vGPU.
    Assign(GpuId),
    /// Create a new vGPU with this (fresh) GPUID and bind to it.
    NewDevice(GpuId),
    /// Spatial only: no legal slice start hosts the request anywhere, but
    /// this partitioned device holds enough *total* free slots — capacity
    /// stranded purely by slice geometry. The caller should drain and
    /// reconfigure the device, then retry the request.
    Reconfigure(GpuId),
    /// Constraints cannot be satisfied (paper's `return -1`).
    Reject(RejectReason),
}

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Affinity target exists but carries a different exclusion label.
    ExclusionConflict,
    /// Affinity target already hosts the request's anti-affinity label.
    AntiAffinityConflict,
    /// Affinity target lacks residual capacity.
    InsufficientCapacity,
}

fn excl_matches(req: &Option<String>, dev: &Option<String>) -> bool {
    req == dev
}

fn anti_aff_conflicts(req: &Option<String>, dev: &PoolDevice) -> bool {
    match req {
        Some(label) => dev.anti_aff.contains(label),
        None => false,
    }
}

fn has_capacity(req: &SchedRequest, dev: &PoolDevice) -> bool {
    req.util <= dev.util_free + 1e-9 && req.mem <= dev.mem_free + 1e-9
}

/// Fit metric: total residual after hypothetical placement. Best-fit
/// minimizes it (pack tight); worst-fit maximizes it (keep room).
fn residual_after(req: &SchedRequest, dev: &PoolDevice) -> f64 {
    (dev.util_free - req.util) + (dev.mem_free - req.mem)
}

/// The fit metric of placing `req` on an existing device: the residual
/// Step 3 optimises, exposed so KubeShare-Sched can record the fit score
/// of the decision it just made. `None` if the device is not in the pool.
pub fn fit_residual(req: &SchedRequest, pool: &VgpuPool, gpuid: &GpuId) -> Option<f64> {
    pool.get(gpuid).map(|d| residual_after(req, d))
}

/// Runs Algorithm 1. Pure with respect to pool *contents*; only consumes a
/// fresh id from the pool's id counter when a new device is needed.
pub fn schedule(req: &SchedRequest, pool: &mut VgpuPool) -> Decision {
    schedule_prov(req, pool, &mut SchedProv::off())
}

/// [`schedule`] with a provenance collector. The collector is a pure
/// observer: every capture call is gated on its enablement and mutates
/// nothing the algorithm reads, so decisions are identical with `prov` on
/// or off (enforced by the differential oracles).
pub fn schedule_prov(req: &SchedRequest, pool: &mut VgpuPool, prov: &mut SchedProv) -> Decision {
    // ---- Step 1: affinity (lines 1–14) ----
    if let Some(aff) = &req.locality.affinity {
        let target = pool
            .devices()
            .find(|d| !d.releasing && !d.is_spatial() && d.aff.contains(aff));
        if let Some(d) = target {
            prov.candidate_with("affinity", d.fit_key(), || d.id.as_str());
            prov.note(|| format!("affinity '{aff}' binds to {}", d.id));
            if !excl_matches(&req.locality.exclusion, &d.excl) {
                prov.reject(ReasonCode::AffinityExcluded);
                return Decision::Reject(RejectReason::ExclusionConflict);
            }
            if anti_aff_conflicts(&req.locality.anti_affinity, d) {
                prov.reject(ReasonCode::AntiAffinityConflict);
                return Decision::Reject(RejectReason::AntiAffinityConflict);
            }
            if !has_capacity(req, d) {
                prov.reject(ReasonCode::AffinityNoCapacity);
                return Decision::Reject(RejectReason::InsufficientCapacity);
            }
            prov.choose(d.id.as_str(), "affinity", d.fit_key());
            return Decision::Assign(d.id.clone());
        }
        // No device carries the label yet: prefer an idle device so the
        // affinity group has maximal room (lines 9–14).
        if let Some(d) = pool
            .devices()
            .find(|d| !d.releasing && !d.is_spatial() && d.is_idle())
        {
            prov.candidate_with("idle", d.fit_key(), || d.id.as_str());
            prov.choose(d.id.as_str(), "idle", d.fit_key());
            prov.note(|| format!("no device carries affinity '{aff}'; seed group on idle device"));
            return Decision::Assign(d.id.clone());
        }
        prov.note(|| format!("no device carries affinity '{aff}' and none idle; new device"));
        return Decision::NewDevice(pool.fresh_id());
    }

    // ---- Step 2: filter (lines 15–20) ----
    let candidates: Vec<&PoolDevice> = pool
        .devices()
        .filter(|d| {
            if d.releasing || d.is_spatial() {
                return false; // handed back, or on the spatial substrate
            }
            if d.is_idle() {
                return true; // clean device: constraints are vacuous
            }
            excl_matches(&req.locality.exclusion, &d.excl)
                && !anti_aff_conflicts(&req.locality.anti_affinity, d)
                && has_capacity(req, d)
        })
        .collect();
    prov.note(|| {
        format!(
            "filter: {} of {} devices pass",
            candidates.len(),
            pool.len()
        )
    });

    // ---- Step 3: placement (lines 21–26) ----
    // The fit metric is the residual after placement, `fit_key − (u+m)`;
    // the request term is constant across candidates, so ordering by the
    // device's fit key alone selects the same device — and does it with
    // float comparisons that an ordered index reproduces bit-for-bit.
    // Best fit among devices without affinity labels…
    if prov.is_on() {
        for d in &candidates {
            let rule = if d.aff.is_empty() {
                "best_fit"
            } else {
                "worst_fit"
            };
            prov.candidate_with(rule, d.fit_key(), || d.id.as_str());
        }
    }
    let best = candidates
        .iter()
        .filter(|d| d.aff.is_empty())
        .min_by(|a, b| {
            a.fit_key()
                .total_cmp(&b.fit_key())
                .then_with(|| a.id.cmp(&b.id))
        });
    if let Some(d) = best {
        prov.choose(d.id.as_str(), "best_fit", d.fit_key());
        prov.note_static("best_fit over plain devices (min fit key, id tie-break)");
        return Decision::Assign(d.id.clone());
    }
    // …worst fit among devices with affinity labels…
    let worst = candidates
        .iter()
        .filter(|d| !d.aff.is_empty())
        .max_by(|a, b| {
            a.fit_key()
                .total_cmp(&b.fit_key())
                .then_with(|| b.id.cmp(&a.id))
        });
    if let Some(d) = worst {
        prov.choose(d.id.as_str(), "worst_fit", d.fit_key());
        prov.note_static("worst_fit over affinity devices (max fit key, id tie-break)");
        return Decision::Assign(d.id.clone());
    }
    // …else a brand-new vGPU.
    prov.note_static("no existing device passes; new device");
    Decision::NewDevice(pool.fresh_id())
}

/// Margin subtracted from the fit-range lower bound so the indexed scan
/// provably includes every device [`has_capacity`] (epsilon `1e-9` per
/// axis) would admit: a device passing both axes has fit key at least
/// `need − 2e-9`, and `2e-9 < 1e-8` with room for rounding to spare.
const FIT_RANGE_MARGIN: f64 = 1e-8;

/// Runs Algorithm 1 over the pool's capacity indexes. Same decision as
/// [`schedule`], step by step:
///
/// * the affinity target is the first (id-ordered) device carrying the
///   label — `aff_index`'s leading entry;
/// * the idle fallback is the first unattached device — the `unattached`
///   index's leading entry;
/// * best-fit scans `plain_fit` ascending by (fit key, id) from the
///   request's capacity bound, so the first device passing the filters is
///   the reference's minimum; worst-fit scans `labeled_fit` descending by
///   fit key (ascending id within a key), so the first survivor is the
///   reference's maximum with the same smallest-id tie-break.
pub fn schedule_indexed(req: &SchedRequest, pool: &mut VgpuPool) -> Decision {
    schedule_indexed_prov(req, pool, &mut SchedProv::off())
}

/// [`schedule_indexed`] with a provenance collector. Candidates captured
/// are the devices the range scans actually examined before the first
/// survivor — faithful to this implementation's work, which may differ
/// from the reference path's candidate set even though the chosen device
/// never does.
pub fn schedule_indexed_prov(
    req: &SchedRequest,
    pool: &mut VgpuPool,
    prov: &mut SchedProv,
) -> Decision {
    // ---- Step 1: affinity ----
    if let Some(aff) = &req.locality.affinity {
        if let Some(id) = pool.affinity_target(aff) {
            let d = pool.get(id).expect("indexed device in pool");
            prov.candidate_with("affinity", d.fit_key(), || d.id.as_str());
            prov.note_static("affinity label binds to its existing carrier (see candidates)");
            if !excl_matches(&req.locality.exclusion, &d.excl) {
                prov.reject(ReasonCode::AffinityExcluded);
                return Decision::Reject(RejectReason::ExclusionConflict);
            }
            if anti_aff_conflicts(&req.locality.anti_affinity, d) {
                prov.reject(ReasonCode::AntiAffinityConflict);
                return Decision::Reject(RejectReason::AntiAffinityConflict);
            }
            if !has_capacity(req, d) {
                prov.reject(ReasonCode::AffinityNoCapacity);
                return Decision::Reject(RejectReason::InsufficientCapacity);
            }
            prov.choose(d.id.as_str(), "affinity", d.fit_key());
            return Decision::Assign(d.id.clone());
        }
        if let Some(id) = pool.first_unattached() {
            let id = id.clone();
            prov.choose(id.as_str(), "idle", 2.0);
            prov.note_static("no device carries the affinity label; seed group on idle device");
            return Decision::Assign(id);
        }
        prov.note_static("no device carries the affinity label and none idle; new device");
        return Decision::NewDevice(pool.fresh_id());
    }

    // ---- Steps 2+3 fused: range-scan, filter, first survivor wins ----
    // Idle devices sit at fit key 2.0 exactly (the pool snaps residuals on
    // idle), so clamping the bound to 2.0 keeps them in range even when
    // the request alone could never fit an existing device.
    let min_fit = (req.util + req.mem - FIT_RANGE_MARGIN).clamp(0.0, 2.0);
    let passes = |d: &PoolDevice| {
        d.is_idle()
            || (excl_matches(&req.locality.exclusion, &d.excl)
                && !anti_aff_conflicts(&req.locality.anti_affinity, d)
                && has_capacity(req, d))
    };
    // The scans below are the only per-device work at cluster scale, so
    // the disabled-collector path runs them with no instrumentation at
    // all — not even a counter — and the capturing path stages `(fit
    // key, id)` pairs into a small stack buffer (hot lines, pipelined
    // stores), building the collector's candidate records in a burst
    // after the loop. Writing the 48-byte candidate records inside the
    // pointer-chasing scan instead stalls the store buffer for ~130 ns
    // per captured candidate at the 10k-GPU sweep point, and the winner's
    // capture slot is tracked so the string-searching
    // [`SchedProv::choose`] is skipped.
    if !prov.is_on() {
        for d in pool.plain_fit_range(min_fit) {
            if passes(d) {
                return Decision::Assign(d.id.clone());
            }
        }
        for d in pool.labeled_fit_range_desc(min_fit) {
            if passes(d) {
                return Decision::Assign(d.id.clone());
            }
        }
        return Decision::NewDevice(pool.fresh_id());
    }
    let mut chosen: Option<(GpuId, f64)> = None;
    let mut winner_slot: Option<usize> = None;
    let mut scanned = 0usize;
    let mut seen: [(f64, &str); SchedProv::MAX_CANDIDATES] = Default::default();
    let mut cap = 0usize;
    let room = prov.scan_room();
    for d in pool.plain_fit_range(min_fit) {
        scanned += 1;
        let pushed = cap < room;
        if pushed {
            seen[cap] = (d.fit_key(), d.id.as_str());
            cap += 1;
        }
        if passes(d) {
            chosen = Some((d.id.clone(), d.fit_key()));
            if pushed {
                winner_slot = Some(cap - 1);
            }
            break;
        }
    }
    prov.add_considered(scanned);
    for &(key, id) in &seen[..cap] {
        prov.scan_push("best_fit", key, id);
    }
    if let Some((id, key)) = &chosen {
        match winner_slot {
            Some(i) => prov.choose_at(i, "best_fit", *key),
            None => prov.choose_append(id.as_str(), "best_fit", *key),
        }
        prov.note_static("best_fit: first survivor of ascending plain-fit scan");
    }
    if let Some((id, _)) = chosen {
        return Decision::Assign(id);
    }
    scanned = 0;
    winner_slot = None;
    let mut cap = 0usize;
    let room = prov.scan_room();
    for d in pool.labeled_fit_range_desc(min_fit) {
        scanned += 1;
        let pushed = cap < room;
        if pushed {
            seen[cap] = (d.fit_key(), d.id.as_str());
            cap += 1;
        }
        if passes(d) {
            chosen = Some((d.id.clone(), d.fit_key()));
            if pushed {
                winner_slot = Some(cap - 1);
            }
            break;
        }
    }
    prov.add_considered(scanned);
    for &(key, id) in &seen[..cap] {
        prov.scan_push("worst_fit", key, id);
    }
    if let Some((id, key)) = &chosen {
        match winner_slot {
            Some(i) => prov.choose_at(i, "worst_fit", *key),
            None => prov.choose_append(id.as_str(), "worst_fit", *key),
        }
        prov.note_static("worst_fit: first survivor of descending labeled-fit scan");
    }
    if let Some((id, _)) = chosen {
        return Decision::Assign(id);
    }
    prov.note_static("no indexed device in fit range passes; new device");
    Decision::NewDevice(pool.fresh_id())
}

/// Runs Algorithm 1 with the implementation selected by `mode`. `Auto`
/// resolves per decision against the current pool size, so a pool that
/// grows through the [`SchedMode::AUTO_CROSSOVER`] switches to the
/// indexed path mid-stream — both implementations are decision-identical,
/// so the switch is invisible in the decision trace.
pub fn schedule_with(mode: SchedMode, req: &SchedRequest, pool: &mut VgpuPool) -> Decision {
    schedule_with_prov(mode, req, pool, &mut SchedProv::off())
}

/// [`schedule_with`] with a provenance collector.
pub fn schedule_with_prov(
    mode: SchedMode,
    req: &SchedRequest,
    pool: &mut VgpuPool,
    prov: &mut SchedProv,
) -> Decision {
    match mode.resolve(pool.len()) {
        SchedMode::Reference => schedule_prov(req, pool, prov),
        SchedMode::Indexed | SchedMode::Auto => schedule_indexed_prov(req, pool, prov),
    }
}

/// A device's (free, reachable) capacity fractions for the pool
/// fragmentation score — `largest_alloc == free` on time-sliced devices,
/// the largest placeable profile on partitioned ones.
fn free_view(d: &PoolDevice) -> (f64, f64) {
    match &d.partition {
        Some(t) => (
            f64::from(t.free_slots()) / f64::from(SLOTS_PER_GPU),
            f64::from(t.largest_placeable_slots()) / f64::from(SLOTS_PER_GPU),
        ),
        None => (d.util_free, d.util_free),
    }
}

/// The spatial analogue of Algorithm 1: bind the request to a dedicated
/// MIG-style slice instead of a token lease.
///
/// * **Step 1** — affinity, as in the reference: a partitioned device
///   already carrying the label is binding (reject on conflicts or when
///   no legal start hosts the group member's profile); otherwise prefer
///   an empty partitioned device so the group has maximal room.
/// * **Step 2** — filter: non-releasing partitioned devices passing the
///   exclusion/anti-affinity predicates (empty devices are clean) whose
///   active table can place the profile.
/// * **Step 3** — placement by *fragmentation score*: pick the candidate
///   whose hypothetical placement leaves the pool least fragmented
///   ([`ks_partition::pool_fragmentation`] after the alloc), smallest id
///   on ties. Where best-fit packs residuals, this packs *geometry*:
///   it avoids placements that strand slots no profile can start on.
///
/// When no legal start exists anywhere but some active device holds
/// enough total free slots, the verdict is [`Decision::Reconfigure`] —
/// the capacity exists and only the layout blocks it, so the caller
/// should pay the explicit reconfiguration cost rather than burn a whole
/// new physical GPU.
pub fn schedule_spatial(req: &SchedRequest, pool: &mut VgpuPool) -> Decision {
    schedule_spatial_prov(req, pool, &mut SchedProv::off())
}

/// [`schedule_spatial`] with a provenance collector capturing the
/// fragmentation score of every placeable candidate.
pub fn schedule_spatial_prov(
    req: &SchedRequest,
    pool: &mut VgpuPool,
    prov: &mut SchedProv,
) -> Decision {
    let demand = req.util.max(req.mem);
    let Some(profile) = Profile::smallest_covering(demand) else {
        prov.reject(ReasonCode::DemandOverCapacity);
        prov.note(|| format!("demand {demand:.3} exceeds a whole device; no covering profile"));
        return Decision::Reject(RejectReason::InsufficientCapacity);
    };
    prov.note(|| format!("demand {demand:.3} rounds up to profile {profile:?}"));

    // ---- Step 1: affinity ----
    if let Some(aff) = &req.locality.affinity {
        let target = pool.spatial_devices().find(|d| d.aff.contains(aff));
        if let Some(d) = target {
            prov.candidate_with("affinity", 0.0, || d.id.as_str());
            prov.note(|| format!("affinity '{aff}' binds to {}", d.id));
            if !excl_matches(&req.locality.exclusion, &d.excl) {
                prov.reject(ReasonCode::AffinityExcluded);
                return Decision::Reject(RejectReason::ExclusionConflict);
            }
            if anti_aff_conflicts(&req.locality.anti_affinity, d) {
                prov.reject(ReasonCode::AntiAffinityConflict);
                return Decision::Reject(RejectReason::AntiAffinityConflict);
            }
            let table = d.partition.as_ref().expect("spatial device");
            if !table.can_place(profile) {
                // Enough raw slots but no legal start is geometry
                // stranding; fewer slots than the profile is capacity.
                prov.reject(if table.free_slots() >= profile.slots() {
                    ReasonCode::SliceGeometryStranded
                } else {
                    ReasonCode::AffinityNoCapacity
                });
                return Decision::Reject(RejectReason::InsufficientCapacity);
            }
            prov.choose(d.id.as_str(), "affinity", 0.0);
            return Decision::Assign(d.id.clone());
        }
        if let Some(d) = pool.spatial_devices().find(|d| {
            d.is_idle()
                && d.partition
                    .as_ref()
                    .expect("spatial device")
                    .can_place(profile)
        }) {
            prov.candidate_with("idle", 0.0, || d.id.as_str());
            prov.choose(d.id.as_str(), "idle", 0.0);
            prov.note(|| format!("no device carries affinity '{aff}'; seed group on idle device"));
            return Decision::Assign(d.id.clone());
        }
        prov.note(|| format!("no device carries affinity '{aff}' and none idle; new device"));
        return Decision::NewDevice(pool.fresh_id());
    }

    // ---- Step 2: filter ----
    let passes = |d: &PoolDevice| {
        d.is_idle()
            || (excl_matches(&req.locality.exclusion, &d.excl)
                && !anti_aff_conflicts(&req.locality.anti_affinity, d))
    };

    // ---- Step 3: fragmentation-aware placement ----
    // Pool-wide (free, reachable) totals over every schedulable device of
    // either substrate; each candidate's score is an O(1) delta on them.
    let mut free_total = 0.0;
    let mut reach_total = 0.0;
    for d in pool.devices().filter(|d| !d.releasing) {
        let (f, r) = free_view(d);
        free_total += f;
        reach_total += r;
    }
    let frac = profile.frac();
    let mut best: Option<(f64, GpuId)> = None;
    for d in pool.spatial_devices() {
        if !passes(d) {
            continue;
        }
        let table = d.partition.as_ref().expect("spatial device");
        if !table.can_place(profile) {
            continue;
        }
        let (_, reach_before) = free_view(d);
        let mut after = table.clone();
        after.alloc(profile).expect("can_place checked");
        let reach_after = f64::from(after.largest_placeable_slots()) / f64::from(SLOTS_PER_GPU);
        let free_after = free_total - frac;
        let score = if free_after <= 1e-9 {
            0.0
        } else {
            (1.0 - (reach_total - reach_before + reach_after) / free_after).clamp(0.0, 1.0)
        };
        prov.candidate_with("frag_score", score, || d.id.as_str());
        let better = match &best {
            None => true,
            Some((bs, bid)) => match score.total_cmp(bs) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => d.id < *bid,
                std::cmp::Ordering::Greater => false,
            },
        };
        if better {
            best = Some((score, d.id.clone()));
        }
    }
    if let Some((score, id)) = best {
        prov.choose(id.as_str(), "frag_score", score);
        prov.note(|| {
            "frag_score: placement leaving the pool least fragmented (id tie-break)".to_string()
        });
        return Decision::Assign(id);
    }

    // No legal start anywhere. If an active device holds enough total
    // free slots the capacity is merely stranded by geometry: propose a
    // reconfiguration of the roomiest such device (smallest id on ties).
    let mut target: Option<(u8, GpuId)> = None;
    for d in pool.spatial_devices() {
        if !passes(d) {
            continue;
        }
        let table = d.partition.as_ref().expect("spatial device");
        if table.state() != TableState::Active || table.free_slots() < profile.slots() {
            continue;
        }
        prov.candidate_with("reconfigure", f64::from(table.free_slots()), || {
            d.id.as_str().to_string()
        });
        let better = match &target {
            None => true,
            Some((fs, tid)) => {
                table.free_slots() > *fs || (table.free_slots() == *fs && d.id < *tid)
            }
        };
        if better {
            target = Some((table.free_slots(), d.id.clone()));
        }
    }
    if let Some((fs, id)) = target {
        prov.choose(id.as_str(), "reconfigure", f64::from(fs));
        prov.reject(ReasonCode::SliceGeometryStranded);
        prov.note(|| {
            format!(
                "no legal {}-slot start anywhere, but {fs} free slots are \
                 stranded by geometry; reconfigure the roomiest device",
                profile.slots()
            )
        });
        return Decision::Reconfigure(id);
    }
    prov.note_static("no legal start and no stranded capacity; new device");
    Decision::NewDevice(pool.fresh_id())
}

/// Runs the scheduler for a request on a given [`Substrate`]: requests
/// that want a spatial slice go through [`schedule_spatial`]; everything
/// else takes the token-lease path [`schedule_with`] *unchanged* — a
/// `TimeSlice`-only workload is decision-identical to the pre-substrate
/// scheduler (enforced by `tests/substrate_differential.rs`).
pub fn schedule_substrate(
    mode: SchedMode,
    substrate: Substrate,
    req: &SchedRequest,
    pool: &mut VgpuPool,
) -> Decision {
    schedule_substrate_prov(mode, substrate, req, pool, &mut SchedProv::off())
}

/// [`schedule_substrate`] with a provenance collector.
pub fn schedule_substrate_prov(
    mode: SchedMode,
    substrate: Substrate,
    req: &SchedRequest,
    pool: &mut VgpuPool,
    prov: &mut SchedProv,
) -> Decision {
    if substrate.wants_spatial(req.util, req.mem) {
        prov.note_static("substrate routes to the spatial (slice) path");
        schedule_spatial_prov(req, pool, prov)
    } else {
        schedule_with_prov(mode, req, pool, prov)
    }
}

/// Maps a [`Decision`] and its collector to a provenance [`Outcome`],
/// preferring the collector's precise [`ReasonCode`] over the coarse
/// [`RejectReason`] when both exist.
pub fn outcome_of(decision: &Decision, prov: &SchedProv) -> Outcome {
    match decision {
        Decision::Assign(id) => Outcome::Placed {
            target: id.as_str().into(),
        },
        Decision::NewDevice(id) => Outcome::NewDevice {
            target: id.as_str().into(),
        },
        Decision::Reconfigure(id) => Outcome::Reconfigure {
            target: id.as_str().into(),
        },
        Decision::Reject(r) => Outcome::Rejected {
            reason: prov.reason().unwrap_or(coarse_reason(r)),
        },
    }
}

/// The coarse fallback mapping for rejections recorded without a precise
/// collector-noted code.
pub fn coarse_reason(r: &RejectReason) -> ReasonCode {
    match r {
        RejectReason::ExclusionConflict => ReasonCode::AffinityExcluded,
        RejectReason::AntiAffinityConflict => ReasonCode::AntiAffinityConflict,
        RejectReason::InsufficientCapacity => ReasonCode::NoCapacity,
    }
}

/// One pending sharePod in a scheduling batch.
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// The sharePod's uid (used to attach its demand to the chosen vGPU).
    pub uid: Uid,
    /// Its scheduling requirements.
    pub req: SchedRequest,
}

/// Drains a pending queue in one pass with shared pool state: each entry
/// is scheduled in order and its decision *applied* to the pool before
/// the next entry runs — `Assign` attaches the demand, `NewDevice`
/// inserts the creating vGPU and attaches, `Reject` leaves the pool
/// untouched — mirroring how `KubeShareSystem` binds each decision before
/// the controller sees the next pending sharePod. Entries must already be
/// in deterministic (uid) order; both modes then produce identical
/// decision vectors.
pub fn schedule_batch(
    mode: SchedMode,
    entries: &[BatchEntry],
    pool: &mut VgpuPool,
) -> Vec<(Uid, Decision)> {
    entries
        .iter()
        .map(|e| {
            let decision = schedule_with(mode, &e.req, pool);
            let target = match &decision {
                Decision::Assign(id) => Some(id.clone()),
                Decision::NewDevice(id) => {
                    pool.insert_creating(id.clone());
                    Some(id.clone())
                }
                // The time-slice path never proposes a reconfiguration.
                Decision::Reconfigure(_) | Decision::Reject(_) => None,
            };
            if let Some(id) = target {
                pool.attach(
                    &id,
                    e.uid,
                    e.req.util,
                    e.req.mem,
                    e.req.locality.affinity.as_deref(),
                    e.req.locality.anti_affinity.as_deref(),
                    e.req.locality.exclusion.as_deref(),
                );
            }
            (e.uid, decision)
        })
        .collect()
}

/// [`schedule_batch`] with every decision's provenance appended to a
/// [`FlightRecorder`]. With a disabled recorder this is decision-identical
/// to [`schedule_batch`] at the cost of one branch per entry — the
/// recorder-overhead guard in `ks-bench sched_scale` times exactly this
/// pair.
pub fn schedule_batch_recorded(
    mode: SchedMode,
    entries: &[BatchEntry],
    pool: &mut VgpuPool,
    at: SimTime,
    recorder: &FlightRecorder,
) -> Vec<(Uid, Decision)> {
    // One scratch collector and one recorder session for the whole
    // batch: `record_scratch` clones only the visible candidates/chain
    // into the ring slot and resets the collector, and the session holds
    // the recorder lock across the drain, so the per-decision cost is
    // flat regardless of record size or ring depth.
    let mut prov = SchedProv::for_recorder(recorder);
    let mut session = recorder.session();
    entries
        .iter()
        .map(|e| {
            let decision = schedule_with_prov(mode, &e.req, pool, &mut prov);
            let target = match &decision {
                Decision::Assign(id) => Some(id.clone()),
                Decision::NewDevice(id) => {
                    pool.insert_creating(id.clone());
                    Some(id.clone())
                }
                Decision::Reconfigure(_) | Decision::Reject(_) => None,
            };
            if let Some(id) = target {
                pool.attach(
                    &id,
                    e.uid,
                    e.req.util,
                    e.req.mem,
                    e.req.locality.affinity.as_deref(),
                    e.req.locality.anti_affinity.as_deref(),
                    e.req.locality.exclusion.as_deref(),
                );
            }
            if recorder.is_enabled() {
                let outcome = outcome_of(&decision, &prov);
                session.record_scratch(at, e.uid.0, 0, DecisionKind::Schedule, outcome, &mut prov);
            }
            (e.uid, decision)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_cluster::api::Uid;

    fn req(util: f64, mem: f64) -> SchedRequest {
        SchedRequest {
            util,
            mem,
            locality: Locality::none(),
        }
    }

    fn req_loc(util: f64, mem: f64, loc: Locality) -> SchedRequest {
        SchedRequest {
            util,
            mem,
            locality: loc,
        }
    }

    /// Pool with `n` ready devices; returns their ids.
    fn pool(n: usize) -> (VgpuPool, Vec<GpuId>) {
        let mut p = VgpuPool::new();
        let ids = (0..n)
            .map(|i| {
                let id = p.fresh_id();
                p.insert_creating(id.clone());
                p.mark_ready(&id, format!("node-{}", i / 4), format!("GPU-{i}"));
                id
            })
            .collect();
        (p, ids)
    }

    #[test]
    fn empty_pool_creates_new_device() {
        let mut p = VgpuPool::new();
        match schedule(&req(0.5, 0.5), &mut p) {
            Decision::NewDevice(_) => {}
            d => panic!("expected NewDevice, got {d:?}"),
        }
    }

    #[test]
    fn best_fit_packs_tightest_device() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[0], Uid(1), 0.6, 0.6, None, None, None); // free 0.4
        p.attach(&ids[1], Uid(2), 0.2, 0.2, None, None, None); // free 0.8
                                                               // 0.3 fits both; best fit picks the tighter device (ids[0]).
        assert_eq!(
            schedule(&req(0.3, 0.3), &mut p),
            Decision::Assign(ids[0].clone())
        );
    }

    #[test]
    fn no_fit_on_busy_devices_uses_idle() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[0], Uid(1), 0.9, 0.9, None, None, None);
        // 0.5 doesn't fit device 0, but device 1 is idle.
        assert_eq!(
            schedule(&req(0.5, 0.5), &mut p),
            Decision::Assign(ids[1].clone())
        );
    }

    #[test]
    fn full_pool_spawns_new_device() {
        let (mut p, ids) = pool(1);
        p.attach(&ids[0], Uid(1), 0.9, 0.9, None, None, None);
        match schedule(&req(0.5, 0.5), &mut p) {
            Decision::NewDevice(id) => assert_ne!(id, ids[0]),
            d => panic!("expected NewDevice, got {d:?}"),
        }
    }

    #[test]
    fn affinity_joins_existing_group() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[1], Uid(1), 0.3, 0.3, Some("grp"), None, None);
        let r = req_loc(0.3, 0.3, Locality::none().with_affinity("grp"));
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[1].clone()));
    }

    #[test]
    fn affinity_without_group_prefers_idle_device() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[0], Uid(1), 0.1, 0.1, None, None, None);
        let r = req_loc(0.3, 0.3, Locality::none().with_affinity("grp"));
        // ids[0] has load; ids[1] is idle → pick ids[1] to leave room for
        // future "grp" members.
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[1].clone()));
    }

    #[test]
    fn affinity_with_no_idle_creates_new() {
        let (mut p, ids) = pool(1);
        p.attach(&ids[0], Uid(1), 0.1, 0.1, None, None, None);
        let r = req_loc(0.3, 0.3, Locality::none().with_affinity("grp"));
        assert!(matches!(schedule(&r, &mut p), Decision::NewDevice(_)));
    }

    #[test]
    fn affinity_target_exclusion_conflict_rejects() {
        let (mut p, ids) = pool(1);
        p.attach(
            &ids[0],
            Uid(1),
            0.3,
            0.3,
            Some("grp"),
            None,
            Some("tenant-a"),
        );
        let r = req_loc(
            0.3,
            0.3,
            Locality::none()
                .with_affinity("grp")
                .with_exclusion("tenant-b"),
        );
        assert_eq!(
            schedule(&r, &mut p),
            Decision::Reject(RejectReason::ExclusionConflict)
        );
    }

    #[test]
    fn affinity_target_anti_affinity_conflict_rejects() {
        let (mut p, ids) = pool(1);
        p.attach(&ids[0], Uid(1), 0.3, 0.3, Some("grp"), Some("noisy"), None);
        let r = req_loc(
            0.3,
            0.3,
            Locality::none()
                .with_affinity("grp")
                .with_anti_affinity("noisy"),
        );
        assert_eq!(
            schedule(&r, &mut p),
            Decision::Reject(RejectReason::AntiAffinityConflict)
        );
    }

    #[test]
    fn affinity_target_capacity_conflict_rejects() {
        let (mut p, ids) = pool(1);
        p.attach(&ids[0], Uid(1), 0.8, 0.8, Some("grp"), None, None);
        let r = req_loc(0.5, 0.1, Locality::none().with_affinity("grp"));
        assert_eq!(
            schedule(&r, &mut p),
            Decision::Reject(RejectReason::InsufficientCapacity)
        );
    }

    #[test]
    fn anti_affinity_spreads_across_devices() {
        let (mut p, ids) = pool(3);
        // Three anti-affine containers: each must land on a different GPU.
        let mut assigned = Vec::new();
        for i in 0..3 {
            let r = req_loc(0.3, 0.3, Locality::none().with_anti_affinity("noisy"));
            match schedule(&r, &mut p) {
                Decision::Assign(id) => {
                    p.attach(&id, Uid(10 + i), 0.3, 0.3, None, Some("noisy"), None);
                    assigned.push(id);
                }
                d => panic!("unexpected {d:?}"),
            }
        }
        assigned.sort();
        assigned.dedup();
        assert_eq!(assigned.len(), 3, "anti-affinity must spread");
        let _ = ids;
    }

    #[test]
    fn anti_affinity_exhausted_creates_new_device() {
        let (mut p, ids) = pool(1);
        p.attach(&ids[0], Uid(1), 0.3, 0.3, None, Some("noisy"), None);
        let r = req_loc(0.3, 0.3, Locality::none().with_anti_affinity("noisy"));
        assert!(matches!(schedule(&r, &mut p), Decision::NewDevice(_)));
    }

    #[test]
    fn exclusion_separates_tenants() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, Some("tenant-a"));
        let r = req_loc(0.2, 0.2, Locality::none().with_exclusion("tenant-b"));
        // Device 0 belongs to tenant-a; tenant-b must go elsewhere.
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[1].clone()));
    }

    #[test]
    fn same_exclusion_label_shares() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, Some("tenant-a"));
        let r = req_loc(0.2, 0.2, Locality::none().with_exclusion("tenant-a"));
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[0].clone()));
    }

    #[test]
    fn unlabeled_request_avoids_exclusive_device() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, None, None, Some("tenant-a"));
        let r = req(0.2, 0.2);
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[1].clone()));
    }

    #[test]
    fn worst_fit_on_affinity_devices_keeps_room() {
        let (mut p, ids) = pool(2);
        // Both devices carry affinity groups with different loads; a
        // label-free request that fits neither clean rule lands on the one
        // with MORE residual (worst fit), keeping group room balanced.
        p.attach(&ids[0], Uid(1), 0.6, 0.6, Some("g1"), None, None); // free 0.4
        p.attach(&ids[1], Uid(2), 0.2, 0.2, Some("g2"), None, None); // free 0.8
        let r = req(0.3, 0.3);
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[1].clone()));
    }

    #[test]
    fn best_fit_preferred_over_affinity_devices() {
        let (mut p, ids) = pool(2);
        p.attach(&ids[0], Uid(1), 0.2, 0.2, Some("g1"), None, None); // aff device
        p.attach(&ids[1], Uid(2), 0.2, 0.2, None, None, None); // plain device
        let r = req(0.3, 0.3);
        // Plain device wins even though the affinity device has equal room.
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[1].clone()));
    }

    #[test]
    fn idle_device_passes_filters_despite_stale_look() {
        let (mut p, ids) = pool(1);
        p.attach(&ids[0], Uid(1), 0.3, 0.3, None, None, Some("tenant-a"));
        p.detach(&ids[0], Uid(1)); // idle again, labels cleared
        let r = req_loc(0.5, 0.5, Locality::none().with_exclusion("tenant-b"));
        assert_eq!(schedule(&r, &mut p), Decision::Assign(ids[0].clone()));
    }

    // ---- locality edge cases, run against BOTH implementations ----

    /// Runs a scenario under Reference and Indexed and asserts the
    /// decisions agree before handing one back for scenario asserts.
    fn both_modes(build: impl Fn() -> VgpuPool, req: &SchedRequest) -> Decision {
        let mut ref_pool = build();
        let mut idx_pool = build();
        let d_ref = schedule(req, &mut ref_pool);
        let d_idx = schedule_indexed(req, &mut idx_pool);
        assert_eq!(d_ref, d_idx, "modes diverged");
        d_ref
    }

    #[test]
    fn empty_pool_both_modes_create_new_device() {
        let d = both_modes(VgpuPool::new, &req(0.5, 0.5));
        assert!(matches!(d, Decision::NewDevice(_)));
        let d = both_modes(
            VgpuPool::new,
            &req_loc(0.5, 0.5, Locality::none().with_affinity("g")),
        );
        assert!(matches!(d, Decision::NewDevice(_)));
    }

    #[test]
    fn all_devices_excluded_spawns_new_device() {
        let build = || {
            let (mut p, ids) = pool(3);
            for (i, id) in ids.iter().enumerate() {
                p.attach(
                    id,
                    Uid(i as u64 + 1),
                    0.1,
                    0.1,
                    None,
                    None,
                    Some("tenant-a"),
                );
            }
            p
        };
        let r = req_loc(0.1, 0.1, Locality::none().with_exclusion("tenant-b"));
        assert!(matches!(both_modes(build, &r), Decision::NewDevice(_)));
        // An unlabeled request is excluded from tenant devices too.
        assert!(matches!(
            both_modes(build, &req(0.1, 0.1)),
            Decision::NewDevice(_)
        ));
    }

    #[test]
    fn affinity_group_cannot_span_devices_or_nodes() {
        // pool(8) puts devices on node-0 and node-1 (4 per node). Seed the
        // group on a node-1 device; every subsequent member must land on
        // that same device even with idle devices on node-0, until the
        // device is full — then the member is rejected, never respread.
        let build = || {
            let (mut p, ids) = pool(8);
            p.attach(&ids[5], Uid(1), 0.4, 0.4, Some("grp"), None, None);
            p
        };
        let r = req_loc(0.4, 0.4, Locality::none().with_affinity("grp"));
        let d = both_modes(build, &r);
        let (p, ids) = pool(8);
        assert_eq!(d, Decision::Assign(ids[5].clone()));
        assert_eq!(p.get(&ids[5]).unwrap().node.as_deref(), Some("node-1"));
        // A member too large for the group's remaining room is rejected —
        // the group never silently spans a second device.
        let r_big = req_loc(0.7, 0.7, Locality::none().with_affinity("grp"));
        assert_eq!(
            both_modes(build, &r_big),
            Decision::Reject(RejectReason::InsufficientCapacity)
        );
    }

    #[test]
    fn zero_util_request_with_memory_demand() {
        // gpu_request == 0.0 but gpu_mem > 0: placement is driven purely
        // by the memory axis. A device with no memory headroom must be
        // passed over even though util fits trivially.
        let build = || {
            let (mut p, ids) = pool(2);
            p.attach(&ids[0], Uid(1), 0.1, 0.95, None, None, None); // mem_free 0.05
            p.attach(&ids[1], Uid(2), 0.1, 0.2, None, None, None); // mem_free 0.8
            p
        };
        let (_, ids) = pool(2);
        let d = both_modes(build, &req(0.0, 0.5));
        assert_eq!(d, Decision::Assign(ids[1].clone()));
        // And a zero/zero request best-fits the tightest device.
        let d = both_modes(build, &req(0.0, 0.0));
        assert_eq!(d, Decision::Assign(ids[0].clone()));
    }

    // ---- spatial substrate ----

    /// Pool with `n` ready *partitioned* devices.
    fn spatial_pool(n: usize) -> (VgpuPool, Vec<GpuId>) {
        let mut p = VgpuPool::new();
        let ids = (0..n)
            .map(|i| {
                let id = p.fresh_id();
                p.insert_creating_spatial(id.clone());
                p.mark_ready(&id, format!("node-{}", i / 4), format!("GPU-{i}"));
                id
            })
            .collect();
        (p, ids)
    }

    fn slice(p: &mut VgpuPool, id: &GpuId, uid: u64, profile: Profile) {
        p.attach_slice(
            id,
            Uid(uid),
            profile,
            profile.frac(),
            profile.frac(),
            None,
            None,
            None,
        )
        .unwrap();
    }

    #[test]
    fn time_slice_scheduler_never_sees_spatial_devices() {
        let (mut p, _sids) = spatial_pool(2);
        // Both paths must create a new device rather than touch a
        // partitioned one, in every mode.
        for decide in [schedule, schedule_indexed] {
            match decide(&req(0.5, 0.5), &mut p) {
                Decision::NewDevice(_) => {}
                d => panic!("expected NewDevice, got {d:?}"),
            }
            let r = req_loc(0.5, 0.5, Locality::none().with_affinity("g"));
            match decide(&r, &mut p) {
                Decision::NewDevice(_) => {}
                d => panic!("expected NewDevice, got {d:?}"),
            }
        }
    }

    #[test]
    fn spatial_placement_minimizes_pool_fragmentation() {
        let (mut p, ids) = spatial_pool(2);
        // Device 0 already hosts a P4 (slots 0-3): a P3 completes it
        // exactly; putting the P3 on the empty device 1 would strand its
        // P4 start. The fragmentation score must pack device 0.
        slice(&mut p, &ids[0], 1, Profile::P4);
        assert_eq!(
            schedule_spatial(&req(3.0 / 7.0, 0.1), &mut p),
            Decision::Assign(ids[0].clone())
        );
    }

    #[test]
    fn spatial_demand_rounds_up_to_profile() {
        let (mut p, ids) = spatial_pool(1);
        // 0.3 → P3. After binding, only 4 slots remain.
        assert_eq!(
            schedule_spatial(&req(0.3, 0.1), &mut p),
            Decision::Assign(ids[0].clone())
        );
        slice(&mut p, &ids[0], 1, Profile::P3);
        let d = p.get(&ids[0]).unwrap();
        assert_eq!(d.partition.as_ref().unwrap().free_slots(), 4);
        // Demand beyond a whole device is unsatisfiable.
        assert_eq!(
            schedule_spatial(&req(1.2, 0.1), &mut p),
            Decision::Reject(RejectReason::InsufficientCapacity)
        );
    }

    #[test]
    fn stranded_capacity_triggers_reconfigure_verdict() {
        let (mut p, ids) = spatial_pool(1);
        // Fill the grid with seven 1-slot tenants, then free all but the
        // ones on slots 0 and 4 — the P3/P4 anchor slots. Five slots are
        // free yet no 3-slot (or larger) profile has a legal start.
        for uid in 1..=7u64 {
            slice(&mut p, &ids[0], uid, Profile::P1);
        }
        let keep: Vec<Uid> = [0u8, 4]
            .iter()
            .map(|&s| p.slice_tenant(&ids[0], s).unwrap())
            .collect();
        for uid in 1..=7u64 {
            if !keep.contains(&Uid(uid)) {
                p.detach(&ids[0], Uid(uid));
            }
        }
        let table = p.get(&ids[0]).unwrap().partition.as_ref().unwrap();
        assert_eq!(table.free_slots(), 5);
        assert!(!table.can_place(Profile::P3));
        // A 3-slot demand: capacity exists, only geometry blocks it.
        assert_eq!(
            schedule_spatial(&req(0.4, 0.1), &mut p),
            Decision::Reconfigure(ids[0].clone())
        );
        // A 1-slot demand still fits in place — no reconfig churn.
        assert!(matches!(
            schedule_spatial(&req(0.1, 0.1), &mut p),
            Decision::Assign(_)
        ));
    }

    #[test]
    fn spatial_affinity_binds_to_group_device() {
        let (mut p, ids) = spatial_pool(2);
        p.attach_slice(
            &ids[1],
            Uid(1),
            Profile::P2,
            0.2,
            0.2,
            Some("grp"),
            None,
            None,
        )
        .unwrap();
        let r = req_loc(0.2, 0.2, Locality::none().with_affinity("grp"));
        assert_eq!(
            schedule_spatial(&r, &mut p),
            Decision::Assign(ids[1].clone())
        );
        // A group member too large for the remaining grid is rejected.
        let r_big = req_loc(1.0, 1.0, Locality::none().with_affinity("grp"));
        assert_eq!(
            schedule_spatial(&r_big, &mut p),
            Decision::Reject(RejectReason::InsufficientCapacity)
        );
    }

    #[test]
    fn spatial_exclusion_separates_tenants() {
        let (mut p, ids) = spatial_pool(2);
        p.attach_slice(
            &ids[0],
            Uid(1),
            Profile::P2,
            0.2,
            0.2,
            None,
            None,
            Some("tenant-a"),
        )
        .unwrap();
        let r = req_loc(0.2, 0.2, Locality::none().with_exclusion("tenant-b"));
        assert_eq!(
            schedule_spatial(&r, &mut p),
            Decision::Assign(ids[1].clone())
        );
    }

    #[test]
    fn substrate_dispatch_routes_by_waste() {
        let (mut p, ids) = spatial_pool(1);
        // TimeSlice ignores the partitioned device entirely.
        assert!(matches!(
            schedule_substrate(
                SchedMode::Reference,
                Substrate::TimeSlice,
                &req(0.5, 0.5),
                &mut p
            ),
            Decision::NewDevice(_)
        ));
        // Spatial binds a slice.
        assert_eq!(
            schedule_substrate(
                SchedMode::Reference,
                Substrate::Spatial,
                &req(0.5, 0.5),
                &mut p
            ),
            Decision::Assign(ids[0].clone())
        );
        // Hybrid: 0.5 → P4 (waste 1/14) goes spatial; 0.6 → P7 (waste
        // 0.4) falls back to the token path.
        assert_eq!(
            schedule_substrate(
                SchedMode::Reference,
                Substrate::Hybrid,
                &req(0.5, 0.1),
                &mut p
            ),
            Decision::Assign(ids[0].clone())
        );
        assert!(matches!(
            schedule_substrate(
                SchedMode::Reference,
                Substrate::Hybrid,
                &req(0.6, 0.1),
                &mut p
            ),
            Decision::NewDevice(_)
        ));
    }

    #[test]
    fn batch_applies_decisions_between_entries() {
        // Two anti-affine entries in one batch must not share the device:
        // the first entry's attach is visible to the second's decision.
        let entries: Vec<BatchEntry> = (0..2)
            .map(|i| BatchEntry {
                uid: Uid(i + 1),
                req: req_loc(0.2, 0.2, Locality::none().with_anti_affinity("noisy")),
            })
            .collect();
        for mode in [SchedMode::Reference, SchedMode::Indexed] {
            let (mut p, ids) = pool(2);
            let out = schedule_batch(mode, &entries, &mut p);
            assert_eq!(out[0].1, Decision::Assign(ids[0].clone()));
            assert_eq!(out[1].1, Decision::Assign(ids[1].clone()));
            assert_eq!(p.get(&ids[0]).unwrap().attached.len(), 1);
            assert_eq!(p.get(&ids[1]).unwrap().attached.len(), 1);
            p.verify_indexes().unwrap();
        }
    }
}
