//! `kubeshare` — a reproduction of *KubeShare: A Framework to Manage GPUs
//! as First-Class and Shared Resources in Container Cloud* (HPDC '20).
//!
//! KubeShare extends Kubernetes so GPUs become **first-class, fractionally
//! shareable** resources:
//!
//! * [`sharepod`] — the `SharePod` custom resource: a PodSpec plus
//!   fractional GPU demands (`gpu_request`/`gpu_limit`/`gpu_mem`), an
//!   explicit [`gpuid::GpuId`], and [`locality::Locality`] constraints
//!   (affinity / anti-affinity / exclusion);
//! * [`algorithm`] — KubeShare-Sched's locality & resource aware
//!   scheduling (the paper's Algorithm 1: affinity step, constraint
//!   filter, best-fit/worst-fit placement);
//! * [`pool`] — the vGPU pool with its creation → active → idle →
//!   deletion lifecycle;
//! * [`system`] — the composed control plane: KubeShare-Sched +
//!   KubeShare-DevMgr as custom controllers over an unmodified
//!   [`ks_cluster`] Kubernetes, with anchor pods acquiring physical GPUs
//!   and explicit GPUID→UUID binding.
//!
//! The kernel-level isolation that containers then experience is the vGPU
//! device library in [`ks_vgpu`]; the experiment harnesses in `ks-bench`
//! wire [`system::KsNotice::SharePodRunning`] notices to
//! `ks_vgpu::SharedGpu` instances per physical GPU.

#![warn(missing_docs)]

pub mod algorithm;
pub mod gpuid;
pub mod locality;
pub mod pool;
pub mod replicaset;
pub mod sharepod;
pub mod system;

pub use algorithm::{
    schedule, schedule_batch, schedule_indexed, schedule_spatial, schedule_substrate,
    schedule_with, BatchEntry, Decision, RejectReason, SchedMode, SchedRequest,
};
pub use gpuid::GpuId;
pub use ks_partition::{Profile, Substrate};
pub use locality::Locality;
pub use pool::{PoolDevice, VgpuPhase, VgpuPool};
pub use replicaset::{ReplicaSetController, ReplicaSetId, ReplicaSetSpec};
pub use sharepod::{SharePod, SharePodPhase, SharePodSpec, SharePodStatus};
pub use system::{
    KsConfig, KsEmit, KsEvent, KsNotice, KubeShareSystem, PoolPolicy, RestartPolicy, SystemError,
};
