//! GPUID: the first-class virtual identity of a shared GPU.
//!
//! KubeShare's central idea (paper §4.1–§4.2): every vGPU carries a unique
//! identifier that users and the scheduler can name explicitly. The GPUID
//! is *virtual* — DevMgr maintains the mapping to the physical driver UUID
//! (paper §4.4) — so a vGPU can be requested before a physical GPU is even
//! acquired from Kubernetes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A vGPU identifier, unique within the vGPU pool.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId(String);

impl GpuId {
    /// Wraps a user-specified id (users may name a vGPU explicitly to
    /// control binding, paper §4.2).
    pub fn named(id: impl Into<String>) -> Self {
        GpuId(id.into())
    }

    /// Generates a fresh hashed id, as the paper's `new_dev()` does
    /// ("generates a device variable with a new hashed id").
    pub fn generate(counter: u64) -> Self {
        // FNV-1a of the counter; the point is opacity, not security.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in counter.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        GpuId(format!("vgpu-{h:016x}"))
    }

    /// String form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_unique_and_opaque() {
        let a = GpuId::generate(1);
        let b = GpuId::generate(2);
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("vgpu-"));
        assert_eq!(GpuId::generate(1), a, "deterministic");
    }

    #[test]
    fn named_ids_round_trip() {
        let g = GpuId::named("my-shared-gpu");
        assert_eq!(g.to_string(), "my-shared-gpu");
    }
}
