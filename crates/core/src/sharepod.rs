//! The `SharePod` custom resource (paper §4.1, Script 1).
//!
//! A SharePod is "the pod with ability to attach shared custom devices":
//! the original PodSpec plus fractional GPU requirements, the GPUID of the
//! vGPU to bind (optional — KubeShare-Sched fills it in), the node of that
//! GPU, and locality constraints.

use ks_cluster::api::pod::PodSpec;
use ks_cluster::api::{ObjectMeta, Uid};
use ks_partition::Substrate;
use ks_vgpu::ShareSpec;
use serde::{Deserialize, Serialize};

use crate::gpuid::GpuId;
use crate::locality::Locality;

/// Desired state of a SharePod, as submitted through kube-apiserver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharePodSpec {
    /// The wrapped pod spec (image, CPU/mem requests, env).
    pub pod: PodSpec,
    /// Fractional GPU demand: `gpu_request`, `gpu_limit`, `gpu_mem`.
    pub share: ShareSpec,
    /// Explicit vGPU binding; `None` lets KubeShare-Sched decide.
    pub gpuid: Option<GpuId>,
    /// Node of the GPU; filled together with `gpuid`.
    pub node_name: Option<String>,
    /// Locality constraints.
    pub locality: Locality,
    /// Owning tenant, stamped by the multi-tenant gateway (`None` for
    /// sharePods submitted directly to the control plane).
    pub tenant: Option<String>,
    /// Priority class: higher values win contention. The batch scheduler
    /// drains pending sharePods highest-priority first, and the gateway's
    /// preemption policy only ever evicts strictly lower classes.
    pub priority: u8,
    /// Sharing substrate for this workload: time-sliced token leases
    /// (default), a dedicated spatial slice, or hybrid (scheduler picks by
    /// profile-rounding waste). Absent in serialized specs predating the
    /// partition subsystem — `Substrate` deserializes `null` as
    /// `TimeSlice`, so old specs keep their exact behaviour.
    pub substrate: Substrate,
}

impl SharePodSpec {
    /// A spec with no explicit binding and no constraints.
    pub fn new(pod: PodSpec, share: ShareSpec) -> Self {
        SharePodSpec {
            pod,
            share,
            gpuid: None,
            node_name: None,
            locality: Locality::none(),
            tenant: None,
            priority: 0,
            substrate: Substrate::TimeSlice,
        }
    }

    /// Adds locality constraints (builder style).
    pub fn with_locality(mut self, locality: Locality) -> Self {
        self.locality = locality;
        self
    }

    /// Pins to a specific vGPU (users may do this explicitly, §4.2).
    pub fn with_gpuid(mut self, gpuid: GpuId) -> Self {
        self.gpuid = Some(gpuid);
        self
    }

    /// Stamps the owning tenant (builder style).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the priority class (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Selects the sharing substrate (builder style).
    pub fn with_substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }
}

/// Lifecycle phase of a SharePod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharePodPhase {
    /// Submitted; KubeShare-Sched has not yet assigned a vGPU.
    Pending,
    /// vGPU assigned; waiting for the vGPU (anchor pod) to be ready.
    AwaitingVgpu,
    /// Backing pod is being created/started by Kubernetes.
    Starting,
    /// Container is running with the device library installed.
    Running,
    /// Rejected by the scheduling algorithm (constraint conflict).
    Rejected,
    /// Deleted; resources released.
    Terminated,
}

/// Observed state of a SharePod.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharePodStatus {
    /// Current phase.
    pub phase: SharePodPhase,
    /// The vGPU chosen by KubeShare-Sched.
    pub bound_gpuid: Option<GpuId>,
    /// Uid of the backing Kubernetes pod.
    pub pod_uid: Option<Uid>,
    /// Failure/rejection reason.
    pub message: Option<String>,
}

impl SharePodStatus {
    /// Freshly submitted.
    pub fn pending() -> Self {
        SharePodStatus {
            phase: SharePodPhase::Pending,
            bound_gpuid: None,
            pod_uid: None,
            message: None,
        }
    }
}

/// The SharePod object: the custom resource KubeShare adds to the API
/// server (operator pattern, paper §4.6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharePod {
    /// Object metadata.
    pub meta: ObjectMeta,
    /// Desired state.
    pub spec: SharePodSpec,
    /// Observed state.
    pub status: SharePodStatus,
}

impl SharePod {
    /// Creates a pending SharePod.
    pub fn new(meta: ObjectMeta, spec: SharePodSpec) -> Self {
        SharePod {
            meta,
            spec,
            status: SharePodStatus::pending(),
        }
    }
}

impl ks_cluster::store::Namespaced for SharePod {
    fn namespace(&self) -> &str {
        &self.meta.namespace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_cluster::api::ResourceList;
    use ks_sim_core::time::SimTime;

    fn spec() -> SharePodSpec {
        SharePodSpec::new(
            PodSpec::new("tf:2.1", ResourceList::cpu_mem(1000, 1 << 30)),
            ShareSpec::new(0.3, 0.6, 0.5).unwrap(),
        )
    }

    #[test]
    fn new_sharepod_is_pending() {
        let sp = SharePod::new(ObjectMeta::new("sp", Uid(1), SimTime::ZERO), spec());
        assert_eq!(sp.status.phase, SharePodPhase::Pending);
        assert!(sp.status.bound_gpuid.is_none());
    }

    #[test]
    fn spec_serializes_like_script_1() {
        let s = spec()
            .with_gpuid(GpuId::named("abcde"))
            .with_locality(Locality::none().with_affinity("grp1"));
        let json = serde_json::to_value(&s).unwrap();
        assert_eq!(json["gpuid"], "abcde");
        assert_eq!(json["share"]["request"], 0.3);
        assert_eq!(json["locality"]["affinity"], "grp1");
        let back: SharePodSpec = serde_json::from_value(json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn substrate_round_trips_and_defaults_to_time_slice() {
        let s = spec().with_substrate(Substrate::Hybrid);
        let json = serde_json::to_value(&s).unwrap();
        assert_eq!(json["substrate"], "hybrid");
        let back: SharePodSpec = serde_json::from_value(json).unwrap();
        assert_eq!(back.substrate, Substrate::Hybrid);
        // A pre-partition spec (no `substrate` key) lands on TimeSlice:
        // missing fields deserialize as null, and null means time-slice.
        let mut old = serde_json::to_value(&spec()).unwrap();
        if let serde_json::Value::Map(entries) = &mut old {
            entries.retain(|(k, _)| k != "substrate");
        }
        let back: SharePodSpec = serde_json::from_value(old).unwrap();
        assert_eq!(back.substrate, Substrate::TimeSlice);
    }
}
