//! The composed KubeShare control plane: KubeShare-Sched + KubeShare-DevMgr
//! running as custom controllers next to an (unmodified) Kubernetes cluster
//! (paper §4.1, Fig. 4).
//!
//! Flow of one sharePod, exactly as in the paper:
//!
//! 1. a client submits a [`SharePodSpec`] through the API server;
//! 2. **KubeShare-Sched** runs Algorithm 1 against the vGPU pool and fills
//!    in the GPUID (or rejects);
//! 3. **KubeShare-DevMgr** materializes the vGPU if the GPUID is new: it
//!    launches an *anchor pod* that requests one whole `nvidia.com/gpu`
//!    from native Kubernetes — the GPU is thereby allocated without
//!    running any workload — and reads the device UUID from the anchor's
//!    injected `NVIDIA_VISIBLE_DEVICES`;
//! 4. DevMgr then creates the real pod *pinned to the vGPU's node*, with
//!    `NVIDIA_VISIBLE_DEVICES` set to the physical UUID (explicit binding)
//!    and the device library installed (surfaced to the embedding world in
//!    [`KsNotice::SharePodRunning`] so it can attach the container to the
//!    node's `SharedGpu`);
//! 5. on deletion, the pod's demand returns to the vGPU; an idle vGPU is
//!    released (on-demand policy) or kept (reservation policy), trading
//!    creation latency against cluster-level utilization (paper §4.4).

use std::collections::{HashMap, HashSet};
use std::fmt;

use ks_chaos::ChaosInjector;
use ks_cluster::api::pod::PodSpec;
use ks_cluster::api::{ObjectMeta, ResourceList, Uid, UidAllocator, NVIDIA_GPU};
use ks_cluster::sim::{ClusterConfig, ClusterEvent, ClusterNotice, ClusterSim};
use ks_cluster::store::Store;
use ks_sim_core::time::{SimDuration, SimTime};
use ks_telemetry::provenance::{DecisionKind, Outcome, ReasonCode, SchedProv};
use ks_telemetry::{FlightRecorder, LogLevel, Logger, SpanId, Telemetry, TraceCtx};
use ks_vgpu::ShareSpec;

use ks_partition::Profile;

use crate::algorithm::{
    fit_residual, outcome_of, schedule_substrate_prov, Decision, SchedMode, SchedRequest,
};
use crate::gpuid::GpuId;
use crate::pool::VgpuPool;
use crate::sharepod::{SharePod, SharePodPhase, SharePodSpec};

/// When to release idle vGPUs back to Kubernetes (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Release immediately when a vGPU goes idle (the paper's choice).
    OnDemand,
    /// Keep up to `max_idle` idle vGPUs for fast future allocation.
    Reservation {
        /// Maximum number of idle vGPUs retained.
        max_idle: usize,
    },
    /// The paper's hybrid strategy (§4.4): keep up to `max_idle` idle
    /// vGPUs, but release any that stay idle longer than `idle_ttl`.
    Hybrid {
        /// Maximum number of idle vGPUs retained at once.
        max_idle: usize,
        /// How long an idle vGPU is kept before release.
        idle_ttl: SimDuration,
    },
}

/// KubeShare configuration.
#[derive(Debug, Clone)]
pub struct KsConfig {
    /// KubeShare-Sched decision latency (etcd reads + Algorithm 1 + etcd
    /// write of the SharePodSpec).
    pub sched_latency: SimDuration,
    /// DevMgr's vGPU info query + container device-env setup before pod
    /// creation. Together with `sched_latency` this is the ≈15 % overhead
    /// of paper Fig. 10.
    pub vgpu_query_latency: SimDuration,
    /// Idle-vGPU management policy.
    pub pool_policy: PoolPolicy,
    /// First backoff after a failed anchor launch; doubles per attempt.
    pub anchor_retry_base: SimDuration,
    /// Backoff ceiling for anchor retries.
    pub anchor_retry_cap: SimDuration,
    /// Retries before DevMgr gives up on a vGPU and degrades its tenants
    /// to the surviving pool.
    pub anchor_max_retries: u32,
    /// What happens to a sharePod whose backing container crashes.
    pub restart_policy: RestartPolicy,
    /// Which Algorithm 1 implementation KubeShare-Sched runs. Both are
    /// decision-identical (enforced by the differential oracle); `Indexed`
    /// serves placement from the pool's capacity indexes.
    pub sched_mode: SchedMode,
    /// Wall time a spatial partition reconfiguration takes once the device
    /// is drained (MIG-style instance teardown + re-creation). The device
    /// accepts no slices from drain start until this much after the last
    /// tenant leaves.
    pub partition_reconfig_cost: SimDuration,
}

/// Crash semantics for a sharePod's backing container (mirrors the pod
/// `restartPolicy` the paper's SharePods inherit from the PodSpec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// A crash fails the sharePod permanently (batch semantics).
    Never,
    /// A crash re-queues the sharePod through Algorithm 1 (service
    /// semantics; what the chaos soak runs under).
    OnFailure,
}

impl Default for KsConfig {
    fn default() -> Self {
        KsConfig {
            sched_latency: SimDuration::from_millis(90),
            vgpu_query_latency: SimDuration::from_millis(190),
            pool_policy: PoolPolicy::OnDemand,
            anchor_retry_base: SimDuration::from_millis(500),
            anchor_retry_cap: SimDuration::from_secs(8),
            anchor_max_retries: 5,
            restart_policy: RestartPolicy::Never,
            sched_mode: SchedMode::default(),
            partition_reconfig_cost: SimDuration::from_secs(2),
        }
    }
}

/// Internal inconsistencies surfaced as notices instead of panics, so a
/// fault injected mid-transition degrades one sharePod rather than the
/// whole control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// A sharePod references a vGPU that is no longer in the pool.
    MissingVgpu {
        /// The vanished vGPU.
        gpuid: GpuId,
    },
    /// A sharePod past scheduling has no bound GPUID.
    UnboundSharePod {
        /// The sharePod.
        sp: Uid,
    },
    /// A vGPU was used as ready but has no node/UUID yet.
    VgpuNotReady {
        /// The not-ready vGPU.
        gpuid: GpuId,
    },
    /// An anchor pod disappeared from the cluster store.
    MissingAnchor {
        /// The anchor pod uid.
        pod: Uid,
    },
    /// A sharePod in a pod-backed phase has no backing pod recorded.
    MissingBackingPod {
        /// The sharePod.
        sp: Uid,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::MissingVgpu { gpuid } => write!(f, "vGPU {gpuid} not in pool"),
            SystemError::UnboundSharePod { sp } => write!(f, "sharePod {sp:?} has no bound GPUID"),
            SystemError::VgpuNotReady { gpuid } => write!(f, "vGPU {gpuid} has no node/UUID"),
            SystemError::MissingAnchor { pod } => write!(f, "anchor pod {pod:?} missing"),
            SystemError::MissingBackingPod { sp } => {
                write!(f, "sharePod {sp:?} has no backing pod")
            }
        }
    }
}

impl std::error::Error for SystemError {}

/// Events routed back into [`KubeShareSystem::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KsEvent {
    /// An event for the underlying Kubernetes cluster.
    Cluster(ClusterEvent),
    /// KubeShare-Sched runs Algorithm 1 for this sharePod.
    SchedDecide {
        /// The sharePod.
        sp: Uid,
    },
    /// DevMgr finished the vGPU info query; create the backing pod.
    CreatePod {
        /// The sharePod.
        sp: Uid,
    },
    /// A hybrid-policy idle TTL ran out; release the vGPU behind this
    /// ticket if it is still idle.
    ReleaseIdleVgpu {
        /// Ticket into the pending-idle table.
        ticket: u64,
    },
    /// Backoff after a failed anchor launch expired; try launching the
    /// anchor for the vGPU behind this ticket again.
    RetryAnchor {
        /// Ticket into the anchor-retry table.
        ticket: u64,
    },
    /// A drained partition's reconfiguration window elapsed; activate the
    /// new layout on the vGPU behind this ticket.
    PartitionActivate {
        /// Ticket into the reconfiguration table.
        ticket: u64,
    },
}

/// Notices surfaced to the embedding world.
#[derive(Debug, Clone, PartialEq)]
pub enum KsNotice {
    /// A sharePod's container is running with the device library installed.
    SharePodRunning {
        /// The sharePod.
        sp: Uid,
        /// Bound vGPU.
        gpuid: GpuId,
        /// Node hosting the physical GPU.
        node: String,
        /// Physical device UUID.
        uuid: String,
        /// The container's share spec (attach it to the node's SharedGpu).
        share: ShareSpec,
    },
    /// A sharePod was rejected by Algorithm 1.
    SharePodRejected {
        /// The sharePod.
        sp: Uid,
        /// Rejection reason.
        reason: String,
    },
    /// A sharePod terminated; detach its container from the SharedGpu.
    SharePodStopped {
        /// The sharePod.
        sp: Uid,
        /// vGPU it was bound to.
        gpuid: GpuId,
        /// Node hosting the physical GPU.
        node: String,
        /// Physical device UUID.
        uuid: String,
    },
    /// A vGPU became ready (anchor pod running, UUID known).
    VgpuCreated {
        /// The vGPU.
        gpuid: GpuId,
        /// Hosting node.
        node: String,
        /// Physical device UUID.
        uuid: String,
    },
    /// A vGPU was released back to Kubernetes.
    VgpuReleased {
        /// The vGPU.
        gpuid: GpuId,
    },
    /// A sharePod was pushed back to `Pending` and re-queued through
    /// Algorithm 1 (its vGPU died with a node, or its anchor never came
    /// up). The embedding world should detach any container state it kept
    /// for the old binding.
    SharePodRequeued {
        /// The sharePod.
        sp: Uid,
        /// The binding it lost, if it had one.
        gpuid: Option<GpuId>,
    },
    /// A sharePod was evicted to make room for higher-priority work (the
    /// gateway's preemption policy). Its capacity has already been
    /// detached and it sits `Pending` again; the next batch drain decides
    /// it after every higher class. The embedding world should detach any
    /// container state it kept for the old binding.
    SharePodPreempted {
        /// The preempted sharePod.
        sp: Uid,
        /// The binding it lost, if it had one.
        gpuid: Option<GpuId>,
    },
    /// A vGPU was lost to a failure (node crash or anchor giving up) as
    /// opposed to a graceful policy release.
    VgpuLost {
        /// The lost vGPU.
        gpuid: GpuId,
        /// What killed it.
        reason: String,
    },
    /// An internal inconsistency was detected and contained.
    Fault {
        /// The contained error.
        error: SystemError,
    },
    /// Pass-through of a native cluster notice (for pods created outside
    /// KubeShare — the co-existence property of §4.6).
    Cluster(ClusterNotice),
}

/// Scheduled KubeShare events: `(fire_at, event)`.
pub type KsEmit = Vec<(SimTime, KsEvent)>;

/// The KubeShare control plane. See module docs.
#[derive(Debug)]
pub struct KubeShareSystem {
    /// The underlying (unmodified) Kubernetes cluster.
    pub cluster: ClusterSim,
    cfg: KsConfig,
    sharepods: Store<SharePod>,
    sp_uids: UidAllocator,
    pool: VgpuPool,
    /// anchor pod uid → vGPU it reserves.
    anchor_vgpu: HashMap<Uid, GpuId>,
    /// vGPU → its anchor pod uid.
    vgpu_anchor: HashMap<GpuId, Uid>,
    /// backing pod uid → sharePod uid.
    pod_sp: HashMap<Uid, Uid>,
    /// Backing pods torn down by preemption: their sharePods were reset to
    /// `Pending` synchronously, so the asynchronous `PodDeleted` /
    /// `PodFailed` notice that eventually arrives for them must be
    /// swallowed instead of driving the normal terminal transition.
    preempted_pods: HashSet<Uid>,
    /// sharePods waiting for their vGPU to become ready.
    waiting: HashMap<GpuId, Vec<Uid>>,
    /// Hybrid policy: idle-TTL tickets → the vGPU they refer to.
    idle_tickets: HashMap<u64, GpuId>,
    /// Anchor-retry tickets → the vGPU whose anchor is being relaunched.
    retry_tickets: HashMap<u64, GpuId>,
    /// Partition-reconfiguration tickets → the draining vGPU and the open
    /// `partition/reconfig` span to close at activation.
    reconfig_tickets: HashMap<u64, (GpuId, SpanId)>,
    /// Per-vGPU anchor launch attempts and the node preference to relaunch
    /// with; cleared once the anchor reports in.
    anchor_retry: HashMap<GpuId, AnchorRetry>,
    next_ticket: u64,
    /// Optional fault injector consulted on anchor launches; the embedding
    /// world drives its time-based streams.
    chaos: Option<ChaosInjector>,
    telemetry: Telemetry,
    /// Decision-provenance flight recorder (disabled by default; zero-cost
    /// off, a pure observer on).
    recorder: FlightRecorder,
    /// Structured log stream correlated to sharePod traces.
    logger: Logger,
    /// Per-sharePod causal trace state (populated only when telemetry is
    /// enabled; removed when the trace closes on a terminal transition).
    sp_trace: HashMap<Uid, SpTrace>,
    /// Trace context of the sharePod whose decision triggered each vGPU's
    /// anchor, so DevMgr launch/backoff events land in that trace.
    anchor_ctx: HashMap<GpuId, TraceCtx>,
    /// `Pending` sharePod count, maintained on every phase transition so
    /// gauge mirrors don't rescan the store after each event.
    sp_pending: usize,
    /// `Running` sharePod count, maintained likewise.
    sp_running: usize,
}

/// DevMgr's retry bookkeeping for one vGPU's anchor.
#[derive(Debug, Clone)]
struct AnchorRetry {
    attempts: u32,
    node: Option<String>,
}

/// One sharePod's causal trace: the root context plus the child spans
/// currently open on its behalf (`SpanId::NONE` when closed/never opened).
#[derive(Debug, Clone, Copy, Default)]
struct SpTrace {
    ctx: TraceCtx,
    /// Submission (or requeue) → Algorithm 1 decision.
    sched_span: SpanId,
    /// Parked awaiting vGPU → anchor reports the GPUID ready (or give-up).
    vgpu_span: SpanId,
    /// Backing-pod creation ordered → pod running.
    pod_span: SpanId,
}

impl KubeShareSystem {
    /// Builds KubeShare next to a cluster running the native whole-device
    /// GPU plugin (which is what DevMgr's anchor pods allocate through).
    pub fn new(cluster_cfg: ClusterConfig, cfg: KsConfig) -> Self {
        let mut cluster = ClusterSim::new(cluster_cfg);
        // One switch drives both layers: Algorithm 1 over the vGPU pool
        // and kube-scheduler node selection in the simulated cluster.
        cluster.set_sched_mode(cfg.sched_mode);
        KubeShareSystem {
            cluster,
            cfg,
            sharepods: Store::new(),
            sp_uids: UidAllocator::new(),
            pool: VgpuPool::new(),
            anchor_vgpu: HashMap::new(),
            vgpu_anchor: HashMap::new(),
            pod_sp: HashMap::new(),
            preempted_pods: HashSet::new(),
            waiting: HashMap::new(),
            idle_tickets: HashMap::new(),
            retry_tickets: HashMap::new(),
            reconfig_tickets: HashMap::new(),
            anchor_retry: HashMap::new(),
            next_ticket: 0,
            chaos: None,
            telemetry: Telemetry::disabled(),
            recorder: FlightRecorder::disabled(),
            logger: Logger::disabled(),
            sp_trace: HashMap::new(),
            anchor_ctx: HashMap::new(),
            sp_pending: 0,
            sp_running: 0,
        }
    }

    /// Installs a fault injector; DevMgr consults it on every anchor
    /// launch, and the embedding world drives its time-based streams
    /// through [`KubeShareSystem::chaos_mut`].
    pub fn set_chaos(&mut self, mut injector: ChaosInjector) {
        injector.set_telemetry(self.telemetry.clone());
        self.chaos = Some(injector);
    }

    /// Attaches a telemetry handle and propagates it down the stack: the
    /// cluster substrate, the sharePod store, and any installed chaos
    /// injector all record through the same registry and tracer. Call
    /// order relative to [`KubeShareSystem::set_chaos`] does not matter.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.cluster.set_telemetry(telemetry.clone());
        self.sharepods.instrument(telemetry.clone(), "sharepods");
        if let Some(c) = self.chaos.as_mut() {
            c.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Installs a decision-provenance flight recorder and propagates it to
    /// the cluster layer (kube-scheduler node-rank records). A disabled
    /// recorder (the default) costs one branch per decision.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.cluster.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The installed flight recorder (disabled handle by default).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Installs a structured-log sink for scheduler lifecycle events.
    pub fn set_logger(&mut self, logger: Logger) {
        self.logger = logger;
    }

    /// The installed structured-log sink (disabled handle by default).
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// Appends one scheduling provenance record keyed to `sp`'s trace and
    /// mirrors the typed reason into `ks_sched_rejections_total{reason}`
    /// and the structured log. The counter and log run off the *reason*,
    /// which [`SchedProv`] tracks even when candidate capture is off — so
    /// metrics agree with records whether or not a recorder is installed.
    fn record_sched_outcome(&self, now: SimTime, sp: Uid, prov: SchedProv, outcome: Outcome) {
        if let Some(reason) = outcome.reason() {
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter("ks_sched_rejections_total", &[("reason", reason.label())])
                    .inc();
            }
        }
        let trace = self.sp_ctx(sp).trace;
        if self.logger.is_enabled() {
            let level = match &outcome {
                Outcome::Placed { .. } | Outcome::NewDevice { .. } => LogLevel::Info,
                _ => LogLevel::Warn,
            };
            self.logger.log(
                now,
                level,
                "sched",
                trace,
                || match (outcome.target(), outcome.reason()) {
                    (Some(t), _) => format!("sharePod {sp}: {} on {t}", outcome.class()),
                    (None, Some(r)) => {
                        format!("sharePod {sp}: {} ({})", outcome.class(), r.label())
                    }
                    (None, None) => format!("sharePod {sp}: {}", outcome.class()),
                },
                || vec![("sp".into(), sp.to_string())],
            );
        }
        if self.recorder.is_enabled() {
            self.recorder.record(prov.into_record(
                now,
                sp.0,
                trace,
                DecisionKind::Schedule,
                outcome,
            ));
        }
    }

    /// Sets a sharePod's phase through the tally bookkeeping that backs
    /// the scheduler gauges, applying any extra status mutation in the
    /// same store write. Every phase transition MUST go through here (or
    /// the tallies drift — `verify_sp_tally` cross-checks in tests).
    fn transition_sp(&mut self, sp: Uid, to: SharePodPhase, f: impl FnOnce(&mut SharePod)) {
        let Some(from) = self.sharepods.get(sp).map(|s| s.status.phase) else {
            return;
        };
        if from != to {
            match from {
                SharePodPhase::Pending => self.sp_pending -= 1,
                SharePodPhase::Running => self.sp_running -= 1,
                _ => {}
            }
            match to {
                SharePodPhase::Pending => self.sp_pending += 1,
                SharePodPhase::Running => self.sp_running += 1,
                _ => {}
            }
        }
        self.sharepods.mutate(sp, |s| {
            s.status.phase = to;
            f(s);
        });
    }

    /// Recounts the phase tallies from the store (test cross-check for
    /// [`KubeShareSystem::transition_sp`] discipline).
    #[cfg(test)]
    pub(crate) fn verify_sp_tally(&self) -> Result<(), String> {
        let (mut pending, mut running) = (0usize, 0usize);
        for (_, s) in self.sharepods.iter() {
            match s.status.phase {
                SharePodPhase::Pending => pending += 1,
                SharePodPhase::Running => running += 1,
                _ => {}
            }
        }
        if (pending, running) != (self.sp_pending, self.sp_running) {
            return Err(format!(
                "sharePod tally drifted: incremental ({}, {}) != recount ({pending}, {running})",
                self.sp_pending, self.sp_running
            ));
        }
        Ok(())
    }

    /// Mirrors the vGPU pool composition and the scheduler's pending-work
    /// depth into gauges. Called after every event that can move pool or
    /// queue state; reads the incrementally-maintained tallies (plus one
    /// pool walk for the fragmentation gauge when spatial devices exist),
    /// so a pure time-slice run never rescans the pool or store per event.
    fn record_gauges(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let (creating, active, idle) = self.pool.phase_counts();
        for (phase, v) in [("creating", creating), ("active", active), ("idle", idle)] {
            self.telemetry
                .gauge("ks_devmgr_vgpus", &[("phase", phase)])
                .set(f64::from(v));
        }
        self.telemetry
            .gauge("ks_sched_pending_sharepods", &[])
            .set(self.sp_pending as f64);
        self.telemetry
            .gauge("ks_sched_running_sharepods", &[])
            .set(self.sp_running as f64);
        let waiting: usize = self.waiting.values().map(Vec::len).sum();
        self.telemetry
            .gauge("ks_sched_awaiting_vgpu_sharepods", &[])
            .set(waiting as f64);
        // Pool-level fragmentation: the one O(pool) scan here, and only
        // when spatial devices exist — a pure time-slice pool always reads
        // 0 and skips the walk.
        if self.pool.spatial_count() > 0 {
            self.telemetry
                .gauge("ks_pool_fragmentation", &[])
                .set(self.pool.fragmentation());
        }
    }

    /// Counts one GPUID churn event (`vgpu_created` / `vgpu_released` /
    /// `vgpu_lost`) for DevMgr.
    fn note_vgpu_churn(&self, now: SimTime, event: &'static str, gpuid: &GpuId) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter("ks_devmgr_vgpu_churn_total", &[("event", event)])
            .inc();
        self.telemetry
            .trace_event(now, "devmgr", event, &[("gpuid", gpuid.to_string())]);
    }

    /// The causal trace context minted for a sharePod at submission, if
    /// its trace is still open. Embedding worlds use this to tag work done
    /// on the sharePod's behalf in other layers (e.g. token grants).
    pub fn sharepod_trace(&self, sp: Uid) -> Option<TraceCtx> {
        self.sp_trace.get(&sp).map(|t| t.ctx)
    }

    /// The sharePod's context, or `NONE` when untraced.
    fn sp_ctx(&self, sp: Uid) -> TraceCtx {
        self.sp_trace
            .get(&sp)
            .map(|t| t.ctx)
            .unwrap_or(TraceCtx::NONE)
    }

    /// Ends any open child spans and the root span with a terminal
    /// outcome, removing the trace state. Idempotent: later terminal
    /// transitions of an already-closed sharePod are no-ops.
    fn close_sp_trace(&mut self, now: SimTime, sp: Uid, outcome: &'static str) {
        let Some(tr) = self.sp_trace.remove(&sp) else {
            return;
        };
        self.telemetry.span_end(now, tr.sched_span, &[]);
        self.telemetry.span_end(now, tr.vgpu_span, &[]);
        self.telemetry.span_end(now, tr.pod_span, &[]);
        self.telemetry
            .span_end(now, tr.ctx.span, &[("outcome", outcome.to_string())]);
    }

    /// The installed fault injector, if any.
    pub fn chaos(&self) -> Option<&ChaosInjector> {
        self.chaos.as_ref()
    }

    /// Mutable access to the fault injector (for scheduling its streams).
    pub fn chaos_mut(&mut self) -> Option<&mut ChaosInjector> {
        self.chaos.as_mut()
    }

    /// The vGPU pool (read access).
    pub fn pool(&self) -> &VgpuPool {
        &self.pool
    }

    /// A sharePod object.
    pub fn sharepod(&self, sp: Uid) -> Option<&SharePod> {
        self.sharepods.get(sp)
    }

    /// The sharePod store (for watches).
    pub fn sharepods(&self) -> &Store<SharePod> {
        &self.sharepods
    }

    /// Submits a sharePod through the API server. KubeShare-Sched decides
    /// after its scheduling latency.
    pub fn submit_sharepod(
        &mut self,
        now: SimTime,
        name: impl Into<String>,
        spec: SharePodSpec,
        out: &mut KsEmit,
    ) -> Uid {
        self.submit_sharepod_in(now, "default", name, spec, out)
    }

    /// Submits a sharePod into a specific namespace. The gateway runs one
    /// namespace per tenant, so a tenant's objects are separable through
    /// the store's [`Store::iter_namespace`] views.
    pub fn submit_sharepod_in(
        &mut self,
        now: SimTime,
        namespace: impl Into<String>,
        name: impl Into<String>,
        spec: SharePodSpec,
        out: &mut KsEmit,
    ) -> Uid {
        spec.share.validate().expect("invalid share spec");
        let uid = self.sp_uids.next();
        let meta = ObjectMeta::new(name, uid, now).with_namespace(namespace);
        let sp_name = meta.name.clone();
        self.sharepods.create(uid, SharePod::new(meta, spec));
        self.sp_pending += 1;
        if self.telemetry.is_enabled() {
            // One trace per sharePod: the root span covers submission to
            // the terminal transition; the schedule span opens immediately
            // and closes at the Algorithm 1 decision.
            let ctx = self.telemetry.trace_root(
                now,
                "sched",
                "sharepod",
                &[("sp", uid.to_string()), ("name", sp_name)],
            );
            let sched_span = self
                .telemetry
                .span_begin_in(now, ctx, "sched", "schedule", &[]);
            self.sp_trace.insert(
                uid,
                SpTrace {
                    ctx,
                    sched_span,
                    ..SpTrace::default()
                },
            );
        }
        out.push((
            now + self.cfg.sched_latency,
            KsEvent::SchedDecide { sp: uid },
        ));
        uid
    }

    /// Deletes a sharePod.
    pub fn delete_sharepod(
        &mut self,
        now: SimTime,
        sp: Uid,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let Some(sharepod) = self.sharepods.get(sp) else {
            return;
        };
        match sharepod.status.phase {
            SharePodPhase::Pending | SharePodPhase::Rejected => {
                self.transition_sp(sp, SharePodPhase::Terminated, |_| {});
                self.close_sp_trace(now, sp, "deleted");
            }
            SharePodPhase::AwaitingVgpu => {
                let Some(gpuid) = sharepod.status.bound_gpuid.clone() else {
                    self.transition_sp(sp, SharePodPhase::Terminated, |_| {});
                    self.close_sp_trace(now, sp, "deleted");
                    notices.push(KsNotice::Fault {
                        error: SystemError::UnboundSharePod { sp },
                    });
                    return;
                };
                if let Some(w) = self.waiting.get_mut(&gpuid) {
                    w.retain(|&u| u != sp);
                }
                let became_idle = self.pool.detach(&gpuid, sp);
                self.transition_sp(sp, SharePodPhase::Terminated, |_| {});
                self.close_sp_trace(now, sp, "deleted");
                if became_idle {
                    self.apply_pool_policy(now, &gpuid, out, notices);
                }
            }
            SharePodPhase::Starting | SharePodPhase::Running => {
                let Some(pod) = sharepod.status.pod_uid else {
                    // Starting but the CreatePod event has not fired yet:
                    // nothing exists in the cluster; tear down locally.
                    let gpuid = sharepod.status.bound_gpuid.clone();
                    self.transition_sp(sp, SharePodPhase::Terminated, |_| {});
                    self.close_sp_trace(now, sp, "deleted");
                    if let Some(gpuid) = gpuid {
                        if self.pool.get(&gpuid).is_some() {
                            let became_idle = self.pool.detach(&gpuid, sp);
                            if became_idle {
                                self.apply_pool_policy(now, &gpuid, out, notices);
                            }
                        }
                    } else {
                        notices.push(KsNotice::Fault {
                            error: SystemError::MissingBackingPod { sp },
                        });
                    }
                    return;
                };
                let mut cluster_out = Vec::new();
                let mut cluster_notes = Vec::new();
                self.cluster
                    .delete_pod(now, pod, &mut cluster_out, &mut cluster_notes);
                lift(cluster_out, out);
                // Detach bookkeeping happens when PodDeleted arrives.
                self.process_cluster_notices(now, cluster_notes, out, notices);
            }
            SharePodPhase::Terminated => {}
        }
        self.record_gauges();
    }

    /// Submits a *native* pod straight to Kubernetes — KubeShare does not
    /// interfere (co-existence, §4.6).
    pub fn submit_native_pod(
        &mut self,
        now: SimTime,
        name: impl Into<String>,
        spec: PodSpec,
        out: &mut KsEmit,
    ) -> Uid {
        let mut cluster_out = Vec::new();
        let uid = self.cluster.submit_pod(now, name, spec, &mut cluster_out);
        lift(cluster_out, out);
        uid
    }

    /// Deletes a native pod.
    pub fn delete_native_pod(
        &mut self,
        now: SimTime,
        pod: Uid,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let mut cluster_out = Vec::new();
        let mut cluster_notes = Vec::new();
        self.cluster
            .delete_pod(now, pod, &mut cluster_out, &mut cluster_notes);
        lift(cluster_out, out);
        self.process_cluster_notices(now, cluster_notes, out, notices);
    }

    /// Routes an event.
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: KsEvent,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        match ev {
            KsEvent::Cluster(cev) => {
                let mut cluster_out = Vec::new();
                let mut cluster_notes = Vec::new();
                self.cluster
                    .handle(now, cev, &mut cluster_out, &mut cluster_notes);
                lift(cluster_out, out);
                self.process_cluster_notices(now, cluster_notes, out, notices);
            }
            KsEvent::SchedDecide { sp } => self.on_sched_decide(now, sp, out, notices),
            KsEvent::CreatePod { sp } => self.on_create_pod(now, sp, out, notices),
            KsEvent::ReleaseIdleVgpu { ticket } => {
                if let Some(gpuid) = self.idle_tickets.remove(&ticket) {
                    let still_idle = self
                        .pool
                        .get(&gpuid)
                        .map(|d| d.is_idle() && !d.releasing)
                        .unwrap_or(false);
                    if still_idle {
                        self.release_vgpu(now, &gpuid, out, notices);
                    }
                }
            }
            KsEvent::RetryAnchor { ticket } => self.on_retry_anchor(now, ticket, out, notices),
            KsEvent::PartitionActivate { ticket } => self.on_partition_activate(now, ticket),
        }
        self.record_gauges();
    }

    // ---- fault entry points ----
    //
    // The embedding world routes `ks_chaos::ChaosEvent`s into these; they
    // are equally usable directly from tests.

    /// A node crashed: the kubelet and every container on it are gone.
    /// DevMgr marks the node's vGPUs dead, releases their GPUIDs, and
    /// re-queues every attached or waiting sharePod through Algorithm 1
    /// against the surviving pool.
    pub fn fail_node(
        &mut self,
        now: SimTime,
        name: &str,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let mut cluster_notes = Vec::new();
        let victims = self.cluster.fail_node(now, name, &mut cluster_notes);
        // Per-node failure counter: the control plane's own observation
        // point, giving anomaly detectors a per-node crash-burn series.
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_node_failures_total", &[("node", name)])
                .inc();
        }

        // vGPUs whose physical device sat on the failed node, straight
        // from the per-node index (releasing devices included — their
        // anchors died with the node too).
        let dead: Vec<GpuId> = self.pool.devices_on_node(name).cloned().collect();

        // Victim pods we account for here; everything else (native pods)
        // passes through as a plain cluster notice.
        let mut displaced: Vec<Uid> = Vec::new();
        for pod in victims {
            if let Some(gpuid) = self.anchor_vgpu.remove(&pod) {
                // The anchor died with its node; the vGPU is handled below
                // (it is necessarily in `dead` — anchors run on the node
                // that hosts the device).
                self.vgpu_anchor.remove(&gpuid);
                self.anchor_retry.remove(&gpuid);
            } else if let Some(sp) = self.pod_sp.remove(&pod) {
                // Pods mid-preemption-teardown: their sharePods are already
                // `Pending`, so the node taking the pod down changes nothing.
                if !self.preempted_pods.remove(&pod) {
                    displaced.push(sp);
                }
            } else {
                notices.push(KsNotice::Cluster(ClusterNotice::PodFailed {
                    pod,
                    reason: "node failure".into(),
                }));
            }
        }

        for gpuid in dead {
            // Tenants lose their binding: detach them all, then drop the
            // device and its GPUID.
            let tenants: Vec<Uid> = self
                .pool
                .get(&gpuid)
                .map(|d| d.attached.keys().copied().collect())
                .unwrap_or_default();
            for sp in &tenants {
                self.pool.detach(&gpuid, *sp);
                if !displaced.contains(sp) {
                    displaced.push(*sp);
                }
            }
            for sp in self.waiting.remove(&gpuid).unwrap_or_default() {
                if !displaced.contains(&sp) {
                    displaced.push(sp);
                }
            }
            if let Some(&anchor) = self.vgpu_anchor.get(&gpuid) {
                // The anchor pod survived in the store as Failed; forget it.
                self.anchor_vgpu.remove(&anchor);
                self.vgpu_anchor.remove(&gpuid);
            }
            self.anchor_retry.remove(&gpuid);
            self.pool.remove(&gpuid);
            self.note_vgpu_churn(now, "vgpu_lost", &gpuid);
            notices.push(KsNotice::VgpuLost {
                gpuid,
                reason: "node failure".into(),
            });
        }

        // Creating vGPUs may also have been waiting on an anchor that died
        // with the node (covered above via anchor_vgpu) — anything still in
        // the pool keeps its pending anchor retry/unschedulable state.

        for sp in displaced {
            self.requeue_sharepod(now, sp, out, notices);
        }
        self.record_gauges();
    }

    /// A crashed node rejoined with empty state; queued work is retried.
    pub fn recover_node(&mut self, now: SimTime, name: &str, out: &mut KsEmit) {
        let mut cluster_out = Vec::new();
        self.cluster.recover_node(now, name, &mut cluster_out);
        lift(cluster_out, out);
    }

    /// Cordons a node (remediation path): running sharePods stay, but no
    /// new placements land on it until [`KubeShareSystem::uncordon_node`].
    /// Idempotent; returns whether the state changed.
    pub fn cordon_node(&mut self, name: &str) -> bool {
        let changed = self.cluster.cordon_node(name);
        if changed && self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_node_cordons_total", &[("node", name)])
                .inc();
            self.telemetry
                .gauge("ks_cluster_cordoned_nodes", &[])
                .add(1.0);
        }
        changed
    }

    /// Lifts a cordon; queued work is retried against the node. Idempotent;
    /// returns whether the state changed.
    pub fn uncordon_node(&mut self, now: SimTime, name: &str, out: &mut KsEmit) -> bool {
        let mut cluster_out = Vec::new();
        let changed = self.cluster.uncordon_node(now, name, &mut cluster_out);
        lift(cluster_out, out);
        if changed && self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_node_uncordons_total", &[("node", name)])
                .inc();
            self.telemetry
                .gauge("ks_cluster_cordoned_nodes", &[])
                .add(-1.0);
        }
        changed
    }

    /// Drains every sharePod off a live vGPU and retires the device: each
    /// attached tenant is detached (with a [`KsNotice::SharePodStopped`]
    /// so the embedding world tears down container state), its backing
    /// pod is deleted, waiters are re-queued, and the device goes back to
    /// Kubernetes through the normal release path. Because the device is
    /// marked `releasing` immediately, Algorithm 1 cannot re-bind any of
    /// the displaced sharePods to it — they land on other vGPUs or fresh
    /// ones. This is the remediation path for a degraded GPU: a
    /// replacement vGPU is a fresh physical allocation and therefore
    /// healthy. Returns the number of sharePods displaced; 0 when the
    /// vGPU is unknown or already being released.
    pub fn drain_vgpu(
        &mut self,
        now: SimTime,
        gpuid: &GpuId,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) -> usize {
        let Some(device) = self.pool.get(gpuid) else {
            return 0;
        };
        if device.releasing {
            return 0;
        }
        let mut tenants: Vec<Uid> = device.attached.keys().copied().collect();
        tenants.sort();
        let node = device.node.clone();
        let uuid = device.uuid.clone();
        let mut displaced = 0;
        for sp in tenants {
            if let (Some(node), Some(uuid)) = (node.clone(), uuid.clone()) {
                notices.push(KsNotice::SharePodStopped {
                    sp,
                    gpuid: gpuid.clone(),
                    node,
                    uuid,
                });
            }
            self.pool.detach(gpuid, sp);
            // Capture the backing pod before the requeue clears it; its
            // teardown mirrors preemption (the deletion notice must not
            // terminate the already-Pending sharePod).
            let pod = self.sharepods.get(sp).and_then(|s| s.status.pod_uid);
            self.requeue_sharepod(now, sp, out, notices);
            if let Some(pod) = pod {
                self.preempted_pods.insert(pod);
                let mut cluster_out = Vec::new();
                let mut cluster_notes = Vec::new();
                self.cluster
                    .delete_pod(now, pod, &mut cluster_out, &mut cluster_notes);
                lift(cluster_out, out);
                self.process_cluster_notices(now, cluster_notes, out, notices);
            }
            displaced += 1;
        }
        for sp in self.waiting.remove(gpuid).unwrap_or_default() {
            self.requeue_sharepod(now, sp, out, notices);
            displaced += 1;
        }
        self.release_vgpu(now, gpuid, out, notices);
        if self.telemetry.is_enabled() {
            self.telemetry.counter("ks_vgpu_drains_total", &[]).inc();
        }
        self.record_gauges();
        displaced
    }

    /// Drains the tenant of a single slice on a partitioned vGPU: the
    /// slice's sharePod is stopped, detached — freeing only its slice —
    /// and re-queued through Algorithm 1; every other slice on the device
    /// keeps running. This is the remediation path for a degraded slice:
    /// spatial isolation means the fault stops at the slice boundary, so
    /// retiring the whole device (as [`KubeShareSystem::drain_vgpu`] does)
    /// would displace healthy tenants for nothing. Returns the number of
    /// sharePods displaced (0 when the vGPU is unknown, not partitioned,
    /// releasing, or the slice has no tenant).
    pub fn drain_slice(
        &mut self,
        now: SimTime,
        gpuid: &GpuId,
        start: u8,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) -> usize {
        let Some(device) = self.pool.get(gpuid) else {
            return 0;
        };
        if device.releasing || !device.is_spatial() {
            return 0;
        }
        let node = device.node.clone();
        let uuid = device.uuid.clone();
        let Some(sp) = self.pool.slice_tenant(gpuid, start) else {
            return 0;
        };
        if let (Some(node), Some(uuid)) = (node, uuid) {
            notices.push(KsNotice::SharePodStopped {
                sp,
                gpuid: gpuid.clone(),
                node,
                uuid,
            });
        }
        let became_idle = self.pool.detach(gpuid, sp);
        let pod = self.sharepods.get(sp).and_then(|s| s.status.pod_uid);
        self.requeue_sharepod(now, sp, out, notices);
        if let Some(pod) = pod {
            self.preempted_pods.insert(pod);
            let mut cluster_out = Vec::new();
            let mut cluster_notes = Vec::new();
            self.cluster
                .delete_pod(now, pod, &mut cluster_out, &mut cluster_notes);
            lift(cluster_out, out);
            self.process_cluster_notices(now, cluster_notes, out, notices);
        }
        if let Some(w) = self.waiting.get_mut(gpuid) {
            w.retain(|&u| u != sp);
        }
        if became_idle {
            self.apply_pool_policy(now, gpuid, out, notices);
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_vgpu_slice_drains_total", &[])
                .inc();
        }
        self.record_gauges();
        1
    }

    /// Remediation entry point that understands both substrates: a plain
    /// `"<gpuid>"` target drains the whole vGPU, while `"<gpuid>#sN"`
    /// drains only slice `N` on a partitioned vGPU. Returns the number of
    /// sharePods displaced.
    pub fn drain_target(
        &mut self,
        now: SimTime,
        target: &str,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) -> usize {
        match target.split_once("#s") {
            Some((gpu, slot)) => match slot.parse::<u8>() {
                Ok(start) => self.drain_slice(now, &GpuId::named(gpu), start, out, notices),
                Err(_) => 0,
            },
            None => self.drain_vgpu(now, &GpuId::named(target), out, notices),
        }
    }

    /// Crashes a single pod (container exit / OOM kill) and routes the
    /// consequences through the KubeShare controllers.
    pub fn crash_pod(
        &mut self,
        now: SimTime,
        pod: Uid,
        reason: impl Into<String>,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let mut cluster_out = Vec::new();
        let mut cluster_notes = Vec::new();
        self.cluster
            .crash_pod(now, pod, reason, &mut cluster_out, &mut cluster_notes);
        lift(cluster_out, out);
        self.process_cluster_notices(now, cluster_notes, out, notices);
        self.record_gauges();
    }

    /// Uids of all running sharePod backing pods (chaos victim candidates).
    pub fn running_backing_pods(&self) -> Vec<Uid> {
        let mut pods: Vec<Uid> = self
            .pod_sp
            .iter()
            .filter(|(&pod, _)| {
                self.cluster
                    .pod(pod)
                    .map(|p| p.status.phase == ks_cluster::PodPhase::Running)
                    .unwrap_or(false)
            })
            .map(|(&pod, _)| pod)
            .collect();
        pods.sort();
        pods
    }

    /// Pushes a sharePod back to `Pending` (clearing any binding) and
    /// schedules a fresh Algorithm 1 pass, unless it already terminated.
    fn requeue_sharepod(
        &mut self,
        now: SimTime,
        sp: Uid,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        self.requeue_sharepod_at(now, sp, now + self.cfg.sched_latency, out, notices);
    }

    /// [`KubeShareSystem::requeue_sharepod`] with an explicit decision
    /// time: partition reconfiguration re-decides its displaced tenants
    /// only once the new layout is active, so they do not stampede onto
    /// fresh physical GPUs while the capacity they need is mid-reshape.
    fn requeue_sharepod_at(
        &mut self,
        now: SimTime,
        sp: Uid,
        decide_at: SimTime,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let Some(sharepod) = self.sharepods.get(sp) else {
            return;
        };
        if matches!(
            sharepod.status.phase,
            SharePodPhase::Terminated | SharePodPhase::Rejected
        ) {
            return;
        }
        let gpuid = sharepod.status.bound_gpuid.clone();
        self.transition_sp(sp, SharePodPhase::Pending, |s| {
            s.status.bound_gpuid = None;
            s.status.pod_uid = None;
            s.status.message = Some("requeued after failure".into());
        });
        notices.push(KsNotice::SharePodRequeued { sp, gpuid });
        if self.telemetry.is_enabled() {
            self.telemetry.counter("ks_sched_requeues_total", &[]).inc();
            let ctx = self.sp_ctx(sp);
            self.telemetry
                .trace_event_in(now, ctx, "sched", "requeue", &[("sp", sp.to_string())]);
            // A fresh schedule span for the new Algorithm 1 pass; any span
            // left open by the failed attempt ends here.
            if self.sp_trace.contains_key(&sp) {
                let sched_span = self
                    .telemetry
                    .span_begin_in(now, ctx, "sched", "schedule", &[]);
                let tr = self.sp_trace.get_mut(&sp).expect("just checked");
                let vgpu_span = std::mem::replace(&mut tr.vgpu_span, SpanId::NONE);
                let pod_span = std::mem::replace(&mut tr.pod_span, SpanId::NONE);
                tr.sched_span = sched_span;
                self.telemetry.span_end(now, vgpu_span, &[]);
                self.telemetry.span_end(now, pod_span, &[]);
            }
        }
        out.push((decide_at, KsEvent::SchedDecide { sp }));
    }

    /// Evicts a sharePod to make room for higher-priority work (the
    /// gateway's preemption policy). Its capacity is detached from the
    /// vGPU *synchronously* — the freed room is visible to the very next
    /// Algorithm 1 pass — and the sharePod returns to `Pending` without a
    /// `SchedDecide` being scheduled: the caller re-enters it through
    /// [`KubeShareSystem::drain_pending`], whose priority ordering places
    /// it after everything that outranks it. The backing pod (if any) is
    /// torn down through the cluster; its eventual deletion notice is
    /// swallowed. Returns `false` when the sharePod does not exist, is
    /// still `Pending`, or already reached a terminal phase.
    pub fn preempt_sharepod(
        &mut self,
        now: SimTime,
        sp: Uid,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) -> bool {
        let Some(sharepod) = self.sharepods.get(sp) else {
            return false;
        };
        if matches!(
            sharepod.status.phase,
            SharePodPhase::Pending | SharePodPhase::Rejected | SharePodPhase::Terminated
        ) {
            return false;
        }
        let gpuid = sharepod.status.bound_gpuid.clone();
        let pod = sharepod.status.pod_uid;

        // Free the vGPU capacity now. The `SharePodStopped` notice lets
        // the embedding world detach any container state for the binding.
        if let Some(gpuid) = &gpuid {
            if let Some(w) = self.waiting.get_mut(gpuid) {
                w.retain(|&u| u != sp);
            }
            if let Some(device) = self.pool.get(gpuid) {
                if let (Some(node), Some(uuid)) = (device.node.clone(), device.uuid.clone()) {
                    notices.push(KsNotice::SharePodStopped {
                        sp,
                        gpuid: gpuid.clone(),
                        node,
                        uuid,
                    });
                }
                let became_idle = self.pool.detach(gpuid, sp);
                if became_idle {
                    self.apply_pool_policy(now, gpuid, out, notices);
                }
            }
        }

        self.transition_sp(sp, SharePodPhase::Pending, |s| {
            s.status.bound_gpuid = None;
            s.status.pod_uid = None;
            s.status.message = Some("preempted".into());
        });
        // Victim-side provenance: the eviction is a decision about this
        // sharePod, keyed to its trace like any scheduling record.
        let victim_ctx = self.sp_ctx(sp);
        if self.recorder.is_enabled() {
            let target = gpuid
                .as_ref()
                .map(|g| g.as_str().to_string())
                .unwrap_or_default();
            self.recorder.record(SchedProv::on().into_record(
                now,
                sp.0,
                victim_ctx.trace,
                DecisionKind::PreemptVictim,
                Outcome::Evicted {
                    target: target.into(),
                },
            ));
        }
        self.logger.log(
            now,
            LogLevel::Warn,
            "sched",
            victim_ctx.trace,
            || format!("sharePod {sp}: evicted for higher-priority work"),
            || vec![("sp".into(), sp.to_string())],
        );
        notices.push(KsNotice::SharePodPreempted { sp, gpuid });
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_sched_preemptions_total", &[])
                .inc();
            let ctx = self.sp_ctx(sp);
            self.telemetry
                .trace_event_in(now, ctx, "sched", "preempt", &[("sp", sp.to_string())]);
            // Same span bookkeeping as a requeue: end whatever child span
            // the evicted attempt left open, open a fresh schedule span
            // for the next Algorithm 1 pass.
            if self.sp_trace.contains_key(&sp) {
                let sched_span = self
                    .telemetry
                    .span_begin_in(now, ctx, "sched", "schedule", &[]);
                let tr = self.sp_trace.get_mut(&sp).expect("just checked");
                let old_sched = std::mem::replace(&mut tr.sched_span, sched_span);
                let vgpu_span = std::mem::replace(&mut tr.vgpu_span, SpanId::NONE);
                let pod_span = std::mem::replace(&mut tr.pod_span, SpanId::NONE);
                self.telemetry.span_end(now, old_sched, &[]);
                self.telemetry.span_end(now, vgpu_span, &[]);
                self.telemetry.span_end(now, pod_span, &[]);
            }
        }

        // Tear the backing pod down last: the deletion runs through the
        // cluster asynchronously, and the sharePod's state must already
        // be reset when any synchronous notice comes back.
        if let Some(pod) = pod {
            self.preempted_pods.insert(pod);
            let mut cluster_out = Vec::new();
            let mut cluster_notes = Vec::new();
            self.cluster
                .delete_pod(now, pod, &mut cluster_out, &mut cluster_notes);
            lift(cluster_out, out);
            self.process_cluster_notices(now, cluster_notes, out, notices);
        }
        self.record_gauges();
        true
    }

    // ---- KubeShare-Sched ----

    /// Batch scheduler entry point: decides every `Pending` sharePod in
    /// one pass — highest priority class first, uid order within a class —
    /// with each decision applied to the pool (bind / anchor launch /
    /// reject) before the next one runs: the same per-decision semantics
    /// as the event-driven path, without paying one `sched_latency`
    /// round-trip per sharePod. The priority ordering is what makes
    /// preemption stick: a preemptor drained in the same pass as its
    /// freshly-`Pending` victims claims the freed capacity before any of
    /// them is decided. Any `SchedDecide` events already queued for these
    /// sharePods become no-ops (the phase has moved past `Pending`).
    /// Returns the batch length.
    pub fn drain_pending(
        &mut self,
        now: SimTime,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) -> usize {
        let mut pending: Vec<(u8, Uid)> = self
            .sharepods
            .iter()
            .filter(|(_, s)| s.status.phase == SharePodPhase::Pending)
            .map(|(uid, s)| (s.spec.priority, uid))
            .collect();
        // Store iteration order is a hash order; the batch must not be.
        pending.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let batch_len = pending.len();
        for (_, sp) in pending {
            self.on_sched_decide(now, sp, out, notices);
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .histogram_log("sched_batch_len", &[], 1.0, 1e6, 30)
                .observe(batch_len as f64);
            self.telemetry.trace_event(
                now,
                "sched",
                "batch_drain",
                &[("len", batch_len.to_string())],
            );
        }
        batch_len
    }

    /// Removes a terminal sharePod from the API store — the analogue of
    /// the cluster's pod GC, without which a long-running control plane
    /// iterates every sharePod that ever lived on each batch drain. Live
    /// sharePods are never collected. Returns whether an object was
    /// removed.
    pub fn gc_sharepod(&mut self, sp: Uid) -> bool {
        let terminal = self
            .sharepods
            .get(sp)
            .map(|s| {
                matches!(
                    s.status.phase,
                    SharePodPhase::Terminated | SharePodPhase::Rejected
                )
            })
            .unwrap_or(false);
        if !terminal {
            return false;
        }
        self.sharepods.delete(sp);
        self.sp_trace.remove(&sp);
        true
    }

    /// Whether a brand-new vGPU could actually anchor right now: free
    /// physical GPUs net of the creating vGPUs already racing for them.
    fn has_spare_physical_gpu(&self) -> bool {
        let free = self.cluster.free_total().extended_count(NVIDIA_GPU);
        let (creating, _, _) = self.pool.phase_counts();
        free > u64::from(creating)
    }

    /// Whether any sharePod of a strictly lower priority class currently
    /// holds vGPU capacity — i.e. whether preemption could make room.
    fn has_attached_below(&self, priority: u8) -> bool {
        self.pool.devices().any(|d| {
            d.attached.keys().any(|&uid| {
                self.sharepods
                    .get(uid)
                    .map(|s| s.spec.priority < priority)
                    .unwrap_or(false)
            })
        })
    }

    fn on_sched_decide(
        &mut self,
        now: SimTime,
        sp: Uid,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let Some(sharepod) = self.sharepods.get(sp) else {
            return;
        };
        if sharepod.status.phase != SharePodPhase::Pending {
            return; // deleted while queued
        }
        let submitted = sharepod.meta.created_at;
        let spec = sharepod.spec.clone();
        let mut prov = SchedProv::for_recorder(&self.recorder);
        let decide_start = std::time::Instant::now();
        let decision = match &spec.gpuid {
            // Explicit GPUID: an existing vGPU binds directly; a
            // non-existent GPUID asks DevMgr to create one (paper §4.4).
            Some(id) => match self.pool.get(id) {
                Some(d) => {
                    let fits = if let Some(table) = &d.partition {
                        // Pinning to a partitioned vGPU asks for a slice:
                        // the demand's covering profile must have a legal
                        // start in the current layout.
                        Profile::smallest_covering(spec.share.request.max(spec.share.mem))
                            .map(|p| table.can_place(p))
                            .unwrap_or(false)
                    } else {
                        d.util_free + 1e-9 >= spec.share.request
                            && d.mem_free + 1e-9 >= spec.share.mem
                    };
                    prov.candidate_with("pinned", d.fit_key(), || d.id.as_str().to_string());
                    if !d.releasing && fits {
                        prov.choose(d.id.as_str(), "pinned", d.fit_key());
                        prov.note(|| format!("spec pins GPUID {id}; it fits"));
                        Decision::Assign(id.clone())
                    } else {
                        prov.reject(ReasonCode::PinnedUnfit);
                        prov.note(|| format!("spec pins GPUID {id}; it cannot host the demand"));
                        Decision::Reject(crate::algorithm::RejectReason::InsufficientCapacity)
                    }
                }
                None => {
                    prov.note(|| format!("spec pins unknown GPUID {id}; DevMgr will create it"));
                    Decision::NewDevice(id.clone())
                }
            },
            None => {
                let req = SchedRequest {
                    util: spec.share.request,
                    mem: spec.share.mem,
                    locality: spec.locality.clone(),
                };
                schedule_substrate_prov(
                    self.cfg.sched_mode,
                    spec.substrate,
                    &req,
                    &mut self.pool,
                    &mut prov,
                )
            }
        };
        let decide_ns = decide_start.elapsed().as_nanos() as f64;

        if self.telemetry.is_enabled() {
            // Record the mode that actually ran: `Auto` resolves by pool
            // size, and the label should say which path served the
            // decision, not the configuration knob.
            let mode = self.cfg.sched_mode.resolve(self.pool.len()).label();
            // Wall-clock cost of running Algorithm 1 itself (not the
            // simulated sched_latency): 10ns .. 1s log-spaced.
            self.telemetry
                .histogram_log("sched_decision_ns", &[("mode", mode)], 1e1, 1e9, 40)
                .observe(decide_ns);
            let outcome = match &decision {
                Decision::Assign(_) => "assign",
                Decision::NewDevice(_) => "new_device",
                Decision::Reconfigure(_) => "reconfigure",
                Decision::Reject(_) => "reject",
            };
            self.telemetry
                .counter("ks_sched_decisions_total", &[("outcome", outcome)])
                .inc();
            // Submission-to-decision latency; re-queued sharePods keep
            // their original submission time, so requeues stretch the tail.
            self.telemetry
                .histogram_seconds("ks_sched_decision_seconds", &[])
                .observe(now.saturating_since(submitted).as_secs_f64());
            if let Decision::Assign(gpuid) = &decision {
                let req = SchedRequest {
                    util: spec.share.request,
                    mem: spec.share.mem,
                    locality: spec.locality.clone(),
                };
                // util + mem residual each in [0,1] → fit score in [0,2].
                if let Some(r) = fit_residual(&req, &self.pool, gpuid) {
                    self.telemetry
                        .histogram_linear("ks_sched_fit_residual", &[], 0.0, 2.0, 20)
                        .observe(r);
                }
            }
            let target = match &decision {
                Decision::Assign(g) | Decision::NewDevice(g) | Decision::Reconfigure(g) => {
                    g.to_string()
                }
                Decision::Reject(r) => format!("{r:?}"),
            };
            let ctx = self.sp_ctx(sp);
            self.telemetry.trace_event_in(
                now,
                ctx,
                "sched",
                "decision",
                &[
                    ("sp", sp.to_string()),
                    ("outcome", outcome.to_string()),
                    ("target", target.clone()),
                ],
            );
            // The schedule span (opened at submission/requeue) ends at the
            // decision, carrying the outcome.
            if let Some(tr) = self.sp_trace.get_mut(&sp) {
                let span = std::mem::replace(&mut tr.sched_span, SpanId::NONE);
                self.telemetry.span_end(
                    now,
                    span,
                    &[("outcome", outcome.to_string()), ("target", target)],
                );
            }
        }

        // Evaluate the awaiting-preemption holds once, up front, so the
        // provenance outcome recorded below and the control flow in the
        // match agree exactly (including for `drain_pending` entries,
        // which take this same path — the typed reason is never dropped
        // mid-batch).
        let parks = match &decision {
            // A priority class above the floor does not take "no" while
            // strictly lower-priority work holds pool capacity: it stays
            // Pending so the front door's preemption pump can evict on
            // its behalf and re-decide. Priority-0 workloads (everything
            // pre-gateway) keep the paper's reject semantics.
            Decision::Reject(_) => spec.priority > 0 && self.has_attached_below(spec.priority),
            // Same hold for a new vGPU: it needs a free physical GPU, and
            // the algorithm cannot see that the cluster is out of them.
            // Rather than park a high-priority sharePod behind an anchor
            // that cannot start, keep it Pending so preemption can free
            // existing capacity for it.
            Decision::NewDevice(_) => {
                spec.priority > 0
                    && !self.has_spare_physical_gpu()
                    && self.has_attached_below(spec.priority)
            }
            _ => false,
        };
        let outcome = if parks {
            prov.reject(ReasonCode::AwaitingPreemption);
            Outcome::Held {
                reason: ReasonCode::AwaitingPreemption,
            }
        } else {
            outcome_of(&decision, &prov)
        };
        self.record_sched_outcome(now, sp, prov, outcome);

        match decision {
            Decision::Reject(reason) => {
                if parks {
                    self.sharepods.mutate(sp, |s| {
                        s.status.message = Some("awaiting preemption".to_string());
                    });
                    return;
                }
                self.transition_sp(sp, SharePodPhase::Rejected, |s| {
                    s.status.message = Some(format!("{reason:?}"));
                });
                self.close_sp_trace(now, sp, "rejected");
                notices.push(KsNotice::SharePodRejected {
                    sp,
                    reason: format!("{reason:?}"),
                });
            }
            Decision::Assign(gpuid) => {
                self.bind(now, sp, &spec, gpuid, out);
            }
            Decision::NewDevice(gpuid) => {
                if parks {
                    self.sharepods.mutate(sp, |s| {
                        s.status.message = Some("awaiting preemption".to_string());
                    });
                    return;
                }
                if spec
                    .substrate
                    .wants_spatial(spec.share.request, spec.share.mem)
                {
                    self.pool.insert_creating_spatial(gpuid.clone());
                } else {
                    self.pool.insert_creating(gpuid.clone());
                }
                // DevMgr work for this vGPU is on behalf of the sharePod
                // whose decision demanded it.
                let ctx = self.sp_ctx(sp);
                if !ctx.is_none() {
                    self.anchor_ctx.insert(gpuid.clone(), ctx);
                }
                self.launch_anchor(now, &gpuid, spec.node_name.clone(), out, notices);
                // The launch may have failed and be backing off — the
                // sharePod still binds and waits; a successful retry will
                // release it, and exhausted retries re-queue it.
                if self.pool.get(&gpuid).is_some() {
                    self.bind(now, sp, &spec, gpuid, out);
                }
            }
            Decision::Reconfigure(gpuid) => {
                self.reconfigure_partition(now, sp, gpuid, out, notices);
            }
        }
    }

    /// Records the sharePod on the vGPU; creates the backing pod now (ready
    /// vGPU) or parks it until the anchor reports the UUID. On a
    /// partitioned vGPU the demand binds to a dedicated slice; the path is
    /// picked by the *device's* substrate, so an explicit-GPUID pin to a
    /// partitioned device gets a slice regardless of the spec's substrate.
    fn bind(&mut self, now: SimTime, sp: Uid, spec: &SharePodSpec, gpuid: GpuId, out: &mut KsEmit) {
        let is_spatial = self
            .pool
            .get(&gpuid)
            .map(|d| d.is_spatial())
            .unwrap_or(false);
        if is_spatial {
            let demand = spec.share.request.max(spec.share.mem);
            let bound = Profile::smallest_covering(demand).and_then(|profile| {
                self.pool
                    .attach_slice(
                        &gpuid,
                        sp,
                        profile,
                        spec.share.request,
                        spec.share.mem,
                        spec.locality.affinity.as_deref(),
                        spec.locality.anti_affinity.as_deref(),
                        spec.locality.exclusion.as_deref(),
                    )
                    .ok()
            });
            if bound.is_none() {
                // The slice the decision counted on was taken (or the
                // table started draining) between decide and bind: stay
                // Pending and re-decide against fresh state.
                self.sharepods.mutate(sp, |s| {
                    s.status.message = Some("slice bind raced; re-deciding".into());
                });
                out.push((now + self.cfg.sched_latency, KsEvent::SchedDecide { sp }));
                return;
            }
        } else {
            self.pool.attach(
                &gpuid,
                sp,
                spec.share.request,
                spec.share.mem,
                spec.locality.affinity.as_deref(),
                spec.locality.anti_affinity.as_deref(),
                spec.locality.exclusion.as_deref(),
            );
        }
        let ready = self
            .pool
            .get(&gpuid)
            .map(|d| d.uuid.is_some())
            .unwrap_or(false);
        let next = if ready {
            SharePodPhase::Starting
        } else {
            SharePodPhase::AwaitingVgpu
        };
        self.transition_sp(sp, next, |s| {
            s.status.bound_gpuid = Some(gpuid.clone());
        });
        if ready {
            self.open_pod_span(now, sp, &gpuid);
            out.push((now + self.cfg.vgpu_query_latency, KsEvent::CreatePod { sp }));
        } else {
            if self.sp_trace.contains_key(&sp) {
                let ctx = self.sp_ctx(sp);
                let span = self.telemetry.span_begin_in(
                    now,
                    ctx,
                    "devmgr",
                    "vgpu_create",
                    &[("gpuid", gpuid.to_string())],
                );
                self.sp_trace.get_mut(&sp).expect("just checked").vgpu_span = span;
            }
            self.waiting.entry(gpuid).or_default().push(sp);
        }
    }

    /// Opens the pod-creation child span (Starting → Running).
    fn open_pod_span(&mut self, now: SimTime, sp: Uid, gpuid: &GpuId) {
        if self.sp_trace.contains_key(&sp) {
            let ctx = self.sp_ctx(sp);
            let span = self.telemetry.span_begin_in(
                now,
                ctx,
                "cluster",
                "pod_create",
                &[("gpuid", gpuid.to_string())],
            );
            self.sp_trace.get_mut(&sp).expect("just checked").pod_span = span;
        }
    }

    /// Applies a [`Decision::Reconfigure`] verdict: the capacity the
    /// request needs exists on `gpuid` but the slice layout strands it, so
    /// pay the explicit reconfiguration cost instead of burning a fresh
    /// physical GPU. The device drains (tenants are stopped and displaced
    /// exactly as in a vGPU drain, but the device survives), the new
    /// layout activates `partition_reconfig_cost` later, and the
    /// triggering sharePod plus every displaced tenant re-decide only once
    /// it is live — re-deciding earlier would stampede them onto new
    /// devices while the capacity they need is mid-reshape.
    fn reconfigure_partition(
        &mut self,
        now: SimTime,
        sp: Uid,
        gpuid: GpuId,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let mut tenants = match self.pool.begin_partition_drain(&gpuid) {
            Ok(t) => t,
            Err(_) => {
                // The table left `Active` between decide and apply (a
                // concurrent reconfiguration); park the sharePod for a
                // fresh pass against the settled pool.
                self.sharepods.mutate(sp, |s| {
                    s.status.message = Some("partition busy; re-deciding".into());
                });
                out.push((now + self.cfg.sched_latency, KsEvent::SchedDecide { sp }));
                return;
            }
        };
        tenants.sort();
        // Reconfigure provenance: which device is being reshaped, on whose
        // behalf, and who gets displaced for it.
        let reconfig_ctx = self.sp_ctx(sp);
        if self.recorder.is_enabled() {
            let mut rec = SchedProv::on().into_record(
                now,
                sp.0,
                reconfig_ctx.trace,
                DecisionKind::Reconfigure,
                Outcome::Reconfigure {
                    target: gpuid.as_str().into(),
                },
            );
            rec.fields
                .push(("displaced".into(), tenants.len().to_string()));
            self.recorder.record(rec);
        }
        self.logger.log(
            now,
            LogLevel::Warn,
            "partition",
            reconfig_ctx.trace,
            || {
                format!(
                    "sharePod {sp}: reconfiguring {gpuid} (displacing {} tenants)",
                    tenants.len()
                )
            },
            || {
                vec![
                    ("sp".into(), sp.to_string()),
                    ("gpuid".into(), gpuid.to_string()),
                ]
            },
        );
        let span = if self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_partition_reconfigs_total", &[])
                .inc();
            let ctx = self.sp_ctx(sp);
            self.telemetry.span_begin_in(
                now,
                ctx,
                "partition",
                "reconfig",
                &[
                    ("gpuid", gpuid.to_string()),
                    ("displaced", tenants.len().to_string()),
                ],
            )
        } else {
            SpanId::NONE
        };
        let (node, uuid) = self
            .pool
            .get(&gpuid)
            .map(|d| (d.node.clone(), d.uuid.clone()))
            .unwrap_or((None, None));
        let mut displaced = tenants.clone();
        for w in self.waiting.remove(&gpuid).unwrap_or_default() {
            if !displaced.contains(&w) {
                displaced.push(w);
            }
        }
        for &t in &tenants {
            if let (Some(node), Some(uuid)) = (node.clone(), uuid.clone()) {
                notices.push(KsNotice::SharePodStopped {
                    sp: t,
                    gpuid: gpuid.clone(),
                    node,
                    uuid,
                });
            }
            self.pool.detach(&gpuid, t);
            // Backing-pod teardown mirrors preemption: the eventual
            // deletion notice must not terminate the requeued sharePod.
            let pod = self.sharepods.get(t).and_then(|s| s.status.pod_uid);
            if let Some(pod) = pod {
                self.preempted_pods.insert(pod);
                let mut cluster_out = Vec::new();
                let mut cluster_notes = Vec::new();
                self.cluster
                    .delete_pod(now, pod, &mut cluster_out, &mut cluster_notes);
                lift(cluster_out, out);
                self.process_cluster_notices(now, cluster_notes, out, notices);
            }
        }
        let until = self
            .pool
            .note_partition_drained(&gpuid, now, self.cfg.partition_reconfig_cost)
            .expect("all tenants just detached");
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.reconfig_tickets.insert(ticket, (gpuid, span));
        out.push((until, KsEvent::PartitionActivate { ticket }));
        let decide_at = until + self.cfg.sched_latency;
        for t in displaced {
            self.requeue_sharepod_at(now, t, decide_at, out, notices);
        }
        // The triggering sharePod never left Pending; a fresh schedule
        // span covers its wait for the new layout.
        self.sharepods.mutate(sp, |s| {
            s.status.message = Some("awaiting partition reconfiguration".into());
        });
        if self.telemetry.is_enabled() && self.sp_trace.contains_key(&sp) {
            let ctx = self.sp_ctx(sp);
            let sched_span = self
                .telemetry
                .span_begin_in(now, ctx, "sched", "schedule", &[]);
            self.sp_trace.get_mut(&sp).expect("just checked").sched_span = sched_span;
        }
        out.push((decide_at, KsEvent::SchedDecide { sp }));
        self.record_gauges();
    }

    /// A reconfiguration window elapsed: activate the new layout if the
    /// device is still around (it may have died with its node mid-window).
    fn on_partition_activate(&mut self, now: SimTime, ticket: u64) {
        let Some((gpuid, span)) = self.reconfig_tickets.remove(&ticket) else {
            return;
        };
        // The device may have died with its node mid-window, and in the
        // extreme its GPUID may even have been reused by a time-sliced
        // replacement — only a still-partitioned device activates.
        let outcome = match self.pool.get(&gpuid) {
            Some(d) if d.is_spatial() => match self.pool.activate_partition(&gpuid, now) {
                Ok(()) => "activated",
                Err(_) => "stale",
            },
            _ => "device_lost",
        };
        self.telemetry
            .span_end(now, span, &[("outcome", outcome.to_string())]);
    }

    // ---- KubeShare-DevMgr ----

    fn launch_anchor(
        &mut self,
        now: SimTime,
        gpuid: &GpuId,
        node_name: Option<String>,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        self.anchor_retry
            .entry(gpuid.clone())
            .or_insert(AnchorRetry {
                attempts: 0,
                node: node_name.clone(),
            });
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_devmgr_anchor_launches_total", &[])
                .inc();
            let ctx = self
                .anchor_ctx
                .get(gpuid)
                .copied()
                .unwrap_or(TraceCtx::NONE);
            self.telemetry.trace_event_in(
                now,
                ctx,
                "devmgr",
                "anchor_launch",
                &[("gpuid", gpuid.to_string())],
            );
        }
        // An injected launch fault (image pull error, plugin hiccup, …)
        // consumes the attempt before any pod reaches the cluster.
        let injected_fail = self
            .chaos
            .as_mut()
            .map(|c| c.anchor_launch_fails())
            .unwrap_or(false);
        if injected_fail {
            self.on_anchor_launch_failed(now, gpuid.clone(), out, notices);
            return;
        }
        // "The sole purpose of this pod is to allocate the GPU without
        // running any workload" (§4.4): negligible CPU/memory, one GPU.
        let mut spec = PodSpec::new(
            "kubeshare/vgpu-anchor",
            ResourceList::cpu_mem(0, 0).with_extended(NVIDIA_GPU, 1),
        );
        spec.node_name = node_name;
        let mut cluster_out = Vec::new();
        let pod = self
            .cluster
            .submit_pod(now, format!("anchor-{gpuid}"), spec, &mut cluster_out);
        lift(cluster_out, out);
        if let Some(ctx) = self.anchor_ctx.get(gpuid) {
            self.cluster.set_pod_trace(pod, *ctx);
        }
        self.anchor_vgpu.insert(pod, gpuid.clone());
        self.vgpu_anchor.insert(gpuid.clone(), pod);
    }

    /// One anchor launch attempt failed. Retry with capped exponential
    /// backoff; past the cap, give the vGPU up and degrade its tenants to
    /// the surviving pool.
    fn on_anchor_launch_failed(
        &mut self,
        now: SimTime,
        gpuid: GpuId,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let Some(retry) = self.anchor_retry.get_mut(&gpuid) else {
            return; // vGPU already gone (node failure raced the retry)
        };
        retry.attempts += 1;
        let attempts = retry.attempts;
        if attempts > self.cfg.anchor_max_retries {
            self.give_up_vgpu(now, &gpuid, "anchor launch retries exhausted", out, notices);
            return;
        }
        // base * 2^(attempts-1), capped.
        let backoff = self
            .cfg
            .anchor_retry_base
            .mul_f64(f64::from(1u32 << (attempts - 1).min(16)))
            .min(self.cfg.anchor_retry_cap);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_devmgr_anchor_backoffs_total", &[])
                .inc();
            let ctx = self
                .anchor_ctx
                .get(&gpuid)
                .copied()
                .unwrap_or(TraceCtx::NONE);
            self.telemetry.trace_event_in(
                now,
                ctx,
                "devmgr",
                "anchor_backoff",
                &[
                    ("gpuid", gpuid.to_string()),
                    ("attempt", attempts.to_string()),
                ],
            );
        }
        self.next_ticket += 1;
        self.retry_tickets.insert(self.next_ticket, gpuid);
        out.push((
            now + backoff,
            KsEvent::RetryAnchor {
                ticket: self.next_ticket,
            },
        ));
    }

    fn on_retry_anchor(
        &mut self,
        now: SimTime,
        ticket: u64,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let Some(gpuid) = self.retry_tickets.remove(&ticket) else {
            return;
        };
        // Only relaunch while the vGPU still exists, is still waiting on
        // its anchor, and has no live anchor pod (a newer launch or a node
        // failure may have raced the backoff timer).
        let still_creating = self
            .pool
            .get(&gpuid)
            .map(|d| d.uuid.is_none() && !d.releasing)
            .unwrap_or(false);
        if !still_creating || self.vgpu_anchor.contains_key(&gpuid) {
            return;
        }
        let node = self.anchor_retry.get(&gpuid).and_then(|r| r.node.clone());
        self.launch_anchor(now, &gpuid, node, out, notices);
    }

    /// Removes a vGPU that can no longer be materialized and re-queues its
    /// tenants through Algorithm 1 so they land on the surviving pool.
    fn give_up_vgpu(
        &mut self,
        now: SimTime,
        gpuid: &GpuId,
        reason: &str,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let mut displaced: Vec<Uid> = self
            .pool
            .get(gpuid)
            .map(|d| d.attached.keys().copied().collect())
            .unwrap_or_default();
        for sp in &displaced {
            self.pool.detach(gpuid, *sp);
        }
        for sp in self.waiting.remove(gpuid).unwrap_or_default() {
            if !displaced.contains(&sp) {
                displaced.push(sp);
            }
        }
        if let Some(anchor) = self.vgpu_anchor.remove(gpuid) {
            self.anchor_vgpu.remove(&anchor);
        }
        self.anchor_retry.remove(gpuid);
        self.anchor_ctx.remove(gpuid);
        self.pool.remove(gpuid);
        self.note_vgpu_churn(now, "vgpu_lost", gpuid);
        notices.push(KsNotice::VgpuLost {
            gpuid: gpuid.clone(),
            reason: reason.into(),
        });
        for sp in displaced {
            // A sharePod that explicitly pinned this GPUID would just
            // re-create the same doomed vGPU; reject it instead.
            let pinned = self
                .sharepods
                .get(sp)
                .map(|s| s.spec.gpuid.as_ref() == Some(gpuid))
                .unwrap_or(false);
            if pinned {
                self.transition_sp(sp, SharePodPhase::Rejected, |s| {
                    s.status.bound_gpuid = None;
                    s.status.message = Some(reason.to_string());
                });
                self.close_sp_trace(now, sp, "rejected");
                notices.push(KsNotice::SharePodRejected {
                    sp,
                    reason: reason.to_string(),
                });
            } else {
                self.requeue_sharepod(now, sp, out, notices);
            }
        }
    }

    fn on_create_pod(
        &mut self,
        now: SimTime,
        sp: Uid,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let Some(sharepod) = self.sharepods.get(sp) else {
            return;
        };
        if sharepod.status.phase != SharePodPhase::Starting {
            return; // deleted or re-queued meanwhile
        }
        let Some(gpuid) = sharepod.status.bound_gpuid.clone() else {
            notices.push(KsNotice::Fault {
                error: SystemError::UnboundSharePod { sp },
            });
            return;
        };
        let Some(device) = self.pool.get(&gpuid) else {
            // The vGPU vanished between scheduling and pod creation (node
            // failure); send the sharePod back through Algorithm 1.
            self.requeue_sharepod(now, sp, out, notices);
            return;
        };
        let (Some(node), Some(uuid)) = (device.node.clone(), device.uuid.clone()) else {
            notices.push(KsNotice::Fault {
                error: SystemError::VgpuNotReady { gpuid },
            });
            return;
        };
        let share = sharepod.spec.share;

        // DevMgr performs the explicit binding: pin the pod to the vGPU's
        // node and set NVIDIA_VISIBLE_DEVICES to the physical UUID. The pod
        // does NOT request `nvidia.com/gpu` — the anchor already holds it.
        let mut pod_spec = sharepod.spec.pod.clone();
        pod_spec.node_name = Some(node);
        pod_spec
            .env
            .insert("NVIDIA_VISIBLE_DEVICES".to_string(), uuid);
        pod_spec
            .env
            .insert("KUBESHARE_GPUID".to_string(), gpuid.to_string());
        pod_spec.env.insert(
            "KUBESHARE_GPU_REQUEST".to_string(),
            format!("{}", share.request),
        );
        pod_spec.env.insert(
            "KUBESHARE_GPU_LIMIT".to_string(),
            format!("{}", share.limit),
        );
        pod_spec
            .env
            .insert("KUBESHARE_GPU_MEM".to_string(), format!("{}", share.mem));
        // LD_PRELOAD of the vGPU device library (the install step of §4.4).
        pod_spec.env.insert(
            "LD_PRELOAD".to_string(),
            "/kubeshare/library/libgemhook.so.1".to_string(),
        );

        let name = sharepod.meta.name.clone();
        let mut cluster_out = Vec::new();
        let pod = self
            .cluster
            .submit_pod(now, format!("{name}-pod"), pod_spec, &mut cluster_out);
        lift(cluster_out, out);
        let ctx = self.sp_ctx(sp);
        if !ctx.is_none() {
            self.cluster.set_pod_trace(pod, ctx);
        }
        self.pod_sp.insert(pod, sp);
        self.sharepods.mutate(sp, |s| s.status.pod_uid = Some(pod));
    }

    fn apply_pool_policy(
        &mut self,
        now: SimTime,
        gpuid: &GpuId,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let release = match self.cfg.pool_policy {
            PoolPolicy::OnDemand => true,
            PoolPolicy::Reservation { max_idle } => self.pool.idle_count() > max_idle,
            PoolPolicy::Hybrid { max_idle, idle_ttl } => {
                if self.pool.idle_count() > max_idle {
                    true
                } else {
                    // Keep it for now, but start the idle TTL clock.
                    self.next_ticket += 1;
                    self.idle_tickets.insert(self.next_ticket, gpuid.clone());
                    out.push((
                        now + idle_ttl,
                        KsEvent::ReleaseIdleVgpu {
                            ticket: self.next_ticket,
                        },
                    ));
                    false
                }
            }
        };
        if !release {
            return;
        }
        self.release_vgpu(now, gpuid, out, notices);
    }

    /// Hands the GPU behind `gpuid` back to Kubernetes.
    fn release_vgpu(
        &mut self,
        now: SimTime,
        gpuid: &GpuId,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        // Hide the vGPU from the scheduler for the rest of its teardown —
        // otherwise a sharePod could bind during the anchor's termination
        // window and the GPU would vanish under it.
        self.pool.mark_releasing(gpuid);
        // A creating vGPU whose tenants all left: its anchor may not even
        // be running yet; delete it regardless — the cluster handles both.
        if let Some(&anchor) = self.vgpu_anchor.get(gpuid) {
            let mut cluster_out = Vec::new();
            let mut cluster_notes = Vec::new();
            self.cluster
                .delete_pod(now, anchor, &mut cluster_out, &mut cluster_notes);
            lift(cluster_out, out);
            self.process_cluster_notices(now, cluster_notes, out, notices);
        }
    }

    // ---- controller reconciliation on cluster watch events ----

    fn process_cluster_notices(
        &mut self,
        now: SimTime,
        cluster_notes: Vec<ClusterNotice>,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        for note in cluster_notes {
            match &note {
                ClusterNotice::PodRunning { pod } => {
                    if let Some(gpuid) = self.anchor_vgpu.get(pod).cloned() {
                        self.on_anchor_running(now, *pod, gpuid, out, notices);
                    } else if let Some(&sp) = self.pod_sp.get(pod) {
                        self.on_sharepod_pod_running(now, sp, notices);
                    } else {
                        notices.push(KsNotice::Cluster(note));
                    }
                }
                ClusterNotice::PodDeleted { pod } => {
                    if let Some(gpuid) = self.anchor_vgpu.remove(pod) {
                        self.vgpu_anchor.remove(&gpuid);
                        self.anchor_ctx.remove(&gpuid);
                        self.pool.remove(&gpuid);
                        self.note_vgpu_churn(now, "vgpu_released", &gpuid);
                        notices.push(KsNotice::VgpuReleased { gpuid });
                    } else if let Some(sp) = self.pod_sp.remove(pod) {
                        // A preempted pod's sharePod was reset to `Pending`
                        // and detached when the eviction ran; its deletion
                        // notice is old news and must not terminate it.
                        if !self.preempted_pods.remove(pod) {
                            self.on_sharepod_pod_deleted(now, sp, out, notices);
                        }
                    } else {
                        notices.push(KsNotice::Cluster(note));
                    }
                }
                ClusterNotice::PodFailed { pod, reason } => {
                    if let Some(gpuid) = self.anchor_vgpu.remove(pod) {
                        // The anchor never made it (admission race, crash
                        // during start): treat as a failed launch attempt
                        // and back off.
                        self.vgpu_anchor.remove(&gpuid);
                        self.on_anchor_launch_failed(now, gpuid, out, notices);
                    } else if let Some(sp) = self.pod_sp.remove(pod) {
                        if self.preempted_pods.remove(pod) {
                            // The pod died while preemption teardown was in
                            // flight; the sharePod is already `Pending`.
                            continue;
                        }
                        if self.cfg.restart_policy == RestartPolicy::OnFailure {
                            // Service semantics: give the crashed
                            // container's demand back to its vGPU, then
                            // send the sharePod through Algorithm 1 again.
                            if let Some(gpuid) = self
                                .sharepods
                                .get(sp)
                                .and_then(|s| s.status.bound_gpuid.clone())
                            {
                                if let Some(device) = self.pool.get(&gpuid) {
                                    if let (Some(node), Some(uuid)) =
                                        (device.node.clone(), device.uuid.clone())
                                    {
                                        notices.push(KsNotice::SharePodStopped {
                                            sp,
                                            gpuid: gpuid.clone(),
                                            node,
                                            uuid,
                                        });
                                    }
                                    let became_idle = self.pool.detach(&gpuid, sp);
                                    if became_idle {
                                        self.apply_pool_policy(now, &gpuid, out, notices);
                                    }
                                } else {
                                    notices.push(KsNotice::Fault {
                                        error: SystemError::MissingVgpu { gpuid },
                                    });
                                }
                            }
                            self.requeue_sharepod(now, sp, out, notices);
                            continue;
                        }
                        self.transition_sp(sp, SharePodPhase::Rejected, |s| {
                            s.status.message = Some(reason.clone());
                        });
                        self.close_sp_trace(now, sp, "failed");
                        notices.push(KsNotice::SharePodRejected {
                            sp,
                            reason: reason.clone(),
                        });
                        // The crashed container's demand returns to the
                        // vGPU; without this, its capacity would leak.
                        if let Some(gpuid) = self
                            .sharepods
                            .get(sp)
                            .and_then(|s| s.status.bound_gpuid.clone())
                        {
                            let Some(device) = self.pool.get(&gpuid) else {
                                // The vGPU died first (node failure raced
                                // the crash); nothing left to return to.
                                notices.push(KsNotice::Fault {
                                    error: SystemError::MissingVgpu { gpuid },
                                });
                                continue;
                            };
                            if let (Some(node), Some(uuid)) =
                                (device.node.clone(), device.uuid.clone())
                            {
                                notices.push(KsNotice::SharePodStopped {
                                    sp,
                                    gpuid: gpuid.clone(),
                                    node,
                                    uuid,
                                });
                            }
                            let became_idle = self.pool.detach(&gpuid, sp);
                            if became_idle {
                                self.apply_pool_policy(now, &gpuid, out, notices);
                            }
                        }
                    } else {
                        notices.push(KsNotice::Cluster(note));
                    }
                }
                ClusterNotice::PodUnschedulable { pod } => {
                    if !self.anchor_vgpu.contains_key(pod) && !self.pod_sp.contains_key(pod) {
                        notices.push(KsNotice::Cluster(note));
                    }
                    // Anchors and sharePod pods just wait in the cluster's
                    // retry queue.
                }
            }
        }
    }

    fn on_anchor_running(
        &mut self,
        now: SimTime,
        anchor_pod: Uid,
        gpuid: GpuId,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        // DevMgr "obtains the actual device UUID from the environment
        // variable inside the launched container" (§4.4).
        let Some(pod) = self.cluster.pod(anchor_pod) else {
            notices.push(KsNotice::Fault {
                error: SystemError::MissingAnchor { pod: anchor_pod },
            });
            return;
        };
        let uuid = pod.visible_devices().map(str::to_string);
        let node = pod.status.node_name.clone();
        let (Some(uuid), Some(node)) = (uuid, node) else {
            // A running anchor without a device/node assignment is an
            // admission bug; contain it and let the retry path relaunch.
            notices.push(KsNotice::Fault {
                error: SystemError::VgpuNotReady {
                    gpuid: gpuid.clone(),
                },
            });
            self.anchor_vgpu.remove(&anchor_pod);
            self.vgpu_anchor.remove(&gpuid);
            self.on_anchor_launch_failed(now, gpuid, out, notices);
            return;
        };
        self.anchor_retry.remove(&gpuid);
        self.anchor_ctx.remove(&gpuid);
        self.pool.mark_ready(&gpuid, node.clone(), uuid.clone());
        self.note_vgpu_churn(now, "vgpu_created", &gpuid);
        let uuid_for_spans = uuid.clone();
        notices.push(KsNotice::VgpuCreated {
            gpuid: gpuid.clone(),
            node,
            uuid,
        });
        // Release any sharePods parked on this vGPU.
        for sp in self.waiting.remove(&gpuid).unwrap_or_default() {
            if self
                .sharepods
                .get(sp)
                .map(|s| s.status.phase == SharePodPhase::AwaitingVgpu)
                .unwrap_or(false)
            {
                self.transition_sp(sp, SharePodPhase::Starting, |_| {});
                // The vGPU-creation wait ends; the pod-creation span opens.
                if let Some(tr) = self.sp_trace.get_mut(&sp) {
                    let span = std::mem::replace(&mut tr.vgpu_span, SpanId::NONE);
                    self.telemetry
                        .span_end(now, span, &[("uuid", uuid_for_spans.clone())]);
                }
                self.open_pod_span(now, sp, &gpuid);
                out.push((now + self.cfg.vgpu_query_latency, KsEvent::CreatePod { sp }));
            }
        }
    }

    fn on_sharepod_pod_running(&mut self, now: SimTime, sp: Uid, notices: &mut Vec<KsNotice>) {
        let Some(sharepod) = self.sharepods.get(sp) else {
            return;
        };
        let Some(gpuid) = sharepod.status.bound_gpuid.clone() else {
            notices.push(KsNotice::Fault {
                error: SystemError::UnboundSharePod { sp },
            });
            return;
        };
        let Some(device) = self.pool.get(&gpuid) else {
            notices.push(KsNotice::Fault {
                error: SystemError::MissingVgpu { gpuid },
            });
            return;
        };
        let (Some(node), Some(uuid)) = (device.node.clone(), device.uuid.clone()) else {
            notices.push(KsNotice::Fault {
                error: SystemError::VgpuNotReady { gpuid },
            });
            return;
        };
        let submitted = sharepod.meta.created_at;
        notices.push(KsNotice::SharePodRunning {
            sp,
            gpuid,
            node,
            uuid,
            share: sharepod.spec.share,
        });
        self.transition_sp(sp, SharePodPhase::Running, |_| {});
        if self.telemetry.is_enabled() {
            // Submission-to-running: the end-to-end startup latency the
            // `sharepod_startup_p99` SLO watches.
            self.telemetry
                .histogram_seconds("ks_sharepod_startup_seconds", &[])
                .observe(now.saturating_since(submitted).as_secs_f64());
            if let Some(tr) = self.sp_trace.get_mut(&sp) {
                let span = std::mem::replace(&mut tr.pod_span, SpanId::NONE);
                self.telemetry.span_end(now, span, &[]);
            }
            let ctx = self.sp_ctx(sp);
            self.telemetry.trace_event_in(
                now,
                ctx,
                "sched",
                "sharepod_running",
                &[("sp", sp.to_string())],
            );
        }
    }

    fn on_sharepod_pod_deleted(
        &mut self,
        now: SimTime,
        sp: Uid,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let Some(sharepod) = self.sharepods.get(sp) else {
            return;
        };
        let Some(gpuid) = sharepod.status.bound_gpuid.clone() else {
            self.transition_sp(sp, SharePodPhase::Terminated, |_| {});
            self.close_sp_trace(now, sp, "stopped");
            notices.push(KsNotice::Fault {
                error: SystemError::UnboundSharePod { sp },
            });
            return;
        };
        let Some(device) = self.pool.get(&gpuid) else {
            self.transition_sp(sp, SharePodPhase::Terminated, |_| {});
            self.close_sp_trace(now, sp, "stopped");
            notices.push(KsNotice::Fault {
                error: SystemError::MissingVgpu { gpuid },
            });
            return;
        };
        let node = device.node.clone().unwrap_or_default();
        let uuid = device.uuid.clone().unwrap_or_default();
        self.transition_sp(sp, SharePodPhase::Terminated, |_| {});
        self.close_sp_trace(now, sp, "stopped");
        notices.push(KsNotice::SharePodStopped {
            sp,
            gpuid: gpuid.clone(),
            node,
            uuid,
        });
        let became_idle = self.pool.detach(&gpuid, sp);
        if became_idle {
            self.apply_pool_policy(now, &gpuid, out, notices);
        }
    }
}

fn lift(cluster_out: ks_cluster::sim::ClusterEmit, out: &mut KsEmit) {
    for (at, ev) in cluster_out {
        out.push((at, KsEvent::Cluster(ev)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::Locality;
    use crate::pool::VgpuPhase;
    use ks_cluster::api::NodeConfig;
    use ks_cluster::device_plugin::UnitAssignPolicy;
    use ks_cluster::latency::LatencyModel;
    use ks_cluster::scheduler::ScorePolicy;
    use ks_cluster::sim::GpuPluginKind;
    use ks_sim_core::prelude::*;

    struct World {
        ks: KubeShareSystem,
        notices: Vec<(SimTime, KsNotice)>,
    }

    struct Ev(KsEvent);

    impl SimEvent<World> for Ev {
        fn fire(self, now: SimTime, w: &mut World, q: &mut EventQueue<Self>) {
            let mut out = Vec::new();
            let mut notes = Vec::new();
            w.ks.handle(now, self.0, &mut out, &mut notes);
            for n in notes {
                w.notices.push((now, n));
            }
            for (at, e) in out {
                q.schedule_at(at, Ev(e));
            }
        }
    }

    fn cluster_cfg(nodes: usize, gpus_per_node: u32) -> ClusterConfig {
        ClusterConfig {
            nodes: (0..nodes)
                .map(|i| NodeConfig {
                    name: format!("node-{i}"),
                    cpu_millis: 36_000,
                    memory_bytes: 244 << 30,
                    gpus: gpus_per_node,
                    gpu_memory_bytes: 16 << 30,
                })
                .collect(),
            latency: LatencyModel::default(),
            gpu_plugin: GpuPluginKind::WholeDevice,
            assign_policy: UnitAssignPolicy::Sequential,
            score: ScorePolicy::LeastAllocated,
        }
    }

    fn engine(nodes: usize, gpus: u32) -> Engine<World, Ev> {
        Engine::new(World {
            ks: KubeShareSystem::new(cluster_cfg(nodes, gpus), KsConfig::default()),
            notices: Vec::new(),
        })
    }

    fn sp_spec(request: f64, limit: f64, mem: f64) -> SharePodSpec {
        SharePodSpec::new(
            PodSpec::new("tf:2.1", ResourceList::cpu_mem(1000, 1 << 30)),
            ShareSpec::new(request, limit, mem).unwrap(),
        )
    }

    fn seed(eng: &mut Engine<World, Ev>, out: KsEmit) {
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
    }

    fn submit(eng: &mut Engine<World, Ev>, name: &str, spec: SharePodSpec) -> Uid {
        let now = eng.now();
        let mut out = Vec::new();
        let uid = eng.world.ks.submit_sharepod(now, name, spec, &mut out);
        seed(eng, out);
        uid
    }

    fn running_notice(w: &World, sp: Uid) -> Option<&(SimTime, KsNotice)> {
        w.notices
            .iter()
            .find(|(_, n)| matches!(n, KsNotice::SharePodRunning { sp: s, .. } if *s == sp))
    }

    #[test]
    fn drain_vgpu_requeues_tenants_onto_fresh_device() {
        let mut eng = engine(2, 1);
        let telemetry = ks_telemetry::Telemetry::enabled();
        eng.world.ks.set_telemetry(telemetry.clone());
        // Two tenants share one vGPU (best-fit packs the second onto the
        // first's device).
        let a = submit(&mut eng, "a", sp_spec(0.4, 1.0, 0.3));
        let b = submit(&mut eng, "b", sp_spec(0.4, 1.0, 0.3));
        eng.run_to_completion(20_000);
        let bound_a = eng
            .world
            .ks
            .sharepod(a)
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        let bound_b = eng
            .world
            .ks
            .sharepod(b)
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        assert_eq!(bound_a, bound_b, "tenants co-located for the drain");

        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        let drained = eng.world.ks.drain_vgpu(now, &bound_a, &mut out, &mut notes);
        assert_eq!(drained, 2);
        // Draining a device already being released is a no-op.
        assert_eq!(
            eng.world.ks.drain_vgpu(now, &bound_a, &mut out, &mut notes),
            0
        );
        // Unknown device: no-op.
        assert_eq!(
            eng.world
                .ks
                .drain_vgpu(now, &GpuId::named("nope"), &mut out, &mut notes),
            0
        );
        for n in notes {
            eng.world.notices.push((now, n));
        }
        seed(&mut eng, out);
        eng.run_to_completion(40_000);

        // Both tenants came back Running on a fresh device; the drained
        // one was released and left the pool.
        for sp in [a, b] {
            let s = eng.world.ks.sharepod(sp).unwrap();
            assert_eq!(s.status.phase, SharePodPhase::Running);
            assert_ne!(s.status.bound_gpuid.as_ref(), Some(&bound_a));
        }
        assert!(eng.world.ks.pool().get(&bound_a).is_none());
        assert!(eng
            .world
            .notices
            .iter()
            .any(|(_, n)| matches!(n, KsNotice::VgpuReleased { gpuid } if *gpuid == bound_a)));
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_value("ks_vgpu_drains_total", &[]), Some(1));
        assert_eq!(snap.counter_value("ks_sched_requeues_total", &[]), Some(2));
        eng.world.ks.pool().verify_indexes().unwrap();
        eng.world.ks.verify_sp_tally().unwrap();
    }

    #[test]
    fn cordon_steers_placement_and_counts() {
        let mut eng = engine(2, 1);
        let telemetry = ks_telemetry::Telemetry::enabled();
        eng.world.ks.set_telemetry(telemetry.clone());
        // Cordon node-0: the first sharePod's vGPU must land on node-1.
        assert!(eng.world.ks.cordon_node("node-0"));
        assert!(!eng.world.ks.cordon_node("node-0"), "idempotent");
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(20_000);
        let bound = eng
            .world
            .ks
            .sharepod(a)
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        assert_eq!(
            eng.world.ks.pool().get(&bound).unwrap().node.as_deref(),
            Some("node-1")
        );
        let now = eng.now();
        let mut out = Vec::new();
        assert!(eng.world.ks.uncordon_node(now, "node-0", &mut out));
        assert!(!eng.world.ks.uncordon_node(now, "node-0", &mut out));
        seed(&mut eng, out);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter_value("ks_node_cordons_total", &[("node", "node-0")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("ks_node_uncordons_total", &[("node", "node-0")]),
            Some(1)
        );
        assert_eq!(
            snap.gauge_value("ks_cluster_cordoned_nodes", &[]),
            Some(0.0)
        );
        eng.world.ks.cluster.verify_node_rank().unwrap();
    }

    #[test]
    fn drain_pending_schedules_whole_queue_in_one_pass() {
        for mode in [SchedMode::Reference, SchedMode::Indexed, SchedMode::Auto] {
            let mut eng = Engine::new(World {
                ks: KubeShareSystem::new(
                    cluster_cfg(2, 2),
                    KsConfig {
                        sched_mode: mode,
                        ..KsConfig::default()
                    },
                ),
                notices: Vec::new(),
            });
            let telemetry = ks_telemetry::Telemetry::enabled();
            eng.world.ks.set_telemetry(telemetry.clone());
            let sps: Vec<Uid> = (0..4)
                .map(|i| submit(&mut eng, &format!("sp-{i}"), sp_spec(0.5, 1.0, 0.5)))
                .collect();
            // Drain before any queued SchedDecide event has fired: every
            // sharePod is decided now, in one batch.
            let now = eng.now();
            let mut out = Vec::new();
            let mut notes = Vec::new();
            let n = eng.world.ks.drain_pending(now, &mut out, &mut notes);
            assert_eq!(n, 4);
            seed(&mut eng, out);
            // The stale SchedDecide events no-op; the batch's binds drive
            // everything to Running.
            eng.run_to_completion(20_000);
            for sp in &sps {
                assert_eq!(
                    eng.world.ks.sharepod(*sp).unwrap().status.phase,
                    SharePodPhase::Running,
                    "mode {mode:?}"
                );
            }
            // A second drain sees an empty queue.
            let mut out = Vec::new();
            let mut notes = Vec::new();
            assert_eq!(
                eng.world.ks.drain_pending(eng.now(), &mut out, &mut notes),
                0
            );
            let snap = telemetry.snapshot();
            assert!(
                snap.histogram_count_sum("sched_batch_len", &[]).is_some(),
                "batch length histogram recorded"
            );
            // Small pools resolve `Auto` to the reference path, and the
            // decision histogram is labeled with the path that ran.
            let mode_label = mode.resolve(eng.world.ks.pool().len()).label();
            let (count, _) = snap
                .histogram_count_sum("sched_decision_ns", &[("mode", mode_label)])
                .expect("decision timing histogram recorded");
            assert!(count >= 4, "one timing sample per decision");
        }
    }

    #[test]
    fn preemption_evicts_running_sharepod_and_higher_priority_wins_drain() {
        let mut eng = engine(1, 1);
        // A low-priority sharePod fills the only GPU.
        let low = submit(&mut eng, "low", sp_spec(1.0, 1.0, 1.0).with_priority(0));
        eng.run_to_completion(20_000);
        assert_eq!(
            eng.world.ks.sharepod(low).unwrap().status.phase,
            SharePodPhase::Running
        );

        // Preempting a Pending or unknown sharePod is refused.
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        assert!(!eng
            .world
            .ks
            .preempt_sharepod(now, Uid(999), &mut out, &mut notes));

        // Evict it: synchronously back to Pending, binding gone, capacity
        // detached, one preemption notice surfaced.
        assert!(eng
            .world
            .ks
            .preempt_sharepod(now, low, &mut out, &mut notes));
        let s = eng.world.ks.sharepod(low).unwrap();
        assert_eq!(s.status.phase, SharePodPhase::Pending);
        assert!(s.status.bound_gpuid.is_none());
        assert!(s.status.pod_uid.is_none());
        assert_eq!(
            notes
                .iter()
                .filter(|n| matches!(n, KsNotice::SharePodPreempted { sp, .. } if *sp == low))
                .count(),
            1
        );
        assert!(notes
            .iter()
            .any(|n| matches!(n, KsNotice::SharePodStopped { sp, .. } if *sp == low)));
        // A second preemption of the now-Pending sharePod is a no-op.
        assert!(!eng
            .world
            .ks
            .preempt_sharepod(now, low, &mut out, &mut notes));
        for n in notes {
            eng.world.notices.push((now, n));
        }
        seed(&mut eng, out);

        // A high-priority arrival drains before the evicted sharePod even
        // though its uid is larger, and ends up owning the GPU.
        let high = submit(&mut eng, "high", sp_spec(1.0, 1.0, 1.0).with_priority(5));
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        assert_eq!(eng.world.ks.drain_pending(now, &mut out, &mut notes), 2);
        seed(&mut eng, out);
        eng.run_to_completion(60_000);
        assert_eq!(
            eng.world.ks.sharepod(high).unwrap().status.phase,
            SharePodPhase::Running,
            "preemptor claims the freed GPU"
        );
        // The victim lost the contest: it waits on a vGPU whose anchor
        // cannot schedule while the preemptor holds the physical GPU.
        assert_ne!(
            eng.world.ks.sharepod(low).unwrap().status.phase,
            SharePodPhase::Running
        );
        // The old backing pod's deletion was swallowed: the victim was
        // never driven to Terminated.
        assert_ne!(
            eng.world.ks.sharepod(low).unwrap().status.phase,
            SharePodPhase::Terminated
        );
        // Preemption churns phases through every transition path; the
        // incremental gauge tallies must agree with a recount.
        eng.world.ks.verify_sp_tally().unwrap();
        eng.world.ks.pool().verify_indexes().unwrap();
    }

    #[test]
    fn sharepod_end_to_end_with_vgpu_creation() {
        let mut eng = engine(1, 1);
        let sp = submit(&mut eng, "train", sp_spec(0.5, 1.0, 0.5));
        assert_eq!(eng.run_to_completion(10_000), RunOutcome::Drained);
        let (t, n) = running_notice(&eng.world, sp).expect("sharePod ran");
        let KsNotice::SharePodRunning {
            gpuid, node, uuid, ..
        } = n
        else {
            unreachable!()
        };
        assert_eq!(node, "node-0");
        assert!(uuid.starts_with("GPU-"));
        assert_eq!(
            eng.world.ks.pool().get(gpuid).unwrap().phase,
            VgpuPhase::Active
        );
        // Creation needed anchor pod + sharePod pod: roughly twice the
        // native creation time (paper Fig. 10).
        let native = LatencyModel::default().base_creation().as_secs_f64();
        let t = t.as_secs_f64();
        assert!(
            t > 1.8 * native && t < 2.6 * native,
            "creation took {t}s vs native {native}s"
        );
    }

    #[test]
    fn second_sharepod_reuses_vgpu_and_is_faster() {
        let mut eng = engine(1, 1);
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);
        let t_a = running_notice(&eng.world, a).unwrap().0;
        let start_b = eng.now();
        let b = submit(&mut eng, "b", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);
        let t_b = running_notice(&eng.world, b).unwrap().0;
        let dur_a = t_a.as_secs_f64();
        let dur_b = (t_b - start_b).as_secs_f64();
        assert!(
            dur_b < 0.7 * dur_a,
            "reuse must skip anchor creation: {dur_b} vs {dur_a}"
        );
        // Both share the same vGPU.
        let ga = eng.world.ks.sharepod(a).unwrap().status.bound_gpuid.clone();
        let gb = eng.world.ks.sharepod(b).unwrap().status.bound_gpuid.clone();
        assert_eq!(ga, gb);
        assert_eq!(eng.world.ks.pool().len(), 1);
    }

    #[test]
    fn on_demand_policy_releases_idle_vgpu() {
        let mut eng = engine(1, 1);
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world.ks.delete_sharepod(now, a, &mut out, &mut notes);
        seed(&mut eng, out);
        for n in notes {
            eng.world.notices.push((now, n));
        }
        eng.run_to_completion(10_000);
        assert!(eng.world.ks.pool().is_empty(), "vGPU released on idle");
        assert!(eng
            .world
            .notices
            .iter()
            .any(|(_, n)| matches!(n, KsNotice::VgpuReleased { .. })));
        // The physical GPU is free for native pods again.
        let free = eng.world.ks.cluster.node_free("node-0").unwrap();
        assert_eq!(free.extended_count(NVIDIA_GPU), 1);
    }

    #[test]
    fn reservation_policy_keeps_idle_vgpu() {
        let mut eng = Engine::new(World {
            ks: KubeShareSystem::new(
                cluster_cfg(1, 1),
                KsConfig {
                    pool_policy: PoolPolicy::Reservation { max_idle: 1 },
                    ..KsConfig::default()
                },
            ),
            notices: Vec::new(),
        });
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world.ks.delete_sharepod(now, a, &mut out, &mut notes);
        seed(&mut eng, out);
        eng.run_to_completion(10_000);
        assert_eq!(eng.world.ks.pool().len(), 1, "idle vGPU retained");
        assert_eq!(eng.world.ks.pool().idle_count(), 1);
        // But the GPU is still held from Kubernetes' point of view.
        let free = eng.world.ks.cluster.node_free("node-0").unwrap();
        assert_eq!(free.extended_count(NVIDIA_GPU), 0);
    }

    #[test]
    fn crashed_sharepod_pod_returns_capacity_to_pool() {
        let mut eng = engine(1, 1);
        let a = submit(&mut eng, "a", sp_spec(0.6, 1.0, 0.6));
        let b = submit(&mut eng, "b", sp_spec(0.4, 1.0, 0.4));
        eng.run_to_completion(10_000);
        assert_eq!(
            eng.world.ks.sharepod(a).unwrap().status.phase,
            SharePodPhase::Running
        );
        // Crash a's backing pod (container exit), bypassing deletion.
        let pod = eng.world.ks.sharepod(a).unwrap().status.pod_uid.unwrap();
        let now = eng.now();
        let mut cluster_out = Vec::new();
        let mut cluster_notes = Vec::new();
        eng.world
            .ks
            .cluster
            .crash_pod(now, pod, "OOMKilled", &mut cluster_out, &mut cluster_notes);
        // Route the crash notice through the KubeShare controllers the way
        // the embedding world would.
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world
            .ks
            .process_cluster_notices(now, cluster_notes, &mut out, &mut notes);
        seed(&mut eng, out);
        eng.run_to_completion(10_000);
        assert_eq!(
            eng.world.ks.sharepod(a).unwrap().status.phase,
            SharePodPhase::Rejected
        );
        // The vGPU's capacity came back: a new 0.6 sharePod fits again.
        let c = submit(&mut eng, "c", sp_spec(0.6, 1.0, 0.6));
        eng.run_to_completion(20_000);
        assert_eq!(
            eng.world.ks.sharepod(c).unwrap().status.phase,
            SharePodPhase::Running
        );
        // b and c share the single vGPU.
        assert_eq!(eng.world.ks.pool().len(), 1);
        let _ = b;
    }

    #[test]
    fn hybrid_policy_keeps_then_releases_after_ttl() {
        let mut eng = Engine::new(World {
            ks: KubeShareSystem::new(
                cluster_cfg(1, 1),
                KsConfig {
                    pool_policy: PoolPolicy::Hybrid {
                        max_idle: 2,
                        idle_ttl: SimDuration::from_secs(30),
                    },
                    ..KsConfig::default()
                },
            ),
            notices: Vec::new(),
        });
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world.ks.delete_sharepod(now, a, &mut out, &mut notes);
        seed(&mut eng, out);
        // Shortly after going idle, the vGPU is still held…
        eng.run_until(now + SimDuration::from_secs(10));
        assert_eq!(eng.world.ks.pool().idle_count(), 1, "kept inside TTL");
        // …but once the TTL passes it is released back to Kubernetes.
        eng.run_to_completion(10_000);
        assert!(eng.world.ks.pool().is_empty(), "released after TTL");
        let free = eng.world.ks.cluster.node_free("node-0").unwrap();
        assert_eq!(free.extended_count(NVIDIA_GPU), 1);
    }

    #[test]
    fn hybrid_ttl_cancelled_by_reuse() {
        let mut eng = Engine::new(World {
            ks: KubeShareSystem::new(
                cluster_cfg(1, 1),
                KsConfig {
                    pool_policy: PoolPolicy::Hybrid {
                        max_idle: 2,
                        idle_ttl: SimDuration::from_secs(30),
                    },
                    ..KsConfig::default()
                },
            ),
            notices: Vec::new(),
        });
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world.ks.delete_sharepod(now, a, &mut out, &mut notes);
        seed(&mut eng, out);
        eng.run_until(now + SimDuration::from_secs(5));
        // A new sharePod reuses the idle vGPU before the TTL fires.
        let b = submit(&mut eng, "b", sp_spec(0.5, 1.0, 0.5));
        eng.run_until(now + SimDuration::from_secs(60));
        assert_eq!(
            eng.world.ks.sharepod(b).unwrap().status.phase,
            SharePodPhase::Running,
            "reused the cached vGPU"
        );
        assert_eq!(eng.world.ks.pool().len(), 1, "stale TTL must not kill it");
    }

    #[test]
    fn anti_affinity_forces_distinct_vgpus() {
        let mut eng = engine(1, 2);
        let loc = Locality::none().with_anti_affinity("noisy");
        let a = submit(
            &mut eng,
            "a",
            sp_spec(0.4, 1.0, 0.4).with_locality(loc.clone()),
        );
        let b = submit(&mut eng, "b", sp_spec(0.4, 1.0, 0.4).with_locality(loc));
        eng.run_to_completion(20_000);
        let ga = eng
            .world
            .ks
            .sharepod(a)
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        let gb = eng
            .world
            .ks
            .sharepod(b)
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        assert_ne!(ga, gb, "anti-affinity must separate them");
        assert_eq!(eng.world.ks.pool().len(), 2);
    }

    #[test]
    fn affinity_conflict_rejects() {
        let mut eng = engine(1, 2);
        let a = submit(
            &mut eng,
            "a",
            sp_spec(0.8, 1.0, 0.8).with_locality(Locality::none().with_affinity("grp")),
        );
        eng.run_to_completion(20_000);
        // b wants the same group but doesn't fit.
        let b = submit(
            &mut eng,
            "b",
            sp_spec(0.5, 1.0, 0.5).with_locality(Locality::none().with_affinity("grp")),
        );
        eng.run_to_completion(20_000);
        assert_eq!(
            eng.world.ks.sharepod(b).unwrap().status.phase,
            SharePodPhase::Rejected
        );
        assert!(eng
            .world
            .notices
            .iter()
            .any(|(_, n)| matches!(n, KsNotice::SharePodRejected { sp, .. } if *sp == b)));
        let _ = a;
    }

    #[test]
    fn explicit_gpuid_creates_and_binds() {
        let mut eng = engine(1, 1);
        let sp = submit(
            &mut eng,
            "pinned",
            sp_spec(0.3, 0.6, 0.3).with_gpuid(GpuId::named("my-vgpu")),
        );
        eng.run_to_completion(10_000);
        let bound = eng
            .world
            .ks
            .sharepod(sp)
            .unwrap()
            .status
            .bound_gpuid
            .clone();
        assert_eq!(bound, Some(GpuId::named("my-vgpu")));
        assert!(eng.world.ks.pool().get(&GpuId::named("my-vgpu")).is_some());
    }

    #[test]
    fn native_pods_coexist() {
        let mut eng = engine(1, 2);
        // One native GPU pod and one sharePod share the cluster.
        let now = eng.now();
        let mut out = Vec::new();
        let native = eng.world.ks.submit_native_pod(
            now,
            "native",
            PodSpec::new(
                "cuda:11",
                ResourceList::cpu_mem(1000, 1 << 30).with_extended(NVIDIA_GPU, 1),
            ),
            &mut out,
        );
        seed(&mut eng, out);
        let sp = submit(&mut eng, "shared", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(20_000);
        assert!(running_notice(&eng.world, sp).is_some());
        assert_eq!(
            eng.world.ks.cluster.pod(native).unwrap().status.phase,
            ks_cluster::PodPhase::Running
        );
        // Both GPUs in use: none left.
        let free = eng.world.ks.cluster.node_free("node-0").unwrap();
        assert_eq!(free.extended_count(NVIDIA_GPU), 0);
    }

    #[test]
    fn crashed_container_restarts_under_on_failure_policy() {
        let mut eng: Engine<World, Ev> = Engine::new(World {
            ks: KubeShareSystem::new(
                cluster_cfg(1, 1),
                KsConfig {
                    restart_policy: RestartPolicy::OnFailure,
                    ..KsConfig::default()
                },
            ),
            notices: Vec::new(),
        });
        let sp = submit(&mut eng, "svc", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);
        assert_eq!(
            eng.world.ks.sharepod(sp).unwrap().status.phase,
            SharePodPhase::Running
        );
        let pod = eng.world.ks.running_backing_pods()[0];
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world
            .ks
            .crash_pod(now, pod, "oom", &mut out, &mut notes);
        for n in notes {
            eng.world.notices.push((now, n));
        }
        seed(&mut eng, out);
        eng.run_to_completion(100_000);
        // Requeued through Algorithm 1 and running again on a new pod.
        assert_eq!(
            eng.world.ks.sharepod(sp).unwrap().status.phase,
            SharePodPhase::Running
        );
        let new_pod = eng.world.ks.running_backing_pods()[0];
        assert_ne!(new_pod, pod, "a fresh backing pod must exist");
        assert!(eng
            .world
            .notices
            .iter()
            .any(|(_, n)| matches!(n, KsNotice::SharePodRequeued { sp: s, .. } if *s == sp)));
        // Capacity accounting survived the round trip.
        let d = eng.world.ks.pool().devices().next().unwrap();
        assert!((d.util_free - 0.5).abs() < 1e-9);
    }

    #[test]
    fn node_failure_requeues_sharepods_to_surviving_pool() {
        let mut eng = engine(2, 1);
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        let b = submit(&mut eng, "b", sp_spec(0.4, 1.0, 0.4));
        eng.run_to_completion(10_000);
        assert_eq!(
            eng.world.ks.sharepod(a).unwrap().status.phase,
            SharePodPhase::Running
        );
        // Both fit on one vGPU; find its node and kill that node.
        let gpuid = eng
            .world
            .ks
            .sharepod(a)
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        let node = eng
            .world
            .ks
            .pool()
            .get(&gpuid)
            .unwrap()
            .node
            .clone()
            .unwrap();

        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world.ks.fail_node(now, &node, &mut out, &mut notes);
        assert!(notes
            .iter()
            .any(|n| matches!(n, KsNotice::VgpuLost { gpuid: g, .. } if *g == gpuid)));
        assert!(notes
            .iter()
            .any(|n| matches!(n, KsNotice::SharePodRequeued { sp, .. } if *sp == a)));
        for n in notes {
            eng.world.notices.push((now, n));
        }
        seed(&mut eng, out);
        eng.run_to_completion(20_000);

        // Algorithm 1 re-placed both sharePods on the surviving node.
        for sp in [a, b] {
            assert_eq!(
                eng.world.ks.sharepod(sp).unwrap().status.phase,
                SharePodPhase::Running,
                "sharePod must recover on the surviving node"
            );
            let g = eng
                .world
                .ks
                .sharepod(sp)
                .unwrap()
                .status
                .bound_gpuid
                .clone()
                .unwrap();
            let n = eng.world.ks.pool().get(&g).unwrap().node.clone().unwrap();
            assert_ne!(n, node, "must not land on the dead node");
        }
        // No leaked vGPUs: exactly one live vGPU backing both pods.
        assert_eq!(eng.world.ks.pool().len(), 1);
    }

    #[test]
    fn node_recovery_restores_capacity() {
        let mut eng = engine(1, 1);
        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(10_000);

        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world.ks.fail_node(now, "node-0", &mut out, &mut notes);
        seed(&mut eng, out);
        eng.run_to_completion(20_000);
        // Nowhere to go: the sharePod waits in the unschedulable queue
        // (its fresh anchor can't place).
        assert_ne!(
            eng.world.ks.sharepod(a).unwrap().status.phase,
            SharePodPhase::Running
        );

        let now = eng.now();
        let mut out = Vec::new();
        eng.world.ks.recover_node(now, "node-0", &mut out);
        seed(&mut eng, out);
        eng.run_to_completion(20_000);
        assert_eq!(
            eng.world.ks.sharepod(a).unwrap().status.phase,
            SharePodPhase::Running,
            "sharePod must come back once the node does"
        );
        assert_eq!(eng.world.ks.pool().len(), 1);
        // Failure/requeue/recovery churn crosses the remaining phase
        // transitions; the incremental tallies must survive it.
        eng.world.ks.verify_sp_tally().unwrap();
        eng.world.ks.pool().verify_indexes().unwrap();
    }

    #[test]
    fn anchor_launch_failure_retries_with_backoff() {
        use ks_chaos::{ChaosConfig, ChaosInjector};
        let mut eng = engine(1, 1);
        // Deterministic injector: seed chosen so the first anchor launch
        // fails and a retry succeeds (rate 0.5 gives plenty of both).
        let cfg = ChaosConfig {
            anchor_failure_rate: 0.5,
            ..ChaosConfig::disabled()
        };
        let mut chaos = ChaosInjector::new(cfg.clone().with_seed(0), 1);
        // Find a seed whose first flip fails and second succeeds.
        let mut seed_pick = 0;
        for s in 0..64 {
            let mut probe = ChaosInjector::new(cfg.clone().with_seed(s), 1);
            if probe.anchor_launch_fails() && !probe.anchor_launch_fails() {
                seed_pick = s;
                chaos = ChaosInjector::new(cfg.clone().with_seed(s), 1);
                break;
            }
        }
        eng.world.ks.set_chaos(chaos);

        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(20_000);
        assert_eq!(
            eng.world.ks.sharepod(a).unwrap().status.phase,
            SharePodPhase::Running,
            "retry must eventually materialize the vGPU (seed {seed_pick})"
        );
        // The first failure pushed Running past one backoff interval.
        let t = running_notice(&eng.world, a).unwrap().0.as_secs_f64();
        let base = KsConfig::default().anchor_retry_base.as_secs_f64();
        assert!(t >= base, "backoff must delay creation: {t}s < {base}s");
    }

    #[test]
    fn anchor_retries_exhausted_degrades_gracefully() {
        use ks_chaos::{ChaosConfig, ChaosInjector};
        let mut eng = Engine::new(World {
            ks: KubeShareSystem::new(
                cluster_cfg(1, 2),
                KsConfig {
                    anchor_max_retries: 2,
                    ..KsConfig::default()
                },
            ),
            notices: Vec::new(),
        });
        // Every launch fails: the vGPU can never materialize.
        let cfg = ChaosConfig {
            anchor_failure_rate: 1.0,
            ..ChaosConfig::disabled()
        };
        eng.world.ks.set_chaos(ChaosInjector::new(cfg, 1));

        let a = submit(&mut eng, "a", sp_spec(0.5, 1.0, 0.5));
        eng.run_to_completion(50_000);
        // All attempts failed → vGPU given up → the unpinned sharePod was
        // re-queued, whose fresh vGPU also failed… until sched rejects or
        // the sharePod keeps cycling. With rate 1.0 it must NOT be Running,
        // and the pool must not leak half-created devices.
        assert_ne!(
            eng.world.ks.sharepod(a).unwrap().status.phase,
            SharePodPhase::Running
        );
        assert!(eng
            .world
            .notices
            .iter()
            .any(|(_, n)| matches!(n, KsNotice::VgpuLost { .. })));
        let _ = a;
    }

    #[test]
    fn exhausted_retries_reject_pinned_sharepod() {
        use ks_chaos::{ChaosConfig, ChaosInjector};
        let mut eng = Engine::new(World {
            ks: KubeShareSystem::new(
                cluster_cfg(1, 1),
                KsConfig {
                    anchor_max_retries: 1,
                    ..KsConfig::default()
                },
            ),
            notices: Vec::new(),
        });
        let cfg = ChaosConfig {
            anchor_failure_rate: 1.0,
            ..ChaosConfig::disabled()
        };
        eng.world.ks.set_chaos(ChaosInjector::new(cfg, 1));
        // Pinned to an explicit GPUID: re-queueing would loop forever, so
        // exhausted retries must reject it instead.
        let sp = submit(
            &mut eng,
            "pinned",
            sp_spec(0.3, 0.6, 0.3).with_gpuid(GpuId::named("doomed")),
        );
        eng.run_to_completion(50_000);
        assert_eq!(
            eng.world.ks.sharepod(sp).unwrap().status.phase,
            SharePodPhase::Rejected
        );
        assert!(eng.world.ks.pool().is_empty(), "no leaked Creating vGPU");
    }

    fn spatial_spec(request: f64, mem: f64) -> SharePodSpec {
        sp_spec(request, 1.0, mem).with_substrate(ks_partition::Substrate::Spatial)
    }

    #[test]
    fn fragmented_partition_reconfigures_and_rebinds() {
        let mut eng = engine(1, 1);
        let telemetry = ks_telemetry::Telemetry::enabled();
        eng.world.ks.set_telemetry(telemetry.clone());
        // Three P2 tenants pack one partitioned device (defrag-greedy
        // placement lands them at starts 4, 0, 2).
        let sps: Vec<Uid> = (0..3)
            .map(|i| submit(&mut eng, &format!("p2-{i}"), spatial_spec(0.25, 0.2)))
            .collect();
        eng.run_to_completion(20_000);
        let gpu = eng
            .world
            .ks
            .sharepod(sps[0])
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        let starts: Vec<u8> = sps
            .iter()
            .map(|&sp| {
                let s = eng.world.ks.sharepod(sp).unwrap();
                assert_eq!(s.status.phase, SharePodPhase::Running);
                assert_eq!(s.status.bound_gpuid.as_ref(), Some(&gpu));
                eng.world.ks.pool().get(&gpu).unwrap().slice_of[&sp]
            })
            .collect();
        assert_eq!(starts, vec![4, 0, 2]);

        // Strand the middle tenant: free starts 0 and 4, keeping slot 2-3
        // resident. A P4 (slots 0-3) now has no legal start even though 5
        // of 7 slots are free.
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world
            .ks
            .delete_sharepod(now, sps[1], &mut out, &mut notes);
        eng.world
            .ks
            .delete_sharepod(now, sps[0], &mut out, &mut notes);
        seed(&mut eng, out);
        eng.run_to_completion(40_000);

        // The P4 request triggers a reshape instead of demanding new
        // hardware (there is none: 1 node x 1 GPU).
        let big = submit(&mut eng, "big", spatial_spec(0.5, 0.5));
        eng.run_to_completion(120_000);

        for sp in [big, sps[2]] {
            let s = eng.world.ks.sharepod(sp).unwrap();
            assert_eq!(s.status.phase, SharePodPhase::Running, "sp {sp:?}");
            assert_eq!(s.status.bound_gpuid.as_ref(), Some(&gpu));
        }
        let device = eng.world.ks.pool().get(&gpu).unwrap();
        assert_eq!(device.slice_of.len(), 2);
        assert!(device.slice_of.contains_key(&big));
        assert!(device.slice_of.contains_key(&sps[2]));
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter_value("ks_partition_reconfigs_total", &[]),
            Some(1)
        );
        assert!(snap.gauge_value("ks_pool_fragmentation", &[]).is_some());
        // The displaced tenant was stopped exactly once during the drain.
        let stops = eng
            .world
            .notices
            .iter()
            .filter(|(_, n)| matches!(n, KsNotice::SharePodStopped { sp, .. } if *sp == sps[2]))
            .count();
        assert_eq!(stops, 1);
        eng.world.ks.pool().verify_indexes().unwrap();
        eng.world.ks.verify_sp_tally().unwrap();
    }

    #[test]
    fn drain_slice_displaces_only_the_slice_tenant() {
        let mut eng = engine(1, 1);
        let telemetry = ks_telemetry::Telemetry::enabled();
        eng.world.ks.set_telemetry(telemetry.clone());
        let a = submit(&mut eng, "a", spatial_spec(0.5, 0.5)); // P4 @ 0
        let b = submit(&mut eng, "b", spatial_spec(0.4, 0.3)); // P3 @ 4
        eng.run_to_completion(20_000);
        let gpu = eng
            .world
            .ks
            .sharepod(a)
            .unwrap()
            .status
            .bound_gpuid
            .clone()
            .unwrap();
        assert_eq!(eng.world.ks.pool().get(&gpu).unwrap().slice_of[&a], 0);
        assert_eq!(eng.world.ks.pool().get(&gpu).unwrap().slice_of[&b], 4);

        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        // Slice-scoped target: only the tenant at start 4 is displaced.
        let drained = eng
            .world
            .ks
            .drain_target(now, &format!("{gpu}#s4"), &mut out, &mut notes);
        assert_eq!(drained, 1);
        // Empty slice, malformed slot, unknown device: all no-ops.
        assert_eq!(
            eng.world
                .ks
                .drain_target(now, &format!("{gpu}#s5"), &mut out, &mut notes),
            0
        );
        assert_eq!(
            eng.world
                .ks
                .drain_target(now, &format!("{gpu}#sbad"), &mut out, &mut notes),
            0
        );
        assert_eq!(
            eng.world
                .ks
                .drain_target(now, "nope#s0", &mut out, &mut notes),
            0
        );
        for n in notes {
            eng.world.notices.push((now, n));
        }
        seed(&mut eng, out);
        eng.run_to_completion(60_000);

        // The co-tenant never stopped; the drained tenant re-ran and is
        // back on the only device that fits it.
        assert!(!eng
            .world
            .notices
            .iter()
            .any(|(_, n)| matches!(n, KsNotice::SharePodStopped { sp, .. } if *sp == a)));
        let sa = eng.world.ks.sharepod(a).unwrap();
        assert_eq!(sa.status.phase, SharePodPhase::Running);
        assert_eq!(sa.status.bound_gpuid.as_ref(), Some(&gpu));
        let sb = eng.world.ks.sharepod(b).unwrap();
        assert_eq!(sb.status.phase, SharePodPhase::Running);
        assert_eq!(eng.world.ks.pool().get(&gpu).unwrap().slice_of[&b], 4);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter_value("ks_vgpu_slice_drains_total", &[]),
            Some(1)
        );
        eng.world.ks.pool().verify_indexes().unwrap();
        eng.world.ks.verify_sp_tally().unwrap();
    }

    #[test]
    fn sharepods_queue_when_cluster_full() {
        let mut eng = engine(1, 1);
        let a = submit(&mut eng, "a", sp_spec(0.8, 1.0, 0.8));
        eng.run_to_completion(10_000);
        // b doesn't fit on a's vGPU (0.8+0.8 > 1) → new vGPU → anchor
        // unschedulable (no free GPU) → waits.
        let b = submit(&mut eng, "b", sp_spec(0.8, 1.0, 0.8));
        eng.run_to_completion(10_000);
        assert_eq!(
            eng.world.ks.sharepod(b).unwrap().status.phase,
            SharePodPhase::AwaitingVgpu
        );
        // Delete a → its vGPU releases → anchor for b's vGPU schedules.
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world.ks.delete_sharepod(now, a, &mut out, &mut notes);
        seed(&mut eng, out);
        eng.run_to_completion(20_000);
        assert_eq!(
            eng.world.ks.sharepod(b).unwrap().status.phase,
            SharePodPhase::Running
        );
    }
}
