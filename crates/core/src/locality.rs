//! Locality constraints on vGPU binding (paper §4.2).
//!
//! Three label-based constraints control the container↔GPU mapping — a
//! capability only possible because vGPUs are first-class entities:
//!
//! * **exclusion** — containers with different exclusion labels never share
//!   a GPU (dedicated resources per user/app);
//! * **affinity** — containers with the same affinity label land on the
//!   same GPU;
//! * **anti-affinity** — containers with the same anti-affinity label land
//!   on *different* GPUs (the interference-avoidance tool of §5.5).

use serde::{Deserialize, Serialize};

/// Locality constraint labels for one SharePod.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Locality {
    /// `sched_affinity` label.
    pub affinity: Option<String>,
    /// `sched_anti-affinity` label.
    pub anti_affinity: Option<String>,
    /// `sched_exclusion` label.
    pub exclusion: Option<String>,
}

impl Locality {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Affinity constraint (builder style).
    pub fn with_affinity(mut self, label: impl Into<String>) -> Self {
        self.affinity = Some(label.into());
        self
    }

    /// Anti-affinity constraint (builder style).
    pub fn with_anti_affinity(mut self, label: impl Into<String>) -> Self {
        self.anti_affinity = Some(label.into());
        self
    }

    /// Exclusion constraint (builder style).
    pub fn with_exclusion(mut self, label: impl Into<String>) -> Self {
        self.exclusion = Some(label.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let l = Locality::none()
            .with_affinity("job-group")
            .with_anti_affinity("noisy")
            .with_exclusion("tenant-a");
        assert_eq!(l.affinity.as_deref(), Some("job-group"));
        assert_eq!(l.anti_affinity.as_deref(), Some("noisy"));
        assert_eq!(l.exclusion.as_deref(), Some("tenant-a"));
    }

    #[test]
    fn default_is_unconstrained() {
        let l = Locality::none();
        assert!(l.affinity.is_none() && l.anti_affinity.is_none() && l.exclusion.is_none());
    }
}
