//! A higher-level controller over sharePods: `SharePodReplicaSet`.
//!
//! Paper §4.6 (fourth compatibility claim): "our KubeShare controllers
//! basically act like a wrapper over Kubelet to launch pods with shared
//! GPU. Therefore, any higher level controllers (e.g., replication
//! controller, deployment controller) can seamlessly integrate or adapt to
//! our solution by requesting a sharePod instead of the native pod."
//!
//! This module proves the claim: a replication controller in the standard
//! Kubernetes style (desired replica count + template, reconciled on watch
//! events) that manages *sharePods* through exactly the public KubeShare
//! API — no special hooks.

use std::collections::HashMap;

use ks_cluster::api::Uid;
use ks_sim_core::time::SimTime;

use crate::sharepod::SharePodSpec;
use crate::system::{KsEmit, KsNotice, KubeShareSystem};

/// Desired state of one replica set.
#[derive(Debug, Clone)]
pub struct ReplicaSetSpec {
    /// Base name; replicas are `<name>-<n>`.
    pub name: String,
    /// Desired number of running sharePods.
    pub replicas: u32,
    /// Template stamped out for every replica.
    pub template: SharePodSpec,
}

/// Identifies a replica set managed by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaSetId(pub u64);

#[derive(Debug)]
struct SetState {
    spec: ReplicaSetSpec,
    /// Live replicas (submitted and not yet observed terminated).
    members: Vec<Uid>,
    /// Monotone counter for replica names (never reused).
    spawned: u64,
}

/// The replication controller. Drive it by (1) creating sets, (2) feeding
/// every [`KsNotice`] the system emits into [`ReplicaSetController::observe`].
#[derive(Debug, Default)]
pub struct ReplicaSetController {
    sets: HashMap<ReplicaSetId, SetState>,
    /// sharePod → owning set (the ownerReference).
    owner: HashMap<Uid, ReplicaSetId>,
    next_id: u64,
}

impl ReplicaSetController {
    /// Creates an empty controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a replica set and submits its initial replicas.
    pub fn create(
        &mut self,
        now: SimTime,
        spec: ReplicaSetSpec,
        system: &mut KubeShareSystem,
        out: &mut KsEmit,
    ) -> ReplicaSetId {
        self.next_id += 1;
        let id = ReplicaSetId(self.next_id);
        self.sets.insert(
            id,
            SetState {
                spec,
                members: Vec::new(),
                spawned: 0,
            },
        );
        self.reconcile(now, id, system, out);
        id
    }

    /// Changes the desired replica count (scale up or down).
    pub fn scale(
        &mut self,
        now: SimTime,
        id: ReplicaSetId,
        replicas: u32,
        system: &mut KubeShareSystem,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let set = self.sets.get_mut(&id).expect("replica set exists");
        set.spec.replicas = replicas;
        // Scale down: delete surplus members (newest first).
        while set.members.len() as u32 > replicas {
            let victim = set.members.pop().expect("non-empty");
            self.owner.remove(&victim);
            system.delete_sharepod(now, victim, out, notices);
        }
        self.reconcile(now, id, system, out);
    }

    /// Current live member count of a set.
    pub fn live_replicas(&self, id: ReplicaSetId) -> usize {
        self.sets.get(&id).map_or(0, |s| s.members.len())
    }

    /// Feeds one system notice into the control loop; replacements are
    /// submitted when members terminate or get rejected.
    pub fn observe(
        &mut self,
        now: SimTime,
        notice: &KsNotice,
        system: &mut KubeShareSystem,
        out: &mut KsEmit,
    ) {
        let departed = match notice {
            KsNotice::SharePodStopped { sp, .. } => Some(*sp),
            KsNotice::SharePodRejected { sp, .. } => Some(*sp),
            _ => None,
        };
        let Some(sp) = departed else { return };
        let Some(id) = self.owner.remove(&sp) else {
            return; // not ours
        };
        if let Some(set) = self.sets.get_mut(&id) {
            set.members.retain(|&m| m != sp);
        }
        self.reconcile(now, id, system, out);
    }

    /// Brings a set up to its desired count.
    fn reconcile(
        &mut self,
        now: SimTime,
        id: ReplicaSetId,
        system: &mut KubeShareSystem,
        out: &mut KsEmit,
    ) {
        let set = self.sets.get_mut(&id).expect("replica set exists");
        while (set.members.len() as u32) < set.spec.replicas {
            set.spawned += 1;
            let name = format!("{}-{}", set.spec.name, set.spawned);
            let sp = system.submit_sharepod(now, name, set.spec.template.clone(), out);
            set.members.push(sp);
            self.owner.insert(sp, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_cluster::api::pod::PodSpec;
    use ks_cluster::api::{NodeConfig, ResourceList};
    use ks_cluster::device_plugin::UnitAssignPolicy;
    use ks_cluster::latency::LatencyModel;
    use ks_cluster::scheduler::ScorePolicy;
    use ks_cluster::sim::{ClusterConfig, GpuPluginKind};
    use ks_sim_core::prelude::*;
    use ks_vgpu::ShareSpec;

    use crate::sharepod::SharePodPhase;
    use crate::system::{KsConfig, KsEvent};

    struct World {
        ks: KubeShareSystem,
        rc: ReplicaSetController,
    }

    struct Ev(KsEvent);

    impl SimEvent<World> for Ev {
        fn fire(self, now: SimTime, w: &mut World, q: &mut EventQueue<Self>) {
            let mut out = Vec::new();
            let mut notes = Vec::new();
            w.ks.handle(now, self.0, &mut out, &mut notes);
            for n in &notes {
                w.rc.observe(now, n, &mut w.ks, &mut out);
            }
            for (at, e) in out {
                q.schedule_at(at, Ev(e));
            }
        }
    }

    fn engine() -> Engine<World, Ev> {
        let cluster = ClusterConfig {
            nodes: vec![NodeConfig {
                name: "n0".into(),
                cpu_millis: 36_000,
                memory_bytes: 64 << 30,
                gpus: 2,
                gpu_memory_bytes: 16 << 30,
            }],
            latency: LatencyModel::default(),
            gpu_plugin: GpuPluginKind::WholeDevice,
            assign_policy: UnitAssignPolicy::Sequential,
            score: ScorePolicy::LeastAllocated,
        };
        Engine::new(World {
            ks: KubeShareSystem::new(cluster, KsConfig::default()),
            rc: ReplicaSetController::new(),
        })
    }

    fn template() -> SharePodSpec {
        SharePodSpec::new(
            PodSpec::new("serving:latest", ResourceList::cpu_mem(500, 1 << 30)),
            ShareSpec::new(0.25, 0.5, 0.25).unwrap(),
        )
    }

    fn running_members(w: &World, id: ReplicaSetId) -> usize {
        w.ks.sharepods()
            .iter()
            .filter(|(_, sp)| sp.status.phase == SharePodPhase::Running)
            .count()
            .min(w.rc.live_replicas(id))
    }

    #[test]
    fn replicas_come_up_and_share_gpus() {
        let mut eng = engine();
        let mut out = Vec::new();
        let id = eng.world.rc.create(
            SimTime::ZERO,
            ReplicaSetSpec {
                name: "serve".into(),
                replicas: 4,
                template: template(),
            },
            &mut eng.world.ks,
            &mut out,
        );
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(100_000);
        assert_eq!(eng.world.rc.live_replicas(id), 4);
        assert_eq!(running_members(&eng.world, id), 4);
        // Four quarter-GPU replicas fit on a single physical GPU.
        assert_eq!(eng.world.ks.pool().len(), 1);
    }

    #[test]
    fn terminated_replica_is_replaced() {
        let mut eng = engine();
        let mut out = Vec::new();
        let id = eng.world.rc.create(
            SimTime::ZERO,
            ReplicaSetSpec {
                name: "serve".into(),
                replicas: 2,
                template: template(),
            },
            &mut eng.world.ks,
            &mut out,
        );
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(100_000);
        // Kill one member (e.g. node drain / crash): the control loop
        // must spawn a replacement.
        let victim = eng
            .world
            .ks
            .sharepods()
            .iter()
            .map(|(u, _)| u)
            .next()
            .unwrap();
        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world
            .ks
            .delete_sharepod(now, victim, &mut out, &mut notes);
        for n in &notes {
            eng.world.rc.observe(now, n, &mut eng.world.ks, &mut out);
        }
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(100_000);
        assert_eq!(eng.world.rc.live_replicas(id), 2, "replacement spawned");
        // Three sharePods total existed over time (2 + 1 replacement).
        assert_eq!(eng.world.ks.sharepods().iter().count(), 3);
    }

    #[test]
    fn scale_up_and_down() {
        let mut eng = engine();
        let mut out = Vec::new();
        let id = eng.world.rc.create(
            SimTime::ZERO,
            ReplicaSetSpec {
                name: "serve".into(),
                replicas: 1,
                template: template(),
            },
            &mut eng.world.ks,
            &mut out,
        );
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(100_000);
        assert_eq!(eng.world.rc.live_replicas(id), 1);

        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world
            .rc
            .scale(now, id, 3, &mut eng.world.ks, &mut out, &mut notes);
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(100_000);
        assert_eq!(eng.world.rc.live_replicas(id), 3);

        let now = eng.now();
        let mut out = Vec::new();
        let mut notes = Vec::new();
        eng.world
            .rc
            .scale(now, id, 1, &mut eng.world.ks, &mut out, &mut notes);
        for n in &notes {
            eng.world.rc.observe(now, n, &mut eng.world.ks, &mut out);
        }
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(100_000);
        assert_eq!(eng.world.rc.live_replicas(id), 1);
    }
}
