//! Differential oracle for the substrate axis (DESIGN.md §14): a
//! `Substrate::TimeSlice` workload routed through [`schedule_substrate`]
//! must be **decision-identical** to the pre-substrate scheduler
//! ([`schedule_with`]) on any pool state and request stream — adding the
//! spatial subsystem cannot perturb a single time-slice placement.
//!
//! Two layers:
//!
//! 1. proptest streams — interleavings of schedule/attach/detach/
//!    mark_ready/mark_releasing/remove driven through both entry points,
//!    asserting per-step decision equality and final pool-bit equality;
//! 2. a fixed-seed LCG oracle (same cases on every CI run) that
//!    additionally seeds the pool with *populated spatial devices* —
//!    including one carrying a colliding affinity label — and checks the
//!    time-slice decision stream cannot see them.

use ks_cluster::api::Uid;
use kubeshare::algorithm::{schedule_substrate, schedule_with, Decision, SchedMode, SchedRequest};
use kubeshare::gpuid::GpuId;
use kubeshare::locality::Locality;
use kubeshare::pool::{VgpuPhase, VgpuPool};
use kubeshare::{Profile, Substrate};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GenReq {
    util: f64,
    mem: f64,
    aff: Option<u8>,
    anti: Option<u8>,
    excl: Option<u8>,
}

fn frac() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => (0usize..7).prop_map(|i| [0.0, 0.1, 0.25, 0.3, 0.5, 0.75, 0.9][i]),
        1 => 0.0f64..0.95,
    ]
}

fn gen_req() -> impl Strategy<Value = GenReq> {
    (
        frac(),
        frac(),
        proptest::option::weighted(0.25, 0u8..3),
        proptest::option::weighted(0.25, 0u8..3),
        proptest::option::weighted(0.25, 0u8..2),
    )
        .prop_map(|(util, mem, aff, anti, excl)| GenReq {
            util,
            mem,
            aff,
            anti,
            excl,
        })
}

#[derive(Debug, Clone)]
enum Op {
    Submit(GenReq),
    Detach(u8),
    Ready(u8),
    Release(u8),
    Remove(u8),
}

fn gen_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => gen_req().prop_map(Op::Submit),
        2 => any::<u8>().prop_map(Op::Detach),
        1 => any::<u8>().prop_map(Op::Ready),
        1 => any::<u8>().prop_map(Op::Release),
        1 => any::<u8>().prop_map(Op::Remove),
    ]
}

fn locality(r: &GenReq) -> Locality {
    let mut loc = Locality::none();
    if let Some(a) = r.aff {
        loc = loc.with_affinity(format!("aff-{a}"));
    }
    if let Some(a) = r.anti {
        loc = loc.with_anti_affinity(format!("anti-{a}"));
    }
    if let Some(e) = r.excl {
        loc = loc.with_exclusion(format!("excl-{e}"));
    }
    loc
}

fn sched_request(r: &GenReq) -> SchedRequest {
    SchedRequest {
        util: r.util,
        mem: r.mem,
        locality: locality(r),
    }
}

/// Which entry point schedules `Submit` ops: the pre-substrate scheduler,
/// or the substrate dispatcher pinned to `TimeSlice`.
#[derive(Clone, Copy)]
enum Path {
    Plain(SchedMode),
    TimeSliceSubstrate(SchedMode),
}

fn apply(pool: &mut VgpuPool, uid: Uid, r: &GenReq, decision: &Decision) {
    let loc = locality(r);
    let id = match decision {
        Decision::Assign(id) => id.clone(),
        Decision::NewDevice(id) => {
            pool.insert_creating(id.clone());
            id.clone()
        }
        Decision::Reject(_) => return,
        Decision::Reconfigure(_) => unreachable!("time-slice path proposed a reconfigure"),
    };
    pool.attach(
        &id,
        uid,
        r.util,
        r.mem,
        loc.affinity.as_deref(),
        loc.anti_affinity.as_deref(),
        loc.exclusion.as_deref(),
    );
}

/// Drives one op against a pool via the given path. Victim selection for
/// the non-submit ops filters spatial devices out explicitly, so a pool
/// seeded with spatial devices sees the same mutation stream as one
/// without them.
fn step(
    pool: &mut VgpuPool,
    live: &mut Vec<(Uid, GpuId)>,
    next_uid: &mut u64,
    path: Path,
    op: &Op,
) -> Option<Decision> {
    match op {
        Op::Submit(r) => {
            let req = sched_request(r);
            let decision = match path {
                Path::Plain(mode) => schedule_with(mode, &req, pool),
                Path::TimeSliceSubstrate(mode) => {
                    schedule_substrate(mode, Substrate::TimeSlice, &req, pool)
                }
            };
            *next_uid += 1;
            let uid = Uid(*next_uid);
            apply(pool, uid, r, &decision);
            if let Decision::Assign(id) | Decision::NewDevice(id) = &decision {
                live.push((uid, id.clone()));
            }
            Some(decision)
        }
        Op::Detach(k) => {
            if !live.is_empty() {
                let (uid, id) = live.remove(*k as usize % live.len());
                pool.detach(&id, uid);
            }
            None
        }
        Op::Ready(k) => {
            let creating: Vec<GpuId> = pool
                .devices()
                .filter(|d| d.phase == VgpuPhase::Creating && !d.releasing && !d.is_spatial())
                .map(|d| d.id.clone())
                .collect();
            if !creating.is_empty() {
                let id = creating[*k as usize % creating.len()].clone();
                pool.mark_ready(&id, format!("node-{}", k % 4), format!("GPU-{id}"));
            }
            None
        }
        Op::Release(k) => {
            let idle: Vec<GpuId> = pool
                .devices()
                .filter(|d| d.attached.is_empty() && !d.releasing && !d.is_spatial())
                .map(|d| d.id.clone())
                .collect();
            if !idle.is_empty() {
                let id = idle[*k as usize % idle.len()].clone();
                pool.mark_releasing(&id);
            }
            None
        }
        Op::Remove(k) => {
            let releasing: Vec<GpuId> = pool
                .devices()
                .filter(|d| d.releasing)
                .map(|d| d.id.clone())
                .collect();
            if !releasing.is_empty() {
                let id = releasing[*k as usize % releasing.len()].clone();
                pool.remove(&id);
            }
            None
        }
    }
}

/// Asserts the time-slice devices of two pools are bit-identical
/// (spatial devices, present in at most one pool, are skipped).
fn assert_time_slice_devices_identical(a: &VgpuPool, b: &VgpuPool) {
    let da: Vec<_> = a.devices().filter(|d| !d.is_spatial()).collect();
    let db: Vec<_> = b.devices().filter(|d| !d.is_spatial()).collect();
    assert_eq!(da.len(), db.len(), "pool sizes diverged");
    for (x, y) in da.iter().zip(&db) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.util_free.to_bits(), y.util_free.to_bits(), "{}", x.id);
        assert_eq!(x.mem_free.to_bits(), y.mem_free.to_bits(), "{}", x.id);
        assert_eq!(x.aff, y.aff);
        assert_eq!(x.anti_aff, y.anti_aff);
        assert_eq!(x.excl, y.excl);
        assert_eq!(x.attached, y.attached);
        assert_eq!(x.phase, y.phase);
        assert_eq!(x.releasing, y.releasing);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The oracle: over any interleaving and both fixed scheduler modes,
    /// `schedule_substrate(TimeSlice)` equals `schedule_with` per step.
    #[test]
    fn time_slice_substrate_matches_plain_per_step(
        ops in proptest::collection::vec(gen_op(), 1..80),
    ) {
        for mode in [SchedMode::Reference, SchedMode::Indexed] {
            let mut plain_pool = VgpuPool::new();
            let mut sub_pool = VgpuPool::new();
            let (mut plain_live, mut sub_live) = (Vec::new(), Vec::new());
            let (mut plain_uid, mut sub_uid) = (0u64, 0u64);
            for (i, op) in ops.iter().enumerate() {
                let d_plain =
                    step(&mut plain_pool, &mut plain_live, &mut plain_uid, Path::Plain(mode), op);
                let d_sub = step(
                    &mut sub_pool,
                    &mut sub_live,
                    &mut sub_uid,
                    Path::TimeSliceSubstrate(mode),
                    op,
                );
                prop_assert_eq!(&d_plain, &d_sub, "divergence at op {} ({:?})", i, op);
            }
            assert_time_slice_devices_identical(&plain_pool, &sub_pool);
            sub_pool.verify_indexes().unwrap();
        }
    }
}

// ---- fixed-seed oracle ----

/// Deterministic LCG (Knuth MMIX constants): same cases forever, no
/// proptest seed plumbing.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn frac(&mut self) -> f64 {
        const CHOICES: [f64; 7] = [0.0, 0.1, 0.25, 0.3, 0.5, 0.75, 0.9];
        if self.next().is_multiple_of(5) {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 0.95
        } else {
            CHOICES[self.next() as usize % CHOICES.len()]
        }
    }

    fn label(&mut self, p_num: u64, p_den: u64, alphabet: u8) -> Option<u8> {
        (self.next() % p_den < p_num).then(|| (self.next() % alphabet as u64) as u8)
    }

    fn op(&mut self) -> Op {
        match self.next() % 10 {
            0..=4 => Op::Submit(GenReq {
                util: self.frac(),
                mem: self.frac(),
                aff: self.label(1, 4, 3),
                anti: self.label(1, 4, 3),
                excl: self.label(1, 4, 2),
            }),
            5 | 6 => Op::Detach((self.next() % 256) as u8),
            7 => Op::Ready((self.next() % 256) as u8),
            8 => Op::Release((self.next() % 256) as u8),
            _ => Op::Remove((self.next() % 256) as u8),
        }
    }
}

/// Seeds `pool` with populated spatial devices under explicit names (so
/// the shared `next_id` counter — and with it every `NewDevice` id — is
/// untouched). One tenant carries the affinity label `aff-0`, straight
/// from the generator's alphabet: if the time-slice affinity step could
/// see spatial devices, this collision would reroute whole groups.
fn seed_spatial(pool: &mut VgpuPool) {
    let specs: [(&str, Profile, Option<&str>); 3] = [
        ("mig-a", Profile::P4, Some("aff-0")),
        ("mig-b", Profile::P2, None),
        ("mig-c", Profile::P7, None),
    ];
    for (i, (name, profile, aff)) in specs.iter().enumerate() {
        let id = GpuId::named(*name);
        pool.insert_creating_spatial(id.clone());
        pool.mark_ready(&id, format!("node-{}", i % 2), format!("GPU-{id}"));
        pool.attach_slice(
            &id,
            Uid(9_000 + i as u64),
            *profile,
            profile.frac(),
            profile.frac(),
            *aff,
            None,
            None,
        )
        .expect("fresh table places its profile");
    }
    assert_eq!(pool.spatial_count(), 3);
}

/// 500 fixed cases per mode; the substrate pool additionally carries live
/// spatial devices the whole way through. Zero divergence tolerated.
#[test]
fn fixed_seed_oracle_spatial_devices_invisible_to_time_slice() {
    let mut rng = Lcg(0x4b756265_53686172 ^ 0x14); // §14
    for mode in [SchedMode::Reference, SchedMode::Indexed] {
        for case in 0..500 {
            let n_ops = 10 + (rng.next() % 50) as usize;
            let ops: Vec<Op> = (0..n_ops).map(|_| rng.op()).collect();
            let mut plain_pool = VgpuPool::new();
            let mut sub_pool = VgpuPool::new();
            seed_spatial(&mut sub_pool);
            let (mut plain_live, mut sub_live) = (Vec::new(), Vec::new());
            let (mut plain_uid, mut sub_uid) = (0u64, 0u64);
            for (i, op) in ops.iter().enumerate() {
                let d_plain = step(
                    &mut plain_pool,
                    &mut plain_live,
                    &mut plain_uid,
                    Path::Plain(mode),
                    op,
                );
                let d_sub = step(
                    &mut sub_pool,
                    &mut sub_live,
                    &mut sub_uid,
                    Path::TimeSliceSubstrate(mode),
                    op,
                );
                assert_eq!(
                    d_plain, d_sub,
                    "mode {mode:?} case {case} diverged at op {i} ({op:?})"
                );
            }
            assert_time_slice_devices_identical(&plain_pool, &sub_pool);
            sub_pool.verify_indexes().unwrap();
            // The spatial tenants never moved.
            for name in ["mig-a", "mig-b", "mig-c"] {
                let d = sub_pool.get(&GpuId::named(name)).expect("still resident");
                assert_eq!(d.attached.len(), 1, "{name} lost or gained a tenant");
            }
        }
    }
}

// ---- provenance mode axis (DESIGN.md §15) ----
//
// The substrate dispatcher must also be recorder-transparent: routing
// TimeSlice work through `schedule_substrate_prov` with a live flight
// recorder is decision- and pool-bit-identical to the uninstrumented
// dispatcher, even with populated spatial devices in the pool.

mod recorder_axis {
    use super::*;
    use ks_sim_core::time::SimTime;
    use ks_telemetry::provenance::{DecisionKind, SchedProv};
    use ks_telemetry::FlightRecorder;
    use kubeshare::algorithm::{outcome_of, schedule_substrate_prov};

    /// `step` for the substrate path with provenance capture wired in.
    fn step_recorded(
        pool: &mut VgpuPool,
        live: &mut Vec<(Uid, GpuId)>,
        next_uid: &mut u64,
        mode: SchedMode,
        rec: &FlightRecorder,
        prov: &mut SchedProv,
        op: &Op,
    ) -> Option<Decision> {
        let Op::Submit(r) = op else {
            return step(pool, live, next_uid, Path::TimeSliceSubstrate(mode), op);
        };
        let req = sched_request(r);
        let decision = schedule_substrate_prov(mode, Substrate::TimeSlice, &req, pool, prov);
        *next_uid += 1;
        let uid = Uid(*next_uid);
        apply(pool, uid, r, &decision);
        let outcome = outcome_of(&decision, prov);
        rec.record_scratch(
            SimTime::ZERO,
            uid.0,
            0,
            DecisionKind::Schedule,
            outcome,
            prov,
        );
        if let Decision::Assign(id) | Decision::NewDevice(id) = &decision {
            live.push((uid, id.clone()));
        }
        Some(decision)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// Recorder-on substrate scheduling equals recorder-off per step
        /// in both modes; final time-slice devices are bit-identical.
        #[test]
        fn substrate_recorder_on_matches_off(
            ops in proptest::collection::vec(gen_op(), 1..80),
        ) {
            for mode in [SchedMode::Reference, SchedMode::Indexed] {
                let mut off_pool = VgpuPool::new();
                let mut on_pool = VgpuPool::new();
                let (mut off_live, mut on_live) = (Vec::new(), Vec::new());
                let (mut off_uid, mut on_uid) = (0u64, 0u64);
                let rec = FlightRecorder::with_capacity(128);
                let mut prov = SchedProv::for_recorder(&rec);
                for (i, op) in ops.iter().enumerate() {
                    let d_off = step(
                        &mut off_pool,
                        &mut off_live,
                        &mut off_uid,
                        Path::TimeSliceSubstrate(mode),
                        op,
                    );
                    let d_on = step_recorded(
                        &mut on_pool,
                        &mut on_live,
                        &mut on_uid,
                        mode,
                        &rec,
                        &mut prov,
                        op,
                    );
                    prop_assert_eq!(&d_off, &d_on, "divergence at op {} ({:?})", i, op);
                }
                assert_time_slice_devices_identical(&off_pool, &on_pool);
                on_pool.verify_indexes().unwrap();
                let submits = ops.iter().filter(|o| matches!(o, Op::Submit(_))).count();
                prop_assert_eq!(rec.recorded(), submits as u64);
            }
        }
    }
}
