//! Property-based fault tolerance: pool accounting must be conserved under
//! arbitrary interleavings of sharePod submissions, container crashes, node
//! failures and node recoveries.
//!
//! The invariants checked after every injected operation (with the event
//! queue drained, i.e. at control-plane quiescence):
//!
//! 1. per-device residuals stay normalized: `util_free`, `mem_free` ∈ [0, 1];
//! 2. conservation: Σ attached demand + residual == device capacity (1.0),
//!    for both compute and memory;
//! 3. no leaked vGPU lives on a failed node;
//! 4. every bound sharePod points at a device that exists and carries its
//!    attachment (no dangling GPUID after recovery shuffles the pool).

use ks_cluster::api::pod::PodSpec;
use ks_cluster::api::{NodeConfig, ResourceList};
use ks_cluster::device_plugin::UnitAssignPolicy;
use ks_cluster::latency::LatencyModel;
use ks_cluster::scheduler::ScorePolicy;
use ks_cluster::sim::{ClusterConfig, GpuPluginKind};
use ks_sim_core::prelude::*;
use ks_vgpu::ShareSpec;
use kubeshare::sharepod::{SharePodPhase, SharePodSpec};
use kubeshare::system::KsEmit;
use kubeshare::{KsConfig, KsEvent, KsNotice, KubeShareSystem};
use proptest::prelude::*;

const NODES: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    /// Submit a sharePod with the given fractional demands.
    Submit { util: f64, mem: f64 },
    /// Crash the pick-th running backing pod (no-op when none run).
    CrashPod { pick: usize },
    /// Fail a node (idempotent when already down).
    FailNode { node: usize },
    /// Recover a node (idempotent when already up).
    RecoverNode { node: usize },
}

fn gen_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.05f64..0.6, 0.05f64..0.6).prop_map(|(util, mem)| Op::Submit { util, mem }),
        2 => (0usize..16).prop_map(|pick| Op::CrashPod { pick }),
        1 => (0usize..NODES).prop_map(|node| Op::FailNode { node }),
        1 => (0usize..NODES).prop_map(|node| Op::RecoverNode { node }),
    ]
}

struct World {
    ks: KubeShareSystem,
    notices: Vec<(SimTime, KsNotice)>,
}

struct Ev(KsEvent);

impl SimEvent<World> for Ev {
    fn fire(self, now: SimTime, w: &mut World, q: &mut EventQueue<Self>) {
        let mut out = Vec::new();
        let mut notes = Vec::new();
        w.ks.handle(now, self.0, &mut out, &mut notes);
        for n in notes {
            w.notices.push((now, n));
        }
        for (at, e) in out {
            q.schedule_at(at, Ev(e));
        }
    }
}

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        nodes: (0..NODES)
            .map(|i| NodeConfig {
                name: format!("node-{i}"),
                cpu_millis: 36_000,
                memory_bytes: 244 << 30,
                gpus: 2,
                gpu_memory_bytes: 16 << 30,
            })
            .collect(),
        latency: LatencyModel::default(),
        gpu_plugin: GpuPluginKind::WholeDevice,
        assign_policy: UnitAssignPolicy::Sequential,
        score: ScorePolicy::LeastAllocated,
    }
}

fn seed(eng: &mut Engine<World, Ev>, out: KsEmit) {
    for (at, e) in out {
        eng.queue.schedule_at(at, Ev(e));
    }
}

fn sp_spec(util: f64, mem: f64) -> SharePodSpec {
    SharePodSpec::new(
        PodSpec::new("tf:2.1", ResourceList::cpu_mem(1000, 1 << 30)),
        ShareSpec::new(util, 1.0, mem).unwrap(),
    )
}

/// Applies one op at the engine's current time and drains the queue.
fn apply(eng: &mut Engine<World, Ev>, op: &Op, down: &mut [bool; NODES]) {
    let now = eng.now() + SimDuration::from_secs(1);
    let mut out = Vec::new();
    let mut notes = Vec::new();
    match op {
        Op::Submit { util, mem } => {
            eng.world
                .ks
                .submit_sharepod(now, "sp", sp_spec(*util, *mem), &mut out);
        }
        Op::CrashPod { pick } => {
            let pods = eng.world.ks.running_backing_pods();
            if !pods.is_empty() {
                let pod = pods[pick % pods.len()];
                eng.world
                    .ks
                    .crash_pod(now, pod, "chaos", &mut out, &mut notes);
            }
        }
        Op::FailNode { node } => {
            down[*node] = true;
            eng.world
                .ks
                .fail_node(now, &format!("node-{node}"), &mut out, &mut notes);
        }
        Op::RecoverNode { node } => {
            down[*node] = false;
            eng.world
                .ks
                .recover_node(now, &format!("node-{node}"), &mut out);
        }
    }
    for n in notes {
        eng.world.notices.push((now, n));
    }
    seed(eng, out);
    eng.run_to_completion(1_000_000);
}

fn check_invariants(w: &World, down: &[bool; NODES]) {
    for d in w.ks.pool().devices() {
        // 1. residuals normalized.
        prop_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&d.util_free),
            "{}: util_free {} out of range",
            d.id,
            d.util_free
        );
        prop_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&d.mem_free),
            "{}: mem_free {} out of range",
            d.id,
            d.mem_free
        );
        // 2. conservation against unit capacity.
        let used_util: f64 = d.attached.values().map(|&(u, _)| u).sum();
        let used_mem: f64 = d.attached.values().map(|&(_, m)| m).sum();
        prop_assert!(
            (used_util + d.util_free - 1.0).abs() < 1e-6,
            "{}: Σutil {} + free {} ≠ 1",
            d.id,
            used_util,
            d.util_free
        );
        prop_assert!(
            (used_mem + d.mem_free - 1.0).abs() < 1e-6,
            "{}: Σmem {} + free {} ≠ 1",
            d.id,
            used_mem,
            d.mem_free
        );
        // 3. no vGPU survives on a dead node.
        if let Some(node) = d.node.as_deref() {
            let idx: usize = node
                .strip_prefix("node-")
                .and_then(|s| s.parse().ok())
                .expect("node name");
            prop_assert!(!down[idx], "{} leaked on failed {node}", d.id);
        }
    }
    // 4. bound sharePods point at live attachments.
    for (uid, sp) in w.ks.sharepods().iter() {
        if matches!(
            sp.status.phase,
            SharePodPhase::AwaitingVgpu | SharePodPhase::Starting | SharePodPhase::Running
        ) {
            let gpuid = sp
                .status
                .bound_gpuid
                .as_ref()
                .expect("bound phase implies GPUID");
            let dev = w.ks.pool().get(gpuid);
            prop_assert!(dev.is_some(), "{uid:?} bound to vanished {gpuid}");
            prop_assert!(
                dev.unwrap().attached.contains_key(&uid),
                "{uid:?} not attached to its bound {gpuid}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation holds at every quiescent point of an arbitrary
    /// submit / crash / fail / recover interleaving.
    #[test]
    fn pool_accounting_survives_chaos(ops in proptest::collection::vec(gen_op(), 1..40)) {
        let mut eng: Engine<World, Ev> = Engine::new(World {
            ks: KubeShareSystem::new(cluster_cfg(), KsConfig::default()),
            notices: Vec::new(),
        });
        let mut down = [false; NODES];
        for op in &ops {
            apply(&mut eng, op, &mut down);
            check_invariants(&eng.world, &down);
        }
        // Full recovery at the end: every node back, queue drained — all
        // non-rejected sharePods must eventually run again.
        for node in 0..NODES {
            apply(&mut eng, &Op::RecoverNode { node }, &mut down);
        }
        check_invariants(&eng.world, &down);
    }
}
