//! Differential test oracle: `SchedMode::Indexed` must make byte-identical
//! decisions to the paper-faithful `SchedMode::Reference` on any pool
//! state and request stream (DESIGN.md §10), and the pool's capacity
//! indexes must always equal a from-scratch rebuild.
//!
//! Three layers:
//!
//! 1. proptest streams — interleavings of schedule/attach/detach/
//!    mark_ready/mark_releasing/remove, asserting per-step decision
//!    equality and index consistency;
//! 2. batch oracle — `schedule_batch` decision vectors match across modes;
//! 3. a fixed-seed 1000-case oracle (no proptest shrink machinery, a
//!    plain LCG) so CI exercises the same cases on every run and fails on
//!    the first divergence.

use ks_cluster::api::Uid;
use kubeshare::algorithm::{
    schedule, schedule_batch, schedule_indexed, BatchEntry, Decision, SchedMode, SchedRequest,
};
use kubeshare::gpuid::GpuId;
use kubeshare::locality::Locality;
use kubeshare::pool::{VgpuPhase, VgpuPool};
use proptest::prelude::*;

/// A generated request. Demands are drawn mostly from a small discrete
/// set so fit-key ties actually happen (ties are where best-fit /
/// worst-fit tie-breaking can diverge); labels come from tiny alphabets
/// so affinity groups, anti-affinity conflicts, and tenant exclusions all
/// collide. `util == 0.0` with `mem > 0` is explicitly in range.
#[derive(Debug, Clone)]
struct GenReq {
    util: f64,
    mem: f64,
    aff: Option<u8>,
    anti: Option<u8>,
    excl: Option<u8>,
}

fn frac() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => (0usize..7).prop_map(|i| [0.0, 0.1, 0.25, 0.3, 0.5, 0.75, 0.9][i]),
        1 => 0.0f64..0.95,
    ]
}

fn gen_req() -> impl Strategy<Value = GenReq> {
    (
        frac(),
        frac(),
        proptest::option::weighted(0.25, 0u8..3),
        proptest::option::weighted(0.25, 0u8..3),
        proptest::option::weighted(0.25, 0u8..2),
    )
        .prop_map(|(util, mem, aff, anti, excl)| GenReq {
            util,
            mem,
            aff,
            anti,
            excl,
        })
}

/// One step of a pool-state interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a request through both modes; attach on success.
    Submit(GenReq),
    /// Detach the k-th (mod live count) attachment.
    Detach(u8),
    /// Mark the k-th creating device ready on node `node-{k % 4}`.
    Ready(u8),
    /// Mark the k-th unattached device releasing.
    Release(u8),
    /// Remove the k-th releasing device from the pool.
    Remove(u8),
}

fn gen_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => gen_req().prop_map(Op::Submit),
        2 => any::<u8>().prop_map(Op::Detach),
        1 => any::<u8>().prop_map(Op::Ready),
        1 => any::<u8>().prop_map(Op::Release),
        1 => any::<u8>().prop_map(Op::Remove),
    ]
}

fn locality(r: &GenReq) -> Locality {
    let mut loc = Locality::none();
    if let Some(a) = r.aff {
        loc = loc.with_affinity(format!("aff-{a}"));
    }
    if let Some(a) = r.anti {
        loc = loc.with_anti_affinity(format!("anti-{a}"));
    }
    if let Some(e) = r.excl {
        loc = loc.with_exclusion(format!("excl-{e}"));
    }
    loc
}

fn sched_request(r: &GenReq) -> SchedRequest {
    SchedRequest {
        util: r.util,
        mem: r.mem,
        locality: locality(r),
    }
}

/// Applies a decision the way KubeShare-Sched binds it.
fn apply(pool: &mut VgpuPool, uid: Uid, r: &GenReq, decision: &Decision) {
    let loc = locality(r);
    let id = match decision {
        Decision::Assign(id) => id.clone(),
        Decision::NewDevice(id) => {
            pool.insert_creating(id.clone());
            id.clone()
        }
        Decision::Reject(_) => return,
        // Time-slice-only differential: neither mode reconfigures.
        Decision::Reconfigure(_) => unreachable!("time-slice path proposed a reconfigure"),
    };
    pool.attach(
        &id,
        uid,
        r.util,
        r.mem,
        loc.affinity.as_deref(),
        loc.anti_affinity.as_deref(),
        loc.exclusion.as_deref(),
    );
}

/// Drives one op against a pool in a given mode. Returns the decision for
/// `Submit` ops so the caller can compare across modes. Non-submit ops
/// mutate deterministically from the pool's current state, so two pools
/// that have made identical decisions stay identical.
fn step(
    pool: &mut VgpuPool,
    live: &mut Vec<(Uid, GpuId)>,
    next_uid: &mut u64,
    mode: SchedMode,
    op: &Op,
) -> Option<Decision> {
    match op {
        Op::Submit(r) => {
            let req = sched_request(r);
            let decision = match mode {
                SchedMode::Reference => schedule(&req, pool),
                SchedMode::Indexed => schedule_indexed(&req, pool),
                // Auto is a per-decision pick between the two fixed
                // implementations; resolve it and recurse into whichever
                // path the pool size selects.
                SchedMode::Auto => match mode.resolve(pool.len()) {
                    SchedMode::Reference => schedule(&req, pool),
                    _ => schedule_indexed(&req, pool),
                },
            };
            *next_uid += 1;
            let uid = Uid(*next_uid);
            apply(pool, uid, r, &decision);
            if !matches!(decision, Decision::Reject(_)) {
                let id = match &decision {
                    Decision::Assign(id) | Decision::NewDevice(id) => id.clone(),
                    Decision::Reject(_) | Decision::Reconfigure(_) => unreachable!(),
                };
                live.push((uid, id));
            }
            Some(decision)
        }
        Op::Detach(k) => {
            if !live.is_empty() {
                let (uid, id) = live.remove(*k as usize % live.len());
                pool.detach(&id, uid);
            }
            None
        }
        Op::Ready(k) => {
            let creating: Vec<GpuId> = pool
                .devices()
                .filter(|d| d.phase == VgpuPhase::Creating && !d.releasing)
                .map(|d| d.id.clone())
                .collect();
            if !creating.is_empty() {
                let id = creating[*k as usize % creating.len()].clone();
                pool.mark_ready(&id, format!("node-{}", k % 4), format!("GPU-{id}"));
            }
            None
        }
        Op::Release(k) => {
            let idle: Vec<GpuId> = pool
                .devices()
                .filter(|d| d.attached.is_empty() && !d.releasing)
                .map(|d| d.id.clone())
                .collect();
            if !idle.is_empty() {
                let id = idle[*k as usize % idle.len()].clone();
                pool.mark_releasing(&id);
            }
            None
        }
        Op::Remove(k) => {
            let releasing: Vec<GpuId> = pool
                .devices()
                .filter(|d| d.releasing)
                .map(|d| d.id.clone())
                .collect();
            if !releasing.is_empty() {
                let id = releasing[*k as usize % releasing.len()].clone();
                pool.remove(&id);
            }
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// The oracle: over any interleaving, every decision the indexed
    /// scheduler makes equals the reference's, and both pools stay
    /// structurally identical.
    #[test]
    fn indexed_matches_reference_per_step(ops in proptest::collection::vec(gen_op(), 1..80)) {
        let mut ref_pool = VgpuPool::new();
        let mut idx_pool = VgpuPool::new();
        let (mut ref_live, mut idx_live) = (Vec::new(), Vec::new());
        let (mut ref_uid, mut idx_uid) = (0u64, 0u64);
        for (i, op) in ops.iter().enumerate() {
            let d_ref = step(&mut ref_pool, &mut ref_live, &mut ref_uid, SchedMode::Reference, op);
            let d_idx = step(&mut idx_pool, &mut idx_live, &mut idx_uid, SchedMode::Indexed, op);
            prop_assert_eq!(&d_ref, &d_idx, "divergence at op {} ({:?})", i, op);
        }
        // Identical decision streams must leave identical pools.
        prop_assert_eq!(ref_pool.len(), idx_pool.len());
        for (a, b) in ref_pool.devices().zip(idx_pool.devices()) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(a.util_free.to_bits(), b.util_free.to_bits());
            prop_assert_eq!(a.mem_free.to_bits(), b.mem_free.to_bits());
            prop_assert_eq!(&a.aff, &b.aff);
        }
    }

    /// Index consistency: after any interleaving, the incrementally
    /// maintained capacity indexes equal a from-scratch rebuild.
    #[test]
    fn indexes_match_scratch_rebuild(ops in proptest::collection::vec(gen_op(), 1..80)) {
        let mut pool = VgpuPool::new();
        let mut live = Vec::new();
        let mut uid = 0u64;
        for op in &ops {
            step(&mut pool, &mut live, &mut uid, SchedMode::Indexed, op);
            if let Err(e) = pool.verify_indexes() {
                prop_assert!(false, "after {:?}: {}", op, e);
            }
        }
    }

    /// Batch oracle: draining a pending queue produces identical decision
    /// vectors in both modes.
    #[test]
    fn batch_decisions_match(reqs in proptest::collection::vec(gen_req(), 1..60)) {
        let entries: Vec<BatchEntry> = reqs
            .iter()
            .enumerate()
            .map(|(i, r)| BatchEntry { uid: Uid(i as u64 + 1), req: sched_request(r) })
            .collect();
        let mut ref_pool = VgpuPool::new();
        let mut idx_pool = VgpuPool::new();
        let ref_out = schedule_batch(SchedMode::Reference, &entries, &mut ref_pool);
        let idx_out = schedule_batch(SchedMode::Indexed, &entries, &mut idx_pool);
        prop_assert_eq!(ref_out, idx_out);
        idx_pool.verify_indexes().unwrap();
    }
}

// ---- fixed-seed oracle (runs the same 1000 cases on every CI run) ----

/// Deterministic LCG (Knuth MMIX constants) so the CI oracle needs no
/// proptest seed plumbing: same binary, same cases, forever.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn frac(&mut self) -> f64 {
        const CHOICES: [f64; 7] = [0.0, 0.1, 0.25, 0.3, 0.5, 0.75, 0.9];
        if self.next().is_multiple_of(5) {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 0.95
        } else {
            CHOICES[self.next() as usize % CHOICES.len()]
        }
    }

    fn label(&mut self, p_num: u64, p_den: u64, alphabet: u8) -> Option<u8> {
        (self.next() % p_den < p_num).then(|| (self.next() % alphabet as u64) as u8)
    }

    fn op(&mut self) -> Op {
        match self.next() % 10 {
            0..=4 => Op::Submit(GenReq {
                util: self.frac(),
                mem: self.frac(),
                aff: self.label(1, 4, 3),
                anti: self.label(1, 4, 3),
                excl: self.label(1, 4, 2),
            }),
            5 | 6 => Op::Detach((self.next() % 256) as u8),
            7 => Op::Ready((self.next() % 256) as u8),
            8 => Op::Release((self.next() % 256) as u8),
            _ => Op::Remove((self.next() % 256) as u8),
        }
    }
}

#[test]
fn fixed_seed_oracle_1000_cases_zero_divergence() {
    let mut rng = Lcg(0x4b756265_53686172); // "KubeShar"
    let mut divergences = 0u32;
    for case in 0..1000 {
        let n_ops = 10 + (rng.next() % 60) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| rng.op()).collect();
        let mut ref_pool = VgpuPool::new();
        let mut idx_pool = VgpuPool::new();
        let (mut ref_live, mut idx_live) = (Vec::new(), Vec::new());
        let (mut ref_uid, mut idx_uid) = (0u64, 0u64);
        for (i, op) in ops.iter().enumerate() {
            let d_ref = step(
                &mut ref_pool,
                &mut ref_live,
                &mut ref_uid,
                SchedMode::Reference,
                op,
            );
            let d_idx = step(
                &mut idx_pool,
                &mut idx_live,
                &mut idx_uid,
                SchedMode::Indexed,
                op,
            );
            if d_ref != d_idx {
                divergences += 1;
                eprintln!("case {case} op {i}: reference={d_ref:?} indexed={d_idx:?} ({op:?})");
                break;
            }
        }
        idx_pool
            .verify_indexes()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
    assert_eq!(divergences, 0, "indexed scheduler diverged from reference");
}

// ---- provenance mode axis (DESIGN.md §15) ----
//
// The flight recorder must be a pure observer: scheduling with a live
// recorder attached is decision- and pool-bit-identical to scheduling
// without one.

mod recorder_axis {
    use super::*;
    use ks_sim_core::time::SimTime;
    use ks_telemetry::provenance::{DecisionKind, SchedProv};
    use ks_telemetry::FlightRecorder;
    use kubeshare::algorithm::{outcome_of, schedule_with_prov};

    /// `step` with the decision path instrumented: a hoisted scratch
    /// collector feeding a live flight recorder, exactly as
    /// `schedule_batch_recorded` wires it. Non-submit ops are shared with
    /// the uninstrumented driver.
    fn step_recorded(
        pool: &mut VgpuPool,
        live: &mut Vec<(Uid, GpuId)>,
        next_uid: &mut u64,
        rec: &FlightRecorder,
        prov: &mut SchedProv,
        op: &Op,
    ) -> Option<Decision> {
        let Op::Submit(r) = op else {
            return step(pool, live, next_uid, SchedMode::Indexed, op);
        };
        let req = sched_request(r);
        let decision = schedule_with_prov(SchedMode::Indexed, &req, pool, prov);
        *next_uid += 1;
        let uid = Uid(*next_uid);
        apply(pool, uid, r, &decision);
        let outcome = outcome_of(&decision, prov);
        rec.record_scratch(
            SimTime::ZERO,
            uid.0,
            0,
            DecisionKind::Schedule,
            outcome,
            prov,
        );
        if let Decision::Assign(id) | Decision::NewDevice(id) = &decision {
            live.push((uid, id.clone()));
        }
        Some(decision)
    }

    /// Asserts two pools are bit-identical, field by field.
    fn assert_pools_identical(a: &VgpuPool, b: &VgpuPool) {
        assert_eq!(a.len(), b.len(), "pool sizes diverged");
        for (x, y) in a.devices().zip(b.devices()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.util_free.to_bits(), y.util_free.to_bits(), "{}", x.id);
            assert_eq!(x.mem_free.to_bits(), y.mem_free.to_bits(), "{}", x.id);
            assert_eq!(x.aff, y.aff);
            assert_eq!(x.anti_aff, y.anti_aff);
            assert_eq!(x.excl, y.excl);
            assert_eq!(x.attached, y.attached);
            assert_eq!(x.phase, y.phase);
            assert_eq!(x.releasing, y.releasing);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(300))]

        /// Over any interleaving, recorder-on scheduling equals
        /// recorder-off per step, the final pools are bit-identical, and
        /// every submit left exactly one record.
        #[test]
        fn recorder_on_matches_recorder_off(
            ops in proptest::collection::vec(gen_op(), 1..80),
        ) {
            let mut off_pool = VgpuPool::new();
            let mut on_pool = VgpuPool::new();
            let (mut off_live, mut on_live) = (Vec::new(), Vec::new());
            let (mut off_uid, mut on_uid) = (0u64, 0u64);
            let rec = FlightRecorder::with_capacity(256);
            let mut prov = SchedProv::for_recorder(&rec);
            for (i, op) in ops.iter().enumerate() {
                let d_off =
                    step(&mut off_pool, &mut off_live, &mut off_uid, SchedMode::Indexed, op);
                let d_on =
                    step_recorded(&mut on_pool, &mut on_live, &mut on_uid, &rec, &mut prov, op);
                prop_assert_eq!(&d_off, &d_on, "divergence at op {} ({:?})", i, op);
            }
            assert_pools_identical(&off_pool, &on_pool);
            on_pool.verify_indexes().unwrap();
            let submits = ops.iter().filter(|o| matches!(o, Op::Submit(_))).count();
            prop_assert_eq!(rec.recorded(), submits as u64);
        }
    }

    /// Fixed-seed lane of the same axis: the CI-pinned cases replay with
    /// a live recorder and must not perturb a single decision.
    #[test]
    fn fixed_seed_oracle_recorder_axis_zero_divergence() {
        let mut rng = Lcg(0x4b756265_53686172 ^ 0x15); // §15
        for case in 0..300 {
            let n_ops = 10 + (rng.next() % 60) as usize;
            let ops: Vec<Op> = (0..n_ops).map(|_| rng.op()).collect();
            let mut off_pool = VgpuPool::new();
            let mut on_pool = VgpuPool::new();
            let (mut off_live, mut on_live) = (Vec::new(), Vec::new());
            let (mut off_uid, mut on_uid) = (0u64, 0u64);
            let rec = FlightRecorder::with_capacity(64);
            let mut prov = SchedProv::for_recorder(&rec);
            for (i, op) in ops.iter().enumerate() {
                let d_off = step(
                    &mut off_pool,
                    &mut off_live,
                    &mut off_uid,
                    SchedMode::Indexed,
                    op,
                );
                let d_on =
                    step_recorded(&mut on_pool, &mut on_live, &mut on_uid, &rec, &mut prov, op);
                assert_eq!(d_off, d_on, "case {case} diverged at op {i} ({op:?})");
            }
            assert_pools_identical(&off_pool, &on_pool);
        }
    }
}
