//! Property-based tests: Algorithm 1 and the vGPU pool must uphold the
//! paper's scheduling invariants for arbitrary request streams.

use ks_cluster::api::Uid;
use kubeshare::algorithm::{schedule, Decision, SchedRequest};
use kubeshare::locality::Locality;
use kubeshare::pool::VgpuPool;
use proptest::prelude::*;

/// A generated request: fractional demands plus optional labels drawn from
/// small alphabets (so collisions actually happen).
#[derive(Debug, Clone)]
struct GenReq {
    util: f64,
    mem: f64,
    aff: Option<u8>,
    anti: Option<u8>,
    excl: Option<u8>,
}

fn gen_req() -> impl Strategy<Value = GenReq> {
    (
        0.05f64..0.9,
        0.05f64..0.9,
        proptest::option::weighted(0.25, 0u8..3),
        proptest::option::weighted(0.25, 0u8..3),
        proptest::option::weighted(0.25, 0u8..2),
    )
        .prop_map(|(util, mem, aff, anti, excl)| GenReq {
            util,
            mem,
            aff,
            anti,
            excl,
        })
}

fn locality(r: &GenReq) -> Locality {
    let mut loc = Locality::none();
    if let Some(a) = r.aff {
        loc = loc.with_affinity(format!("aff-{a}"));
    }
    if let Some(a) = r.anti {
        loc = loc.with_anti_affinity(format!("anti-{a}"));
    }
    if let Some(e) = r.excl {
        loc = loc.with_exclusion(format!("excl-{e}"));
    }
    loc
}

/// Drives a request stream through schedule+attach, mirroring what
/// KubeShare-Sched does, and returns the pool plus each request's device.
fn drive(reqs: &[GenReq]) -> (VgpuPool, Vec<Option<kubeshare::GpuId>>) {
    let mut pool = VgpuPool::new();
    let mut placed = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        let loc = locality(r);
        let req = SchedRequest {
            util: r.util,
            mem: r.mem,
            locality: loc.clone(),
        };
        let decision = schedule(&req, &mut pool);
        let id = match decision {
            Decision::Assign(id) => Some(id),
            Decision::NewDevice(id) => {
                pool.insert_creating(id.clone());
                Some(id)
            }
            Decision::Reject(_) => None,
            // `schedule` is the time-slice path; it never reconfigures.
            Decision::Reconfigure(_) => unreachable!("time-slice path proposed a reconfigure"),
        };
        if let Some(id) = &id {
            pool.attach(
                id,
                Uid(i as u64 + 1),
                r.util,
                r.mem,
                loc.affinity.as_deref(),
                loc.anti_affinity.as_deref(),
                loc.exclusion.as_deref(),
            );
        }
        placed.push(id);
    }
    (pool, placed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Capacity invariant: no device is ever over-committed by request or
    /// memory (the `attach` assert would fire; checked explicitly too).
    #[test]
    fn no_device_overcommitted(reqs in proptest::collection::vec(gen_req(), 1..60)) {
        let (pool, _) = drive(&reqs);
        for d in pool.devices() {
            prop_assert!(d.util_free >= -1e-9);
            prop_assert!(d.mem_free >= -1e-9);
            let total: f64 = d.attached.values().map(|&(u, _)| u).sum();
            prop_assert!(total <= 1.0 + 1e-9, "Σrequest = {total}");
        }
    }

    /// Anti-affinity invariant: two placed requests with the same
    /// anti-affinity label never share a device.
    #[test]
    fn anti_affinity_never_colocates(reqs in proptest::collection::vec(gen_req(), 1..60)) {
        let (_, placed) = drive(&reqs);
        for i in 0..reqs.len() {
            for j in (i + 1)..reqs.len() {
                if let (Some(a), Some(b)) = (&reqs[i].anti, &reqs[j].anti) {
                    if a == b {
                        if let (Some(di), Some(dj)) = (&placed[i], &placed[j]) {
                            prop_assert_ne!(di, dj, "anti-affine pair co-located");
                        }
                    }
                }
            }
        }
    }

    /// Exclusion invariant: requests with different exclusion labels (or
    /// one labelled, one not) never share a device.
    #[test]
    fn exclusion_never_mixes_tenants(reqs in proptest::collection::vec(gen_req(), 1..60)) {
        let (_, placed) = drive(&reqs);
        for i in 0..reqs.len() {
            for j in (i + 1)..reqs.len() {
                if reqs[i].excl != reqs[j].excl {
                    if let (Some(di), Some(dj)) = (&placed[i], &placed[j]) {
                        prop_assert_ne!(
                            di, dj,
                            "tenants {:?} and {:?} share a device",
                            reqs[i].excl, reqs[j].excl
                        );
                    }
                }
            }
        }
    }

    /// Affinity invariant: all placed requests with the same affinity
    /// label land on the same device.
    #[test]
    fn affinity_groups_stay_together(reqs in proptest::collection::vec(gen_req(), 1..60)) {
        let (_, placed) = drive(&reqs);
        for label in 0u8..3 {
            let devices: Vec<_> = reqs
                .iter()
                .zip(&placed)
                .filter(|(r, p)| r.aff == Some(label) && p.is_some())
                .map(|(_, p)| p.clone().unwrap())
                .collect();
            for w in devices.windows(2) {
                prop_assert_eq!(&w[0], &w[1], "affinity group split");
            }
        }
    }

    /// Determinism: the same request stream always yields the same
    /// placements.
    #[test]
    fn scheduling_is_deterministic(reqs in proptest::collection::vec(gen_req(), 1..40)) {
        let (_, a) = drive(&reqs);
        let (_, b) = drive(&reqs);
        prop_assert_eq!(a, b);
    }

    /// Rejections only happen for affinity-constrained requests — a
    /// label-free request can always fall back to a new device.
    #[test]
    fn only_affinity_requests_get_rejected(reqs in proptest::collection::vec(gen_req(), 1..60)) {
        let (_, placed) = drive(&reqs);
        for (r, p) in reqs.iter().zip(&placed) {
            if p.is_none() {
                prop_assert!(r.aff.is_some(), "label-free request rejected: {r:?}");
            }
        }
    }

    /// Pool attach/detach round trip restores full capacity and clears
    /// labels.
    #[test]
    fn detach_restores_capacity(reqs in proptest::collection::vec(gen_req(), 1..40)) {
        let (mut pool, placed) = drive(&reqs);
        for (i, id) in placed.iter().enumerate() {
            if let Some(id) = id {
                if pool.get(id).is_some() {
                    pool.detach(id, Uid(i as u64 + 1));
                }
            }
        }
        for d in pool.devices() {
            prop_assert!((d.util_free - 1.0).abs() < 1e-9);
            prop_assert!((d.mem_free - 1.0).abs() < 1e-9);
            prop_assert!(d.aff.is_empty() && d.anti_aff.is_empty() && d.excl.is_none());
            prop_assert!(d.is_idle());
        }
    }
}
