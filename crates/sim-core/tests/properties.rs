//! Property-based tests for the simulation core.

use ks_sim_core::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Popping the queue always yields events in non-decreasing time order,
    /// regardless of the insertion order.
    #[test]
    fn queue_pops_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-time events come out in insertion order (determinism).
    #[test]
    fn queue_fifo_within_instant(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_secs(1), i);
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let want: Vec<usize> = (0..n).collect();
        prop_assert_eq!(got, want);
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule_at(SimTime::from_micros(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if mask[*i % mask.len()] {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push(*i);
            }
        }
        let mut got: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        got.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(got, kept);
    }

    /// Welford accumulator agrees with the naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..500)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// BusyIntegrator integral equals the hand-computed piecewise sum.
    #[test]
    fn busy_integrator_matches_manual(levels in proptest::collection::vec(0f64..8.0, 1..50)) {
        let mut b = BusyIntegrator::new(SimTime::ZERO, 0.0);
        let step = SimDuration::from_secs(1);
        let mut t = SimTime::ZERO;
        for &l in &levels {
            b.set_level(t, l);
            t += step;
        }
        let manual: f64 = levels.iter().sum(); // each level held for 1s
        prop_assert!((b.integral_until(t) - manual).abs() < 1e-6);
    }

    /// Clamped normal always lands inside the clamp interval.
    #[test]
    fn normal_clamped_in_bounds(seed in any::<u64>(), mean in -2.0f64..2.0, sd in 0.0f64..3.0) {
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = r.normal_clamped(mean, sd, 0.0, 1.0);
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    /// Exponential variates are non-negative and finite.
    #[test]
    fn exponential_non_negative(seed in any::<u64>(), rate in 0.01f64..100.0) {
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = r.exponential(rate);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }
}

/// Deterministic end-to-end check: an M/D/1-style queue simulated twice with
/// the same seed produces identical completion times.
#[test]
fn engine_runs_are_reproducible() {
    fn run(seed: u64) -> Vec<SimTime> {
        struct World {
            rng: SimRng,
            busy_until: SimTime,
            completions: Vec<SimTime>,
            remaining: u32,
        }
        enum Ev {
            Arrive,
            Done,
        }
        impl SimEvent<World> for Ev {
            fn fire(self, now: SimTime, w: &mut World, q: &mut EventQueue<Self>) {
                match self {
                    Ev::Arrive => {
                        let service = SimDuration::from_millis(50);
                        let start = now.max(w.busy_until);
                        w.busy_until = start + service;
                        q.schedule_at(w.busy_until, Ev::Done);
                        if w.remaining > 0 {
                            w.remaining -= 1;
                            let gap = w.rng.exp_interarrival(SimDuration::from_millis(40));
                            q.schedule_in(gap, Ev::Arrive);
                        }
                    }
                    Ev::Done => w.completions.push(now),
                }
            }
        }
        let mut eng = Engine::new(World {
            rng: SimRng::seed_from_u64(seed),
            busy_until: SimTime::ZERO,
            completions: Vec::new(),
            remaining: 200,
        });
        eng.queue.schedule_at(SimTime::ZERO, Ev::Arrive);
        assert_eq!(eng.run_to_completion(10_000), RunOutcome::Drained);
        eng.world.completions
    }

    let a = run(42);
    let b = run(42);
    let c = run(43);
    assert_eq!(a, b, "same seed must replay identically");
    assert_ne!(a, c, "different seeds should differ");
    assert_eq!(a.len(), 201);
}
