//! The simulation driver: pops events in time order and applies them to a
//! world.
//!
//! The engine is generic over the world type `W` and the event type `E`.
//! Crates define their own worlds and events; an event's [`SimEvent::fire`]
//! receives mutable access to the world *and* the queue so it can schedule
//! follow-up events. Composition across crates works by embedding: an outer
//! event enum wraps inner ones and delegates.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation event applicable to world `W`.
pub trait SimEvent<W>: Sized {
    /// Applies the event at instant `now`, possibly mutating the world and
    /// scheduling further events.
    fn fire(self, now: SimTime, world: &mut W, queue: &mut EventQueue<Self>);
}

/// Outcome of a full simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained before the horizon/budget was reached.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (possible livelock guard).
    BudgetExhausted,
}

/// A discrete-event simulation: a world, a queue of future events, a clock.
pub struct Engine<W, E> {
    /// The mutable simulation state events act upon.
    pub world: W,
    /// Pending events. Public so setup code can seed initial events.
    pub queue: EventQueue<E>,
}

impl<W, E: SimEvent<W>> Engine<W, E> {
    /// Creates an engine around an initial world with an empty queue.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Fires the single earliest event. Returns `false` when drained.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, ev)) => {
                ev.fire(t, &mut self.world, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains or the next event would fire strictly
    /// after `horizon`. Events at exactly `horizon` still fire.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs to queue exhaustion, firing at most `max_events` events as a
    /// livelock guard.
    pub fn run_to_completion(&mut self, max_events: u64) -> RunOutcome {
        for _ in 0..max_events {
            if !self.step() {
                return RunOutcome::Drained;
            }
        }
        if self.queue.is_empty() {
            RunOutcome::Drained
        } else {
            RunOutcome::BudgetExhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A counter world with a self-rescheduling tick event.
    struct Counter {
        ticks: u32,
        limit: u32,
    }

    enum Ev {
        Tick,
        Bump(u32),
    }

    impl SimEvent<Counter> for Ev {
        fn fire(self, _now: SimTime, world: &mut Counter, queue: &mut EventQueue<Self>) {
            match self {
                Ev::Tick => {
                    world.ticks += 1;
                    if world.ticks < world.limit {
                        queue.schedule_in(SimDuration::from_secs(1), Ev::Tick);
                    }
                }
                Ev::Bump(n) => world.ticks += n,
            }
        }
    }

    #[test]
    fn self_rescheduling_event_runs_to_limit() {
        let mut eng = Engine::new(Counter { ticks: 0, limit: 5 });
        eng.queue.schedule_at(SimTime::ZERO, Ev::Tick);
        let outcome = eng.run_to_completion(1_000);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(eng.world.ticks, 5);
        assert_eq!(eng.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut eng = Engine::new(Counter {
            ticks: 0,
            limit: 100,
        });
        eng.queue.schedule_at(SimTime::ZERO, Ev::Tick);
        let outcome = eng.run_until(SimTime::from_secs(3));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Ticks at t=0,1,2,3 fired; t=4 pending.
        assert_eq!(eng.world.ticks, 4);
        assert_eq!(eng.queue.len(), 1);
    }

    #[test]
    fn budget_guard_trips() {
        let mut eng = Engine::new(Counter {
            ticks: 0,
            limit: u32::MAX,
        });
        eng.queue.schedule_at(SimTime::ZERO, Ev::Tick);
        assert_eq!(eng.run_to_completion(10), RunOutcome::BudgetExhausted);
        assert_eq!(eng.world.ticks, 10);
    }

    #[test]
    fn mixed_events_fire_in_order() {
        let mut eng = Engine::new(Counter { ticks: 0, limit: 0 });
        eng.queue.schedule_at(SimTime::from_secs(2), Ev::Bump(10));
        eng.queue.schedule_at(SimTime::from_secs(1), Ev::Bump(1));
        assert!(eng.step());
        assert_eq!(eng.world.ticks, 1);
        assert!(eng.step());
        assert_eq!(eng.world.ticks, 11);
        assert!(!eng.step());
    }
}
