//! Streaming summary statistics (Welford's online algorithm).

use serde::Serialize;

/// Single-pass mean / variance / min / max accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// A finished summary produced by [`OnlineStats::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Population standard deviation (0 if fewer than 2 observations).
    pub std_dev: f64,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation: {x}");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_sequence() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..33] {
            left.push(x);
        }
        for &x in &data[33..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s.summary();
        s.merge(&OnlineStats::new());
        assert_eq!(s.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&s);
        assert_eq!(empty.summary(), before);
    }
}
