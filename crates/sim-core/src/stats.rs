//! Streaming summary statistics (Welford's online algorithm).

use serde::Serialize;

/// Single-pass mean / variance / min / max accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// A finished summary produced by [`OnlineStats::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Population standard deviation (0 if fewer than 2 observations).
    pub std_dev: f64,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation: {x}");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average and variance, for online
/// anomaly scoring over streaming series.
///
/// Each observation folds in with weight `alpha` (recent-biased); the
/// variance recursion is the standard exponentially weighted form
/// `var ← (1 − α)·(var + α·δ²)` where `δ = x − mean_before`. The first
/// observation seeds the mean with zero variance. [`Ewma::z_score`]
/// answers "how surprising is `x` against the learned baseline" with a
/// caller-supplied standard-deviation floor so flat series do not make
/// every tiny wiggle infinitely surprising.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    count: u64,
    mean: f64,
    var: f64,
}

impl Ewma {
    /// Creates an accumulator with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Ewma {
            alpha,
            count: 0,
            mean: 0.0,
            var: 0.0,
        }
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation: {x}");
        if self.count == 0 {
            self.mean = x;
            self.var = 0.0;
        } else {
            let delta = x - self.mean;
            let incr = self.alpha * delta;
            self.mean += incr;
            self.var = (1.0 - self.alpha) * (self.var + delta * incr);
        }
        self.count += 1;
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current exponentially weighted mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current exponentially weighted variance (0 until two observations).
    pub fn variance(&self) -> f64 {
        self.var.max(0.0)
    }

    /// Current exponentially weighted standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard score of `x` against the learned baseline, with the
    /// standard deviation floored at `min_std` (> 0) to bound surprise
    /// on near-constant series. Returns 0 before any observation.
    pub fn z_score(&self, x: f64, min_std: f64) -> f64 {
        debug_assert!(min_std > 0.0, "min_std must be positive");
        if self.count == 0 {
            return 0.0;
        }
        (x - self.mean) / self.std_dev().max(min_std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_sequence() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..33] {
            left.push(x);
        }
        for &x in &data[33..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn ewma_constant_series_learns_mean_with_zero_variance() {
        let mut e = Ewma::new(0.3);
        for _ in 0..50 {
            e.push(4.0);
        }
        assert_eq!(e.count(), 50);
        assert!((e.mean() - 4.0).abs() < 1e-12);
        assert!(e.variance() < 1e-12);
        // Flat series: the floor keeps the z finite and proportional.
        assert!((e.z_score(4.5, 0.1) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_step_change_scores_high_then_adapts() {
        let mut e = Ewma::new(0.2);
        // Baseline around 10 with small noise.
        for i in 0..100 {
            e.push(10.0 + if i % 2 == 0 { 0.5 } else { -0.5 });
        }
        let z_step = e.z_score(20.0, 0.01);
        assert!(z_step > 6.0, "step should be surprising, z={z_step}");
        // After the detector would fire, continued pushes adapt the mean.
        for _ in 0..100 {
            e.push(20.0);
        }
        assert!((e.mean() - 20.0).abs() < 0.5);
        assert!(e.z_score(20.0, 0.01).abs() < 1.0);
    }

    #[test]
    fn ewma_slow_drift_stays_unsurprising() {
        let mut e = Ewma::new(0.2);
        let mut x = 10.0;
        let mut max_z: f64 = 0.0;
        for _ in 0..500 {
            let z = e.z_score(x, 0.05);
            if e.count() > 10 {
                max_z = max_z.max(z.abs());
            }
            e.push(x);
            x += 0.01; // drift far slower than the EWMA adapts
        }
        assert!(max_z < 3.0, "drift should track, max z={max_z}");
    }

    #[test]
    fn ewma_alpha_one_tracks_last_value_exactly() {
        let mut e = Ewma::new(1.0);
        for x in [3.0, -7.0, 42.0] {
            e.push(x);
            assert_eq!(e.mean(), x);
            assert!(e.variance() < 1e-12);
        }
    }

    #[test]
    fn ewma_before_first_observation_z_is_zero() {
        let e = Ewma::new(0.5);
        assert_eq!(e.z_score(1e9, 0.01), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s.summary();
        s.merge(&OnlineStats::new());
        assert_eq!(s.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&s);
        assert_eq!(empty.summary(), before);
    }
}
