//! Virtual time for the discrete-event simulation.
//!
//! All simulated clocks in this workspace use [`SimTime`] (an instant) and
//! [`SimDuration`] (a span), both integer microsecond counts. Integer time
//! keeps event ordering exact and reproducible: two runs with the same seed
//! produce byte-identical traces.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled at or past this instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds (rounding to microseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "SimTime must be non-negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds (rounding to microseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "SimDuration must be non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a non-negative factor, rounding to microseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "scale factor must be non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Ratio of this span to `other`; panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "division by zero-length SimDuration");
        self.0 as f64 / other.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_micros(), 13_000_000);
        assert_eq!((t - d).as_micros(), 7_000_000);
        assert_eq!(t + d - t, SimDuration::from_secs(3));
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5).as_micros(), 50);
        assert_eq!(d.mul_f64(1.254).as_micros(), 125); // 125.4 rounds down
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ratio_of_spans() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(120);
        assert!((a.ratio(b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(
            SimTime::from_secs(5).min(SimTime::from_secs(3)),
            SimTime::from_secs(3)
        );
        assert_eq!(
            SimDuration::from_secs(5).max(SimDuration::from_secs(3)),
            SimDuration::from_secs(5)
        );
    }
}
