//! `ks-sim-core` — the discrete-event simulation engine underpinning the
//! KubeShare (HPDC '20) reproduction.
//!
//! Everything in this workspace that "runs" — the Kubernetes control plane,
//! GPU devices, token daemons, workload generators — is driven by the
//! [`engine::Engine`] in this crate: a virtual clock ([`time::SimTime`]), a
//! deterministic pending-event set ([`queue::EventQueue`]), and seeded
//! randomness ([`rng::SimRng`]). Measurement instruments
//! ([`timeseries::TimeSeries`], [`timeseries::BusyIntegrator`],
//! [`stats::OnlineStats`], [`histogram::Histogram`]) produce the series the
//! paper's figures plot.
//!
//! # Example
//!
//! ```
//! use ks_sim_core::prelude::*;
//!
//! struct World { fired: u32 }
//! struct Ping;
//! impl SimEvent<World> for Ping {
//!     fn fire(self, _now: SimTime, world: &mut World, queue: &mut EventQueue<Self>) {
//!         world.fired += 1;
//!         if world.fired < 3 {
//!             queue.schedule_in(SimDuration::from_millis(10), Ping);
//!         }
//!     }
//! }
//!
//! let mut eng = Engine::new(World { fired: 0 });
//! eng.queue.schedule_at(SimTime::ZERO, Ping);
//! eng.run_to_completion(100);
//! assert_eq!(eng.world.fired, 3);
//! assert_eq!(eng.now(), SimTime::from_millis(20));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod histogram;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeseries;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::engine::{Engine, RunOutcome, SimEvent};
    pub use crate::queue::{EventId, EventQueue};
    pub use crate::rng::SimRng;
    pub use crate::stats::OnlineStats;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::timeseries::{BusyIntegrator, TimeSeries};
}
