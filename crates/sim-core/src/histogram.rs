//! Fixed-bucket histograms (linear or log-spaced) with percentile queries.
//!
//! Counts saturate instead of wrapping: a metric that records billions of
//! observations in a long soak degrades gracefully (the bucket pins at
//! `u64::MAX`) rather than corrupting quantiles through overflow.

use serde::Serialize;

/// How bucket boundaries are spaced over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BucketScale {
    /// Equal-width buckets.
    Linear,
    /// Log-spaced buckets: each bucket spans a constant ratio. Requires
    /// `lo > 0`. Suits latency-style metrics spanning orders of magnitude.
    Log,
}

/// A histogram over `[lo, hi)` with `bins` buckets plus underflow/overflow
/// counters. Buckets are equal-width ([`BucketScale::Linear`]) or
/// constant-ratio ([`BucketScale::Log`]).
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    scale: BucketScale,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    /// Sum of every recorded observation (including out-of-range), for
    /// mean/`_sum` style exports.
    sum: f64,
}

impl Histogram {
    /// Creates a linear histogram over `[lo, hi)` with `bins` buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        Self::with_scale(lo, hi, bins, BucketScale::Linear)
    }

    /// Creates a log-spaced histogram over `[lo, hi)` with `bins` buckets
    /// of constant ratio `(hi/lo)^(1/bins)`.
    ///
    /// # Panics
    /// Panics if `lo <= 0`.
    pub fn log_spaced(lo: f64, hi: f64, bins: usize) -> Self {
        Self::with_scale(lo, hi, bins, BucketScale::Log)
    }

    /// Creates a histogram with an explicit bucket scale.
    pub fn with_scale(lo: f64, hi: f64, bins: usize, scale: BucketScale) -> Self {
        assert!(lo < hi, "empty histogram range");
        assert!(bins > 0, "need at least one bin");
        if scale == BucketScale::Log {
            assert!(lo > 0.0, "log-spaced buckets need lo > 0");
        }
        Histogram {
            lo,
            hi,
            scale,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Bucket scale in force.
    pub fn scale(&self) -> BucketScale {
        self.scale
    }

    /// The configured range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Records one observation. Counts saturate at `u64::MAX`.
    pub fn record(&mut self, x: f64) {
        self.total = self.total.saturating_add(1);
        self.sum += x;
        if x < self.lo {
            self.underflow = self.underflow.saturating_add(1);
        } else if x >= self.hi {
            self.overflow = self.overflow.saturating_add(1);
        } else {
            let idx = self.bucket_index(x);
            self.counts[idx] = self.counts[idx].saturating_add(1);
        }
    }

    fn bucket_index(&self, x: f64) -> usize {
        let bins = self.counts.len() as f64;
        let frac = match self.scale {
            BucketScale::Linear => (x - self.lo) / (self.hi - self.lo),
            BucketScale::Log => (x / self.lo).ln() / (self.hi / self.lo).ln(),
        };
        ((frac * bins) as usize).min(self.counts.len() - 1)
    }

    /// Upper bound of bucket `i` (the `le` boundary Prometheus exports).
    pub fn bucket_upper(&self, i: usize) -> f64 {
        let frac = (i + 1) as f64 / self.counts.len() as f64;
        match self.scale {
            BucketScale::Linear => self.lo + (self.hi - self.lo) * frac,
            BucketScale::Log => self.lo * (self.hi / self.lo).powf(frac),
        }
    }

    fn bucket_lower(&self, i: usize) -> f64 {
        if i == 0 {
            self.lo
        } else {
            self.bucket_upper(i - 1)
        }
    }

    /// Total number of observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) by interpolation within the
    /// containing bucket (linear in the bucket's native scale). Returns
    /// `None` if no observations are in range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if seen + c >= target {
                let within = (target - seen) as f64 / c.max(1) as f64;
                let (lo, hi) = (self.bucket_lower(i), self.bucket_upper(i));
                let v = match self.scale {
                    BucketScale::Linear => lo + (hi - lo) * within,
                    BucketScale::Log => lo * (hi / lo).powf(within),
                };
                return Some(v);
            }
            seen += c;
        }
        Some(self.hi)
    }

    /// Interpolated quantiles at each requested point (convenience for
    /// reporting p50/p90/p99 in one call). `None` entries mirror
    /// [`Histogram::quantile`].
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Option<f64>> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
        assert!((h.sum() - 15.49).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn median_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0, "median {med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 98.0, "p99 {p99}");
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
        assert_eq!(h.quantiles(&[0.5, 0.9]), vec![None, None]);
    }

    #[test]
    fn log_buckets_resolve_small_and_large_values() {
        // 1µs .. 10s over 70 log buckets: both a 5µs and a 2s observation
        // land in buckets whose bounds tightly bracket them.
        let mut h = Histogram::log_spaced(1e-6, 10.0, 70);
        h.record(5e-6);
        h.record(2.0);
        for (i, &c) in h.counts().iter().enumerate() {
            if c > 0 {
                let (lo, hi) = (
                    if i == 0 { 1e-6 } else { h.bucket_upper(i - 1) },
                    h.bucket_upper(i),
                );
                assert!(hi / lo < 1.3, "bucket ratio too coarse: {lo}..{hi}");
            }
        }
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn log_bucket_bounds_are_monotone_and_end_at_hi() {
        let h = Histogram::log_spaced(0.001, 1000.0, 30);
        let mut prev = 0.001;
        for i in 0..30 {
            let b = h.bucket_upper(i);
            assert!(b > prev, "bounds must increase");
            prev = b;
        }
        assert!((h.bucket_upper(29) - 1000.0).abs() / 1000.0 < 1e-9);
    }

    #[test]
    fn log_quantile_interpolates_in_log_space() {
        let mut h = Histogram::log_spaced(1.0, 1024.0, 10);
        for _ in 0..100 {
            h.record(32.0); // exactly mid-range in log space
        }
        let med = h.quantile(0.5).unwrap();
        assert!((16.0..64.0).contains(&med), "median {med}");
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.record(0.5);
        // Forge a near-overflow state through repeated recording is
        // infeasible; saturating_add is exercised at the boundary instead.
        assert_eq!(u64::MAX.saturating_add(1), u64::MAX);
        for _ in 0..10 {
            h.record(0.5);
        }
        assert_eq!(h.total(), 11);
    }
}
