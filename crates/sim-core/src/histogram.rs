//! Fixed-width histogram with percentile queries.

use serde::Serialize;

/// A histogram over `[lo, hi)` with `bins` equal-width buckets plus
/// underflow/overflow counters.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "empty histogram range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total number of observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) by linear interpolation within
    /// the containing bin. Returns `None` if no observations are in range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if seen + c >= target {
                let within = (target - seen) as f64 / c.max(1) as f64;
                return Some(self.lo + width * (i as f64 + within));
            }
            seen += c;
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn median_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0, "median {med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 98.0, "p99 {p99}");
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }
}
