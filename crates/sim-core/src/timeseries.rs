//! Time-indexed measurement helpers.
//!
//! Two kinds of instruments are used across the experiments:
//!
//! * [`TimeSeries`] — point samples `(t, v)` (e.g. NVML utilization polls,
//!   paper Fig. 6 and Fig. 9), with bucketed resampling for plotting.
//! * [`BusyIntegrator`] — integrates a piecewise-constant "level" signal
//!   (e.g. device busy/idle, number of active GPUs) so time-weighted
//!   averages and per-window fractions are exact rather than sampled.

use serde::Serialize;

use crate::time::{SimDuration, SimTime};

/// A sequence of `(time, value)` samples in non-decreasing time order.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

/// One resampled bucket of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Bucket {
    /// Bucket start time.
    pub start: SimTime,
    /// Mean of the samples that fell in the bucket (NaN-free; empty buckets
    /// are skipped by [`TimeSeries::bucket_means`]).
    pub mean: f64,
    /// Number of samples in the bucket.
    pub count: usize,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Samples must arrive in non-decreasing time order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "samples must be time-ordered");
        }
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of all sample values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Mean of samples with `t` in `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Resamples into fixed-width buckets, skipping empty ones.
    pub fn bucket_means(&self, width: SimDuration) -> Vec<Bucket> {
        assert!(!width.is_zero(), "bucket width must be positive");
        let mut out = Vec::new();
        let mut it = self.points.iter().peekable();
        while let Some(&&(t0, _)) = it.peek() {
            let idx = t0.as_micros() / width.as_micros();
            let start = SimTime::from_micros(idx * width.as_micros());
            let end = start + width;
            let mut sum = 0.0;
            let mut count = 0usize;
            while let Some(&&(t, v)) = it.peek() {
                if t < end {
                    sum += v;
                    count += 1;
                    it.next();
                } else {
                    break;
                }
            }
            out.push(Bucket {
                start,
                mean: sum / count as f64,
                count,
            });
        }
        out
    }

    /// The last sample value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }
}

/// Integrates a piecewise-constant signal over time.
///
/// Call [`BusyIntegrator::set_level`] whenever the level changes; query the
/// exact time-weighted average or integral over any elapsed prefix.
#[derive(Debug, Clone)]
pub struct BusyIntegrator {
    level: f64,
    since: SimTime,
    /// Accumulated ∫ level dt in level·microseconds up to `since`.
    area: f64,
    start: SimTime,
}

impl BusyIntegrator {
    /// Starts integrating at `t0` with the given initial level.
    pub fn new(t0: SimTime, initial_level: f64) -> Self {
        BusyIntegrator {
            level: initial_level,
            since: t0,
            area: 0.0,
            start: t0,
        }
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Changes the level at time `t` (must be ≥ the previous change).
    pub fn set_level(&mut self, t: SimTime, level: f64) {
        assert!(t >= self.since, "level changes must be time-ordered");
        self.area += self.level * t.saturating_since(self.since).as_micros() as f64;
        self.level = level;
        self.since = t;
    }

    /// Adds `delta` to the current level at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let next = self.level + delta;
        self.set_level(t, next);
    }

    /// Integral of the level from start to `t` (level · seconds).
    pub fn integral_until(&self, t: SimTime) -> f64 {
        assert!(t >= self.since, "cannot query the past");
        let pending = self.level * t.saturating_since(self.since).as_micros() as f64;
        (self.area + pending) / 1e6
    }

    /// Time-weighted average level from start to `t`.
    pub fn average_until(&self, t: SimTime) -> f64 {
        let span = t.saturating_since(self.start).as_secs_f64();
        if span == 0.0 {
            return self.level;
        }
        self.integral_until(t) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_mean() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(1), 3.0);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_sample_panics() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(2), 1.0);
        ts.push(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn mean_in_window() {
        let mut ts = TimeSeries::new();
        for s in 0..10 {
            ts.push(SimTime::from_secs(s), s as f64);
        }
        let m = ts
            .mean_in(SimTime::from_secs(2), SimTime::from_secs(5))
            .unwrap();
        assert_eq!(m, 3.0); // samples 2,3,4
        assert!(ts
            .mean_in(SimTime::from_secs(100), SimTime::from_secs(200))
            .is_none());
    }

    #[test]
    fn bucket_means_skip_gaps() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 2.0);
        ts.push(SimTime::from_millis(500), 4.0);
        ts.push(SimTime::from_secs(5), 10.0);
        let buckets = ts.bucket_means(SimDuration::from_secs(1));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].mean, 3.0);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[1].start, SimTime::from_secs(5));
        assert_eq!(buckets[1].mean, 10.0);
    }

    #[test]
    fn integrator_average() {
        let mut b = BusyIntegrator::new(SimTime::ZERO, 0.0);
        b.set_level(SimTime::from_secs(2), 1.0); // idle 2s
        b.set_level(SimTime::from_secs(6), 0.0); // busy 4s
        let avg = b.average_until(SimTime::from_secs(8));
        assert!((avg - 0.5).abs() < 1e-9); // 4 busy / 8 total
        assert!((b.integral_until(SimTime::from_secs(8)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn integrator_add_delta() {
        let mut b = BusyIntegrator::new(SimTime::ZERO, 0.0);
        b.add(SimTime::from_secs(1), 2.0); // level 2 from t=1
        b.add(SimTime::from_secs(3), -1.0); // level 1 from t=3
        assert_eq!(b.level(), 1.0);
        // ∫ = 0*1 + 2*2 + 1*1 = 5 at t=4
        assert!((b.integral_until(SimTime::from_secs(4)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn integrator_average_at_start_is_level() {
        let b = BusyIntegrator::new(SimTime::from_secs(5), 3.0);
        assert_eq!(b.average_until(SimTime::from_secs(5)), 3.0);
    }
}
