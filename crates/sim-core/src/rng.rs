//! Deterministic random-number generation and the distributions the paper's
//! workloads need.
//!
//! Every stochastic experiment takes an explicit seed so that runs are
//! reproducible. The normal distribution (GPU demand per job, paper §5.3) is
//! implemented with the Box–Muller transform; Poisson arrivals come from
//! exponential inter-arrival times; small-λ Poisson counts use Knuth's
//! method. These are implemented here rather than pulling `rand_distr` to
//! keep the dependency set to the approved list.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A seeded RNG with the distributions used across the workspace.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Box–Muller produces pairs; the spare value is cached here.
    gaussian_spare: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            gaussian_spare: None,
        }
    }

    /// Derives an independent child RNG; useful to give each simulated job
    /// its own stream so adding a job does not perturb the others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.next_u64())
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform() < p
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Use 1-U in (0, 1] so ln() never sees zero.
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Exponential inter-arrival gap for a Poisson process with mean gap
    /// `mean`, as a [`SimDuration`].
    pub fn exp_interarrival(&mut self, mean: SimDuration) -> SimDuration {
        assert!(!mean.is_zero(), "mean inter-arrival must be positive");
        let secs = self.exponential(1.0 / mean.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }

    /// Standard normal variate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gaussian_spare.take() {
            return z;
        }
        // Rejection-free polar-less form: u1 in (0,1], u2 in [0,1).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gaussian_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Normal variate clamped into `[lo, hi]` — used for per-job GPU demand,
    /// which must stay a valid fraction of a device.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid clamp range");
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Poisson-distributed count with mean `lambda` (Knuth's method;
    /// suitable for the small λ used in request batching).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            // Normal approximation for large λ to keep the loop bounded.
            return self.normal(lambda, lambda.sqrt()).max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Access to the raw `rand` RNG for callers needing other primitives.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = rng();
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let s1: Vec<u64> = (0..8).map(|_| c1.uniform().to_bits()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.uniform().to_bits()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = r.normal_clamped(0.3, 0.5, 0.05, 1.0);
            assert!((0.05..=1.0).contains(&x));
        }
    }

    #[test]
    fn poisson_mean_converges() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.poisson(4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = rng();
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn exp_interarrival_positive() {
        let mut r = rng();
        let mean = SimDuration::from_secs(10);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| r.exp_interarrival(mean).as_secs_f64()).sum();
        let observed = total / n as f64;
        assert!((observed - 10.0).abs() < 0.2, "observed {observed}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let hits = (0..100_000).filter(|_| r.bernoulli(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn index_stays_in_range() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(r.index(7) < 7);
        }
    }
}
