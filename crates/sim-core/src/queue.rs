//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! Ties at the same instant are broken by insertion order, which makes
//! simulations deterministic: the same schedule calls always replay in the
//! same order. Events can be cancelled by [`EventId`]; cancellation is O(1)
//! (a tombstone), with lazy removal on pop.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events that are in `heap` and not cancelled.
    pending: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated instant (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time — the past is immutable.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired or been cancelled; `false` for already-fired, already-cancelled,
    /// or unknown ids.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its firing time. Returns `None` when the queue is drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled
            }
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The firing time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.pending.contains(&entry.seq) {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule_at(t, 1);
        q.schedule_at(t, 2);
        q.schedule_at(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }
}
