//! The gateway SLO catalogue.
//!
//! Two families of rules, evaluated by the shared [`SloEngine`] against
//! the scraped TSDB:
//!
//! - **Fairness / isolation**: per-tier p99 admission wait. Higher tiers
//!   buy shorter waits, so the thresholds tighten as the tier rises; a
//!   premium tenant queuing behind free traffic fires an alert. These are
//!   the SLOs the load generator asserts on.
//! - **Tripwires**: counters that stay at zero for as long as the
//!   pipeline's own invariants hold — a rate-limiter window-bound breach
//!   (`ks_gw_limit_violations_total`), a quota pre-check/reservation
//!   disagreement (`ks_gw_quota_violations_total`), or a priority
//!   inversion in victim selection (`ks_gw_preempt_inversions_total`).
//!   Any non-zero rate breaches immediately.

use ks_sim_core::time::SimDuration;
use ks_telemetry::slo::{SloCondition, SloEngine, SloRule};

/// Per-tier p99 admission-wait objectives, seconds. Indexed free,
/// standard, premium.
pub const ADMISSION_WAIT_P99_SECS: [f64; 3] = [900.0, 120.0, 30.0];

/// Builds the gateway rule set. Combine with
/// [`SloEngine::kubeshare_catalogue`]'s rules when the backing scheduler
/// should be watched too.
pub fn gateway_catalogue() -> SloEngine {
    use SloCondition::*;
    SloEngine::new(vec![
        SloRule {
            name: "gw_admission_wait_free_p99",
            objective: "p99 free-tier admission wait < 900s over 10m",
            condition: QuantileBelow {
                metric: "ks_gw_admission_wait_seconds",
                labels: &[("tier", "free")],
                q: 0.99,
                window: SimDuration::from_secs(600),
                threshold: ADMISSION_WAIT_P99_SECS[0],
            },
        },
        SloRule {
            name: "gw_admission_wait_standard_p99",
            objective: "p99 standard-tier admission wait < 120s over 10m",
            condition: QuantileBelow {
                metric: "ks_gw_admission_wait_seconds",
                labels: &[("tier", "standard")],
                q: 0.99,
                window: SimDuration::from_secs(600),
                threshold: ADMISSION_WAIT_P99_SECS[1],
            },
        },
        SloRule {
            name: "gw_admission_wait_premium_p99",
            objective: "p99 premium-tier admission wait < 30s over 10m",
            condition: QuantileBelow {
                metric: "ks_gw_admission_wait_seconds",
                labels: &[("tier", "premium")],
                q: 0.99,
                window: SimDuration::from_secs(600),
                threshold: ADMISSION_WAIT_P99_SECS[2],
            },
        },
        SloRule {
            name: "gw_rate_limit_tripwire",
            objective: "rate limiter never grants past burst + rate*t",
            condition: RateAtMost {
                metric: "ks_gw_limit_violations_total",
                labels: &[],
                window: SimDuration::from_secs(600),
                max_per_sec: 0.0,
            },
        },
        SloRule {
            name: "gw_quota_tripwire",
            objective: "quota pre-check and reservation always agree",
            condition: RateAtMost {
                metric: "ks_gw_quota_violations_total",
                labels: &[],
                window: SimDuration::from_secs(600),
                max_per_sec: 0.0,
            },
        },
        SloRule {
            name: "gw_preempt_inversion_tripwire",
            objective: "preemption only ever evicts strictly lower classes",
            condition: RateAtMost {
                metric: "ks_gw_preempt_inversions_total",
                labels: &[],
                window: SimDuration::from_secs(600),
                max_per_sec: 0.0,
            },
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim_core::time::SimTime;
    use ks_telemetry::tsdb::Scraper;
    use ks_telemetry::Telemetry;

    #[test]
    fn tripwire_fires_on_any_violation() {
        let telemetry = Telemetry::enabled();
        let mut scraper = Scraper::new(SimDuration::from_secs(15), 256);
        let mut engine = gateway_catalogue();

        // Quiet pipeline: nothing breaches.
        scraper.force(SimTime::from_secs(15), &telemetry);
        let statuses = engine.evaluate(SimTime::from_secs(15), scraper.tsdb(), &telemetry);
        assert!(statuses.iter().all(|s| !s.breaching));

        // One inversion anywhere in the window breaches the tripwire.
        telemetry
            .counter("ks_gw_preempt_inversions_total", &[])
            .inc();
        scraper.force(SimTime::from_secs(30), &telemetry);
        let statuses = engine.evaluate(SimTime::from_secs(30), scraper.tsdb(), &telemetry);
        let trip = statuses
            .iter()
            .find(|s| s.rule == "gw_preempt_inversion_tripwire")
            .unwrap();
        assert!(trip.breaching);
    }

    #[test]
    fn tier_objectives_tighten_upward() {
        let mut last = f64::INFINITY;
        for (t, secs) in crate::Tier::ALL.iter().zip(ADMISSION_WAIT_P99_SECS) {
            assert!(
                secs < last,
                "{t:?} objective must be tighter than the tier below"
            );
            last = secs;
        }
    }
}
