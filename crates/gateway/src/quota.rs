//! Quota-based admission control.
//!
//! A tenant's quota bounds its *live* footprint: sharePods that have been
//! admitted and have not yet reached a terminal phase, and the sum of
//! their fractional GPU requests. Unlike the rate limiter (a flow bound),
//! the quota is a stock bound — it is reserved at admission and released
//! on the terminal transition, so a tenant that fills its quota stays
//! blocked until earlier work finishes, however slowly it submits.
//!
//! Conservation invariant (property-tested): every submitted request is
//! counted exactly once as admitted, rejected, or queued, and a tenant's
//! reserved units never exceed its quota.

/// Per-tenant admission bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Maximum concurrently live sharePods.
    pub max_inflight: u32,
    /// Maximum sum of live fractional GPU requests.
    pub max_gpu_units: f64,
}

/// A tenant's reserved usage against its [`Quota`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QuotaAccount {
    /// Live sharePods.
    pub inflight: u32,
    /// Sum of live fractional GPU requests.
    pub gpu_units: f64,
}

impl QuotaAccount {
    /// Whether a request for `gpu_units` would fit under `quota`.
    pub fn fits(&self, quota: &Quota, gpu_units: f64) -> bool {
        self.inflight < quota.max_inflight
            && self.gpu_units + gpu_units <= quota.max_gpu_units + 1e-9
    }

    /// Reserves a request's footprint if it fits. Returns whether the
    /// reservation was made; a refused reservation changes nothing.
    pub fn try_reserve(&mut self, quota: &Quota, gpu_units: f64) -> bool {
        if !self.fits(quota, gpu_units) {
            return false;
        }
        self.inflight += 1;
        self.gpu_units += gpu_units;
        true
    }

    /// Releases a previously reserved footprint.
    ///
    /// # Panics
    /// Panics if more is released than was reserved — that is a gateway
    /// accounting bug, not a tenant-visible condition.
    pub fn release(&mut self, gpu_units: f64) {
        assert!(self.inflight > 0, "quota release with nothing inflight");
        self.inflight -= 1;
        self.gpu_units = (self.gpu_units - gpu_units).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: Quota = Quota {
        max_inflight: 2,
        max_gpu_units: 1.0,
    };

    #[test]
    fn reserve_until_full_then_release() {
        let mut a = QuotaAccount::default();
        assert!(a.try_reserve(&Q, 0.5));
        assert!(a.try_reserve(&Q, 0.5));
        assert!(!a.try_reserve(&Q, 0.1), "inflight cap");
        a.release(0.5);
        assert!(!a.try_reserve(&Q, 0.6), "gpu-unit cap");
        assert!(a.try_reserve(&Q, 0.5));
    }

    #[test]
    fn refused_reservation_changes_nothing() {
        let mut a = QuotaAccount::default();
        assert!(!a.try_reserve(&Q, 2.0));
        assert_eq!(a.inflight, 0);
        assert_eq!(a.gpu_units, 0.0);
    }

    #[test]
    #[should_panic(expected = "nothing inflight")]
    fn over_release_panics() {
        let mut a = QuotaAccount::default();
        a.release(0.1);
    }
}
