//! The gateway itself: the admission pipeline in front of
//! [`KubeShareSystem`].
//!
//! Every request passes, in order: **authentication** (token → tenant +
//! tier), **rate limiting** (per-tenant token bucket), **quota admission**
//! (live-footprint reservation; over-quota requests park in a bounded
//! priority queue), and only then reaches Algorithm 1 — the scheduler
//! never sees traffic the front door already refused. Admitted sharePods
//! are stamped with their tenant and tier priority and live in a
//! per-tenant namespace.
//!
//! [`Gateway::pump`] is the batch tick: it re-admits parked requests
//! whose quota freed up, preempts strictly-lower-priority sharePods when
//! a higher class is starved of capacity, and drains the pending queue
//! through the system's priority-ordered batch scheduler.
//!
//! Self-checking: the pipeline keeps tripwire counters
//! (`ks_gw_quota_violations_total`, `ks_gw_preempt_inversions_total`)
//! that stay zero for as long as its gates hold; the gateway SLO
//! catalogue alerts on any increment, and the load generator fails on
//! them outright.

use std::collections::{BTreeMap, HashMap};

use ks_cluster::api::{Uid, NVIDIA_GPU};
use ks_sim_core::time::SimTime;
use ks_telemetry::provenance::{DecisionKind, Outcome, ReasonCode, SchedProv};
use ks_telemetry::{FlightRecorder, LogLevel, Logger, Telemetry};
use kubeshare::gpuid::GpuId;
use kubeshare::sharepod::{SharePodPhase, SharePodSpec};
use kubeshare::system::{KsEmit, KsEvent, KsNotice, KubeShareSystem};

use crate::auth::Authenticator;
use crate::metering::Meter;
use crate::tenant::{TenantState, Tier};

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Over-quota requests one tenant may park at once.
    pub max_queue_per_tenant: u32,
    /// Total admission-queue bound across all tenants.
    pub max_queue_total: usize,
    /// Eviction budget of one [`Gateway::pump`] call.
    pub max_victims_per_pump: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_queue_per_tenant: 4,
            max_queue_total: 100_000,
            max_victims_per_pump: 64,
        }
    }
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The token did not authenticate.
    Unauthenticated,
    /// The tenant's token bucket is empty.
    RateLimited,
    /// Over quota and the admission queue is full (tenant or global cap).
    QueueFull,
}

impl RejectReason {
    /// Metric label value (`reason` dimension).
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Unauthenticated => "unauthenticated",
            RejectReason::RateLimited => "rate_limited",
            RejectReason::QueueFull => "queue_full",
        }
    }
}

/// Outcome of one [`Gateway::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted straight through to Algorithm 1.
    Admitted {
        /// The created sharePod.
        sp: Uid,
    },
    /// Over quota; parked until earlier work releases footprint.
    Queued {
        /// Handle into the admission queue.
        ticket: u64,
    },
    /// Refused at the front door.
    Rejected {
        /// Which gate refused it.
        reason: RejectReason,
    },
}

/// Pipeline counters. Conservation invariant: every submitted request is
/// admitted, rejected, or still queued — nothing is lost or double
/// counted (see [`Gateway::conservation_holds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests entering the pipeline.
    pub submitted: u64,
    /// Admitted at submit time.
    pub admitted_direct: u64,
    /// Admitted later from the queue by a pump.
    pub admitted_from_queue: u64,
    /// Refused: bad token.
    pub rejected_auth: u64,
    /// Refused: token bucket empty.
    pub rejected_rate: u64,
    /// Refused: over quota with a full queue.
    pub rejected_queue_full: u64,
    /// Preemptions executed on behalf of higher-priority work.
    pub preemptions: u64,
}

impl GatewayStats {
    /// Total admitted through either path.
    pub fn admitted(&self) -> u64 {
        self.admitted_direct + self.admitted_from_queue
    }

    /// Total refused at any gate.
    pub fn rejected(&self) -> u64 {
        self.rejected_auth + self.rejected_rate + self.rejected_queue_full
    }
}

/// One parked over-quota request.
#[derive(Debug)]
struct QueuedReq {
    tenant: String,
    tier: Tier,
    name: String,
    spec: SharePodSpec,
    enqueued: SimTime,
}

/// What the gateway remembers about an admitted sharePod.
#[derive(Debug, Clone)]
struct SpInfo {
    tenant: String,
    tier: Tier,
    /// Footprint reserved against the tenant quota (`share.request`).
    gpu_units: f64,
}

/// Result of one [`Gateway::pump`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Queued requests admitted this tick.
    pub readmitted: usize,
    /// SharePods preempted this tick.
    pub preempted: usize,
    /// Pending sharePods decided by the batch drain.
    pub decided: usize,
}

/// The multi-tenant front door. See module docs.
#[derive(Debug)]
pub struct Gateway<A: Authenticator> {
    system: KubeShareSystem,
    auth: A,
    cfg: GatewayConfig,
    /// The configured (unscaled) queue caps; `cfg` holds the scaled
    /// values while an admission scale is in force.
    base_cfg: GatewayConfig,
    /// Admission scale in `(0, 1]`: 1.0 = configured limits, smaller =
    /// remediation tightening (token rates and queue caps shrink
    /// proportionally). See [`Gateway::set_admission_scale`].
    admission_scale: f64,
    tenants: HashMap<String, TenantState>,
    /// Admission queue ordered by (priority descending, FIFO): the key is
    /// `(Tier::MAX_PRIORITY - priority, ticket)`.
    queue: BTreeMap<(u8, u64), QueuedReq>,
    next_ticket: u64,
    sp_info: HashMap<Uid, SpInfo>,
    meter: Meter,
    stats: GatewayStats,
    telemetry: Telemetry,
    recorder: FlightRecorder,
    logger: Logger,
}

impl<A: Authenticator> Gateway<A> {
    /// Wraps a control plane behind the admission pipeline.
    pub fn new(system: KubeShareSystem, auth: A, cfg: GatewayConfig) -> Self {
        Gateway {
            system,
            auth,
            base_cfg: cfg.clone(),
            cfg,
            admission_scale: 1.0,
            tenants: HashMap::new(),
            queue: BTreeMap::new(),
            next_ticket: 0,
            sp_info: HashMap::new(),
            meter: Meter::new(),
            stats: GatewayStats::default(),
            telemetry: Telemetry::disabled(),
            recorder: FlightRecorder::disabled(),
            logger: Logger::disabled(),
        }
    }

    /// Attaches telemetry to the gateway, its meter, and the wrapped
    /// system stack.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.system.set_telemetry(telemetry.clone());
        self.meter.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Installs a decision-provenance flight recorder on the gateway
    /// (admission and preemption-target records) and the whole wrapped
    /// stack (scheduling, node-rank, victim, reconfigure records).
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.system.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The installed flight recorder (disabled handle by default).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Installs a structured-log sink on the gateway and the wrapped
    /// system stack.
    pub fn set_logger(&mut self, logger: Logger) {
        self.system.set_logger(logger.clone());
        self.logger = logger;
    }

    /// The installed structured-log sink (disabled handle by default).
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// Read access to the wrapped control plane.
    pub fn system(&self) -> &KubeShareSystem {
        &self.system
    }

    /// The metering engine.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Mutable metering access (finalizing at end of period).
    pub fn meter_mut(&mut self) -> &mut Meter {
        &mut self.meter
    }

    /// Pipeline counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Current admission-queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A tenant's gateway state, if it ever authenticated.
    pub fn tenant(&self, id: &str) -> Option<&TenantState> {
        self.tenants.get(id)
    }

    /// Number of tenants with materialized state.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The admission scale in force (1.0 = configured limits).
    pub fn admission_scale(&self) -> f64 {
        self.admission_scale
    }

    /// A tier's rate limit under `scale`: both rate and burst shrink
    /// proportionally, with the burst floored at one token so a tenant
    /// can always eventually submit.
    fn scaled_limit(tier: Tier, scale: f64) -> crate::limiter::RateLimit {
        let lim = tier.rate_limit();
        crate::limiter::RateLimit {
            per_sec: lim.per_sec * scale,
            burst: (lim.burst * scale).max(1.0),
        }
    }

    /// Sets the admission scale (remediation tightening): every tenant's
    /// token bucket switches to `scale ×` its tier rate/burst, and the
    /// queue caps shrink to `scale ×` their configured values (floored
    /// at 1). `scale = 1.0` restores the configured limits. Buckets keep
    /// their refill history through the switch — no tokens are minted —
    /// and each tenant's analytic rate tripwire re-baselines at `now`
    /// (the old bound no longer describes the new limit). Returns
    /// whether the scale changed.
    pub fn set_admission_scale(&mut self, now: SimTime, scale: f64) -> bool {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "admission scale must be in (0, 1], got {scale}"
        );
        if (scale - self.admission_scale).abs() < 1e-12 {
            return false;
        }
        self.admission_scale = scale;
        self.cfg.max_queue_per_tenant =
            (((self.base_cfg.max_queue_per_tenant as f64) * scale) as u32).max(1);
        self.cfg.max_queue_total =
            (((self.base_cfg.max_queue_total as f64) * scale) as usize).max(1);
        for st in self.tenants.values_mut() {
            st.bucket.set_limit(Self::scaled_limit(st.tier, scale), now);
            st.first_seen = now;
            st.taken = 0;
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("ks_gw_admission_rescale_total", &[])
                .inc();
            self.telemetry
                .gauge("ks_gw_admission_scale", &[])
                .set(scale);
        }
        true
    }

    /// The conservation invariant: submitted = admitted + rejected +
    /// still-queued.
    pub fn conservation_holds(&self) -> bool {
        self.stats.submitted
            == self.stats.admitted() + self.stats.rejected() + self.queue.len() as u64
    }

    fn count_reject(&mut self, tier_label: &str, reason: RejectReason) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter(
                    "ks_gw_rejects_total",
                    &[("reason", reason.label()), ("tier", tier_label)],
                )
                .inc();
        }
    }

    /// Captures one front-door gate outcome as a
    /// [`DecisionKind::Admission`] record plus a log line. `sp` is 0 for
    /// requests refused before a sharePod existed — those records carry
    /// the tenant in `fields` and are found by scanning, not by
    /// `explain(sp)`.
    #[allow(clippy::too_many_arguments)]
    fn record_admission(
        &self,
        now: SimTime,
        sp: u64,
        trace: u64,
        tenant: &str,
        tier: &str,
        outcome: Outcome,
        extra: Vec<(String, String)>,
    ) {
        if self.logger.is_enabled() {
            let level = match &outcome {
                Outcome::Rejected { .. } => LogLevel::Warn,
                _ => LogLevel::Info,
            };
            let class = outcome.class();
            let reason = outcome.reason();
            self.logger.log(
                now,
                level,
                "gateway",
                trace,
                || match reason {
                    Some(r) => format!(
                        "tenant {tenant} ({tier}): admission {class} ({})",
                        r.label()
                    ),
                    None => format!("tenant {tenant} ({tier}): admission {class}"),
                },
                || {
                    let mut f = vec![
                        ("tenant".to_string(), tenant.to_string()),
                        ("tier".to_string(), tier.to_string()),
                    ];
                    f.extend(extra.iter().cloned());
                    f
                },
            );
        }
        if self.recorder.is_enabled() {
            let mut prov = SchedProv::on();
            if let Some(r) = outcome.reason() {
                prov.reject(r);
            }
            prov.note(|| format!("front-door gates for tenant {tenant} (tier {tier})"));
            let mut rec = prov.into_record(now, sp, trace, DecisionKind::Admission, outcome);
            rec.fields.push(("tenant".to_string(), tenant.to_string()));
            rec.fields.push(("tier".to_string(), tier.to_string()));
            rec.fields.extend(extra);
            self.recorder.record(rec);
        }
    }

    /// Submits a request through the full pipeline: auth → rate limit →
    /// quota → Algorithm 1 (or the admission queue).
    pub fn submit(
        &mut self,
        now: SimTime,
        token: &str,
        name: impl Into<String>,
        spec: SharePodSpec,
        out: &mut KsEmit,
    ) -> SubmitOutcome {
        self.stats.submitted += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.counter("ks_gw_requests_total", &[]).inc();
        }

        // Gate 1: authentication.
        let Some((tenant, tier)) = self.auth.authenticate(token) else {
            self.stats.rejected_auth += 1;
            self.count_reject("unknown", RejectReason::Unauthenticated);
            self.record_admission(
                now,
                0,
                0,
                "unknown",
                "unknown",
                Outcome::Rejected {
                    reason: ReasonCode::Unauthenticated,
                },
                Vec::new(),
            );
            return SubmitOutcome::Rejected {
                reason: RejectReason::Unauthenticated,
            };
        };

        // Gate 2: rate limit (lazily materializing the tenant, under the
        // admission scale in force).
        let scale = self.admission_scale;
        let st = self.tenants.entry(tenant.clone()).or_insert_with(|| {
            let mut st = TenantState::new(tier, now);
            if scale != 1.0 {
                st.bucket.set_limit(Self::scaled_limit(tier, scale), now);
            }
            st
        });
        if !st.bucket.try_take(now, 1.0) {
            self.stats.rejected_rate += 1;
            self.count_reject(tier.label(), RejectReason::RateLimited);
            self.record_admission(
                now,
                0,
                0,
                &tenant,
                tier.label(),
                Outcome::Rejected {
                    reason: ReasonCode::RateLimited,
                },
                Vec::new(),
            );
            return SubmitOutcome::Rejected {
                reason: RejectReason::RateLimited,
            };
        }
        // Tripwire: the bucket can never grant more than burst + rate·t
        // in any window starting at the tenant's first contact. Checked
        // analytically, independent of the bucket's level arithmetic.
        st.taken += 1;
        let lim = st.bucket.limit();
        let bound =
            lim.burst + lim.per_sec * now.saturating_since(st.first_seen).as_secs_f64() + 1e-6;
        let over_bound = (st.taken as f64) > bound;
        if over_bound {
            self.telemetry
                .counter("ks_gw_limit_violations_total", &[])
                .inc();
        }

        // Gate 3: quota. Over-quota requests park in the priority queue;
        // a full queue refuses.
        let gpu_units = spec.share.request;
        if !st.used.fits(&tier.quota(), gpu_units) {
            if st.queued < self.cfg.max_queue_per_tenant
                && self.queue.len() < self.cfg.max_queue_total
            {
                st.queued += 1;
                let ticket = self.next_ticket;
                self.next_ticket += 1;
                self.record_admission(
                    now,
                    0,
                    0,
                    &tenant,
                    tier.label(),
                    Outcome::Held {
                        reason: ReasonCode::QuotaParked,
                    },
                    vec![("ticket".to_string(), ticket.to_string())],
                );
                self.queue.insert(
                    (u8::MAX - tier.priority(), ticket),
                    QueuedReq {
                        tenant,
                        tier,
                        name: name.into(),
                        spec,
                        enqueued: now,
                    },
                );
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter("ks_gw_queued_total", &[("tier", tier.label())])
                        .inc();
                }
                return SubmitOutcome::Queued { ticket };
            }
            self.stats.rejected_queue_full += 1;
            self.count_reject(tier.label(), RejectReason::QueueFull);
            self.record_admission(
                now,
                0,
                0,
                &tenant,
                tier.label(),
                Outcome::Rejected {
                    reason: ReasonCode::QueueFull,
                },
                Vec::new(),
            );
            return SubmitOutcome::Rejected {
                reason: RejectReason::QueueFull,
            };
        }

        match self.admit(now, tenant, tier, name.into(), spec, out, 0.0) {
            Some(sp) => {
                self.stats.admitted_direct += 1;
                SubmitOutcome::Admitted { sp }
            }
            None => {
                // The quota check and the reservation disagreed — the
                // violation tripwire has fired; surface as a refusal
                // rather than admitting out of quota.
                self.stats.rejected_queue_full += 1;
                self.count_reject(tier.label(), RejectReason::QueueFull);
                SubmitOutcome::Rejected {
                    reason: RejectReason::QueueFull,
                }
            }
        }
    }

    /// Reserves quota and hands the request to the control plane. The
    /// reservation is the authoritative admission check: a refusal here
    /// after a passing pre-check is a pipeline bug counted on the
    /// `ks_gw_quota_violations_total` tripwire.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        now: SimTime,
        tenant: String,
        tier: Tier,
        name: String,
        mut spec: SharePodSpec,
        out: &mut KsEmit,
        waited_secs: f64,
    ) -> Option<Uid> {
        let gpu_units = spec.share.request;
        let st = self.tenants.get_mut(&tenant).expect("tenant materialized");
        if !st.used.try_reserve(&tier.quota(), gpu_units) {
            self.telemetry
                .counter("ks_gw_quota_violations_total", &[])
                .inc();
            return None;
        }
        spec.tenant = Some(tenant.clone());
        spec.priority = tier.priority();
        if self.telemetry.is_enabled() {
            // The causal root for the request is minted at the gateway
            // edge, carrying the tenant identity the lower layers never
            // see.
            let ctx = self.telemetry.trace_root(
                now,
                "gateway",
                "request",
                &[
                    ("tenant", tenant.clone()),
                    ("tier", tier.label().to_string()),
                ],
            );
            self.telemetry
                .span_end(now, ctx.span, &[("outcome", "admitted".to_string())]);
            self.telemetry
                .counter("ks_gw_admitted_total", &[("tier", tier.label())])
                .inc();
            self.telemetry
                .histogram_seconds("ks_gw_admission_wait_seconds", &[("tier", tier.label())])
                .observe(waited_secs);
        }
        // One namespace per tenant isolates its objects in the store.
        let sp = self
            .system
            .submit_sharepod_in(now, tenant.clone(), name, spec, out);
        let trace = self.system.sharepod_trace(sp).map(|c| c.trace).unwrap_or(0);
        self.record_admission(
            now,
            sp.0,
            trace,
            &tenant,
            tier.label(),
            Outcome::Action {
                name: "admitted".to_string(),
                target: sp.to_string().into(),
            },
            vec![("waited_secs".to_string(), format!("{waited_secs:.3}"))],
        );
        self.sp_info.insert(
            sp,
            SpInfo {
                tenant,
                tier,
                gpu_units,
            },
        );
        Some(sp)
    }

    /// Routes a simulation event through the wrapped system, observing
    /// the resulting notices for metering and quota release. Notices are
    /// appended to `notices` after processing.
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: KsEvent,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) {
        let mut local = Vec::new();
        self.system.handle(now, ev, out, &mut local);
        self.observe(now, &local);
        notices.append(&mut local);
    }

    /// Deletes a sharePod on a tenant's behalf, releasing its quota once
    /// the system confirms the terminal transition.
    pub fn delete(&mut self, now: SimTime, sp: Uid, out: &mut KsEmit, notices: &mut Vec<KsNotice>) {
        let mut local = Vec::new();
        self.system.delete_sharepod(now, sp, out, &mut local);
        self.observe(now, &local);
        // Pending/AwaitingVgpu deletions terminate synchronously without
        // a Stopped notice; release here. Running deletions release when
        // the PodDeleted notice arrives through `handle`.
        if self
            .system
            .sharepod(sp)
            .map(|s| {
                matches!(
                    s.status.phase,
                    SharePodPhase::Terminated | SharePodPhase::Rejected
                )
            })
            .unwrap_or(true)
        {
            self.meter.close(now, sp);
            self.release_quota(sp);
        }
        notices.append(&mut local);
    }

    /// Metering + quota bookkeeping driven by system notices.
    fn observe(&mut self, now: SimTime, notices: &[KsNotice]) {
        for n in notices {
            match n {
                KsNotice::SharePodRunning { sp, share, .. } => {
                    if let Some(info) = self.sp_info.get(sp) {
                        let (tenant, tier) = (info.tenant.clone(), info.tier);
                        self.meter.open(now, *sp, &tenant, tier, share.request);
                    }
                }
                KsNotice::SharePodStopped { sp, .. } => {
                    self.meter.close(now, *sp);
                    let terminal = self
                        .system
                        .sharepod(*sp)
                        .map(|s| {
                            matches!(
                                s.status.phase,
                                SharePodPhase::Terminated | SharePodPhase::Rejected
                            )
                        })
                        .unwrap_or(true);
                    if terminal {
                        self.release_quota(*sp);
                    }
                }
                KsNotice::SharePodRejected { sp, .. } => {
                    self.meter.close(now, *sp);
                    self.release_quota(*sp);
                }
                KsNotice::SharePodPreempted { sp, .. } | KsNotice::SharePodRequeued { sp, .. } => {
                    // Not terminal: quota stays reserved, usage stops
                    // accruing until the sharePod runs again.
                    self.meter.close(now, *sp);
                }
                _ => {}
            }
        }
    }

    /// Releases a sharePod's quota reservation (idempotent) and
    /// garbage-collects the terminal object from the API store so
    /// long-running worlds don't drag every finished sharePod through
    /// each batch drain.
    fn release_quota(&mut self, sp: Uid) {
        self.system.gc_sharepod(sp);
        let Some(info) = self.sp_info.remove(&sp) else {
            return;
        };
        if let Some(st) = self.tenants.get_mut(&info.tenant) {
            st.used.release(info.gpu_units);
        }
    }

    /// The batch tick: re-admit parked requests whose quota freed up,
    /// preempt lower classes blocking starved higher-priority work, then
    /// drain the pending queue through the priority-ordered batch
    /// scheduler.
    pub fn pump(
        &mut self,
        now: SimTime,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) -> PumpReport {
        let mut report = PumpReport::default();
        let mut local = Vec::new();

        // 1. Queue re-admission, highest priority first, FIFO within a
        // class. Each entry re-checks its tenant's quota as earlier
        // re-admissions consume it.
        let keys: Vec<(u8, u64)> = self.queue.keys().copied().collect();
        for key in keys {
            let fits = {
                let q = &self.queue[&key];
                let st = self.tenants.get(&q.tenant).expect("queued tenant exists");
                st.used.fits(&q.tier.quota(), q.spec.share.request)
            };
            if !fits {
                continue;
            }
            let q = self.queue.remove(&key).expect("key just listed");
            let st = self
                .tenants
                .get_mut(&q.tenant)
                .expect("queued tenant exists");
            st.queued = st.queued.saturating_sub(1);
            let waited = now.saturating_since(q.enqueued).as_secs_f64();
            if self
                .admit(now, q.tenant, q.tier, q.name, q.spec, out, waited)
                .is_some()
            {
                self.stats.admitted_from_queue += 1;
                report.readmitted += 1;
            } else {
                self.stats.rejected_queue_full += 1;
            }
        }

        // 2. Preemption for starved higher-priority pending work.
        report.preempted = self.preempt_for_pending(now, out, &mut local);

        // 3. Priority-ordered batch drain.
        report.decided = self.system.drain_pending(now, out, &mut local);

        self.observe(now, &local);
        notices.append(&mut local);
        report
    }

    /// Evicts strictly-lower-priority sharePods when a pending sharePod
    /// cannot fit anywhere: no vGPU has room and no free physical GPU is
    /// left for a new one. Victims are chosen per device (fewest
    /// evictions first) and preempted lowest class first, newest first.
    fn preempt_for_pending(
        &mut self,
        now: SimTime,
        out: &mut KsEmit,
        notices: &mut Vec<KsNotice>,
    ) -> usize {
        // Pending demand, priority descending, uid ascending.
        let mut pending: Vec<(u8, Uid, f64, f64)> = self
            .system
            .sharepods()
            .iter()
            .filter(|(_, s)| s.status.phase == SharePodPhase::Pending)
            .map(|(u, s)| (s.spec.priority, u, s.spec.share.request, s.spec.share.mem))
            .collect();
        pending.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        // Nothing above the floor class can ever preempt.
        pending.retain(|&(p, ..)| p > 0);
        if pending.is_empty() {
            return 0;
        }

        // Local capacity view, debited as earlier pending entries claim
        // room (their decisions only land at the drain).
        let mut dev_free: BTreeMap<GpuId, (f64, f64)> = self
            .system
            .pool()
            .devices()
            .filter(|d| !d.releasing)
            .map(|d| (d.id.clone(), (d.util_free, d.mem_free)))
            .collect();
        let raw_free = self.system.cluster.free_total().extended_count(NVIDIA_GPU);
        // Creating vGPUs will claim free physical GPUs when their anchors
        // land; only the surplus is truly available.
        let creating = self
            .system
            .pool()
            .devices()
            .filter(|d| d.uuid.is_none())
            .count() as u64;
        let mut free_gpus = raw_free.saturating_sub(creating);

        let mut victims_left = self.cfg.max_victims_per_pump;
        let mut preempted = 0usize;

        'pending: for (prio, starved, req_u, req_m) in pending {
            if victims_left == 0 {
                break;
            }
            // Already fits on some live vGPU?
            if let Some((id, _)) = dev_free
                .iter()
                .find(|(_, &(u, m))| u + 1e-9 >= req_u && m + 1e-9 >= req_m)
            {
                let id = id.clone();
                let slot = dev_free.get_mut(&id).expect("just found");
                slot.0 -= req_u;
                slot.1 -= req_m;
                continue;
            }
            // A new vGPU can still be anchored on a free physical GPU?
            if free_gpus > 0 {
                free_gpus -= 1;
                continue;
            }
            // Starved: find the device where evicting the fewest
            // strictly-lower-priority tenants makes room.
            let mut prov = SchedProv::for_recorder(&self.recorder);
            prov.note(|| {
                format!(
                    "sharePod {starved} (priority {prio}) starved: \
                     no vGPU fits {req_u:.2} util / {req_m:.2} mem and no free physical GPU"
                )
            });
            let mut best: Option<(usize, GpuId, Vec<Uid>)> = None;
            for d in self.system.pool().devices() {
                if d.releasing || d.uuid.is_none() {
                    continue;
                }
                let Some(&(mut u_free, mut m_free)) = dev_free.get(&d.id) else {
                    continue;
                };
                // Candidate victims on this device, lowest class first,
                // newest (largest uid) first within a class.
                let mut cands: Vec<(u8, Uid, f64, f64)> = d
                    .attached
                    .iter()
                    .filter_map(|(&uid, &(u, m))| {
                        let p = self.system.sharepod(uid)?.spec.priority;
                        (p < prio).then_some((p, uid, u, m))
                    })
                    .collect();
                cands.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
                let mut chosen = Vec::new();
                for (_, uid, u, m) in cands {
                    if u_free + 1e-9 >= req_u && m_free + 1e-9 >= req_m {
                        break;
                    }
                    u_free += u;
                    m_free += m;
                    chosen.push(uid);
                }
                if u_free + 1e-9 >= req_u && m_free + 1e-9 >= req_m && !chosen.is_empty() {
                    // Candidate score is evictions needed (fewer wins).
                    prov.candidate_with("evictions_needed", chosen.len() as f64, || {
                        d.id.as_str().to_string()
                    });
                    let better = best
                        .as_ref()
                        .map(|(n, id, _)| chosen.len() < *n || (chosen.len() == *n && d.id < *id))
                        .unwrap_or(true);
                    if better {
                        best = Some((chosen.len(), d.id.clone(), chosen));
                    }
                }
            }
            let Some((_, dev, victims)) = best else {
                // Not even a full sweep of one device helps; leave the
                // sharePod pending for a later tick.
                if self.recorder.is_enabled() {
                    prov.reject(ReasonCode::AwaitingPreemption);
                    prov.note(|| "no device can be freed by evicting lower classes".to_string());
                    let trace = self
                        .system
                        .sharepod_trace(starved)
                        .map(|c| c.trace)
                        .unwrap_or(0);
                    self.recorder.record(prov.into_record(
                        now,
                        starved.0,
                        trace,
                        DecisionKind::PreemptVictim,
                        Outcome::Held {
                            reason: ReasonCode::AwaitingPreemption,
                        },
                    ));
                }
                continue 'pending;
            };
            prov.choose(dev.as_str(), "fewest_evictions", victims.len() as f64);
            let mut evicted: Vec<Uid> = Vec::new();
            for uid in victims {
                if victims_left == 0 {
                    break;
                }
                let vprio = self
                    .system
                    .sharepod(uid)
                    .map(|s| s.spec.priority)
                    .unwrap_or(0);
                if vprio >= prio {
                    // Guarded against above; an inversion here is a bug.
                    self.telemetry
                        .counter("ks_gw_preempt_inversions_total", &[])
                        .inc();
                    continue;
                }
                if self.system.preempt_sharepod(now, uid, out, notices) {
                    victims_left -= 1;
                    preempted += 1;
                    self.stats.preemptions += 1;
                    evicted.push(uid);
                    if self.telemetry.is_enabled() {
                        let vtier = self
                            .sp_info
                            .get(&uid)
                            .map(|i| i.tier.label())
                            .unwrap_or("unknown");
                        self.telemetry
                            .counter("ks_gw_preemptions_total", &[("victim_tier", vtier)])
                            .inc();
                    }
                }
            }
            if self.recorder.is_enabled() {
                let trace = self
                    .system
                    .sharepod_trace(starved)
                    .map(|c| c.trace)
                    .unwrap_or(0);
                let mut rec = prov.into_record(
                    now,
                    starved.0,
                    trace,
                    DecisionKind::PreemptVictim,
                    Outcome::Action {
                        name: "preempt".to_string(),
                        target: dev.as_str().into(),
                    },
                );
                rec.fields.push((
                    "victims".to_string(),
                    evicted
                        .iter()
                        .map(|u| u.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                ));
                self.recorder.record(rec);
            }
            if self.logger.is_enabled() {
                self.logger.log(
                    now,
                    LogLevel::Warn,
                    "gateway",
                    self.system
                        .sharepod_trace(starved)
                        .map(|c| c.trace)
                        .unwrap_or(0),
                    || {
                        format!(
                            "preempted {} tenant(s) on {} for starved sharePod {starved}",
                            evicted.len(),
                            dev.as_str()
                        )
                    },
                    || vec![("device".to_string(), dev.as_str().to_string())],
                );
            }
            // Claim the freed room if the device survived (it may be
            // releasing now if the evictions idled it under an on-demand
            // pool policy — then the preemptor rides the new-device path
            // once the physical GPU frees).
            match self.system.pool().get(&dev) {
                Some(d) if !d.releasing => {
                    dev_free.insert(dev, (d.util_free - req_u, d.mem_free - req_m));
                }
                _ => {
                    dev_free.remove(&dev);
                }
            }
        }
        preempted
    }
}
