//! Per-tenant GPU-second metering and billing.
//!
//! A sharePod is metered from the moment its container runs with the
//! device library installed ([`kubeshare::KsNotice::SharePodRunning`])
//! until it stops, is preempted, requeued, or terminates. Usage accrues
//! as `gpu_request × wall time` — the *guaranteed* fraction, which is
//! what the paper's Algorithm 1 admits against — in integer
//! **micro-GPU-seconds** so the books balance exactly under DES replay.
//!
//! Two views of the same accrual, closed at the same instant:
//!
//! - a per-tenant ledger, rolled up into [`BillingRecord`]s (tenant
//!   cardinality is unbounded, so this never becomes a metric);
//! - a per-*tier* counter `ks_gw_gpu_microseconds_total{tier}` that the
//!   scraper lands in the TSDB.
//!
//! [`Meter::reconcile`] closes the loop: the ledger total per tier must
//! match the TSDB-derived counter within 0.1%, proving no usage leaked
//! between the billing path and the observability path.

use std::collections::HashMap;

use ks_cluster::api::Uid;
use ks_sim_core::time::SimTime;
use ks_telemetry::export::escape_label_value;
use ks_telemetry::tsdb::Tsdb;
use ks_telemetry::Telemetry;

use crate::tenant::Tier;

/// Name of the per-tier usage counter mirrored into the TSDB.
pub const GPU_USAGE_COUNTER: &str = "ks_gw_gpu_microseconds_total";

/// One running sharePod currently accruing usage.
#[derive(Debug, Clone)]
struct OpenInterval {
    tenant: String,
    tier: Tier,
    /// Guaranteed GPU fraction (`share.request`).
    gpu_units: f64,
    since: SimTime,
}

/// Accrued usage of one tenant.
#[derive(Debug, Clone, Copy, Default)]
struct Accrual {
    tier: Tier,
    gpu_usec: u64,
    intervals: u64,
}

/// One tenant's bill for the metering period.
#[derive(Debug, Clone, PartialEq)]
pub struct BillingRecord {
    /// The tenant.
    pub tenant: String,
    /// Its tier at the time usage accrued.
    pub tier: Tier,
    /// Accrued GPU-seconds (guaranteed fraction × wall time).
    pub gpu_seconds: f64,
    /// Number of metered run intervals.
    pub intervals: u64,
}

/// The metering engine.
#[derive(Debug, Default)]
pub struct Meter {
    open: HashMap<Uid, OpenInterval>,
    ledger: HashMap<String, Accrual>,
    telemetry: Telemetry,
}

impl Meter {
    /// An empty meter with telemetry disabled.
    pub fn new() -> Self {
        Meter {
            open: HashMap::new(),
            ledger: HashMap::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches the telemetry handle the per-tier counters record to.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Opens a usage interval for `sp`. A second open for the same
    /// sharePod is ignored (the first keeps accruing).
    pub fn open(&mut self, now: SimTime, sp: Uid, tenant: &str, tier: Tier, gpu_units: f64) {
        self.open.entry(sp).or_insert(OpenInterval {
            tenant: tenant.to_string(),
            tier,
            gpu_units,
            since: now,
        });
    }

    /// Closes the interval for `sp`, accruing usage into the ledger and
    /// the per-tier counter. No-op when no interval is open.
    pub fn close(&mut self, now: SimTime, sp: Uid) {
        let Some(iv) = self.open.remove(&sp) else {
            return;
        };
        let dt_usec = now.saturating_since(iv.since).as_micros();
        let usec = (iv.gpu_units * dt_usec as f64).round() as u64;
        let acc = self.ledger.entry(iv.tenant).or_default();
        acc.tier = iv.tier;
        acc.gpu_usec += usec;
        acc.intervals += 1;
        self.telemetry
            .counter(GPU_USAGE_COUNTER, &[("tier", iv.tier.label())])
            .add(usec);
    }

    /// Closes every open interval at `now` — end-of-period cutoff.
    pub fn finalize(&mut self, now: SimTime) {
        let open: Vec<Uid> = self.open.keys().copied().collect();
        for sp in open {
            self.close(now, sp);
        }
    }

    /// Number of currently accruing intervals.
    pub fn open_intervals(&self) -> usize {
        self.open.len()
    }

    /// Total accrued micro-GPU-seconds for one tier (ledger view).
    pub fn tier_gpu_usec(&self, tier: Tier) -> u64 {
        self.ledger
            .values()
            .filter(|a| a.tier == tier)
            .map(|a| a.gpu_usec)
            .sum()
    }

    /// The billing roll-up, sorted by tenant id.
    pub fn billing_records(&self) -> Vec<BillingRecord> {
        let mut recs: Vec<BillingRecord> = self
            .ledger
            .iter()
            .map(|(tenant, a)| BillingRecord {
                tenant: tenant.clone(),
                tier: a.tier,
                gpu_seconds: a.gpu_usec as f64 / 1e6,
                intervals: a.intervals,
            })
            .collect();
        recs.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        recs
    }

    /// Renders the ledger as Prometheus exposition text, one
    /// `ks_gw_tenant_gpu_seconds` series per tenant. Tenant ids are
    /// hostile input (they came off the wire inside tokens), so values go
    /// through the exporter's label escaping and survive a parse
    /// round-trip whatever they contain.
    pub fn prometheus_billing(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE ks_gw_tenant_gpu_seconds counter\n");
        for rec in self.billing_records() {
            out.push_str(&format!(
                "ks_gw_tenant_gpu_seconds{{tenant=\"{}\",tier=\"{}\"}} {}\n",
                escape_label_value(&rec.tenant),
                rec.tier.label(),
                rec.gpu_seconds
            ));
        }
        out
    }

    /// Verifies the billing ledger against the TSDB-derived usage: for
    /// every tier, the ledger total must match the scraped
    /// [`GPU_USAGE_COUNTER`] within `0.1%`. Returns the per-tier pairs
    /// `(tier, ledger_usec, tsdb_usec)` on success.
    ///
    /// The TSDB only knows what the scraper saw, so call this after a
    /// final scrape that postdates [`Meter::finalize`].
    pub fn reconcile(&self, tsdb: &Tsdb, now: SimTime) -> Result<Vec<(Tier, u64, u64)>, String> {
        let mut report = Vec::new();
        for tier in Tier::ALL {
            let ledger = self.tier_gpu_usec(tier);
            let scraped = tsdb
                .counter_at(GPU_USAGE_COUNTER, &[("tier", tier.label())], now)
                .unwrap_or(0);
            let diff = ledger.abs_diff(scraped) as f64;
            let base = ledger.max(scraped) as f64;
            if base > 0.0 && diff / base > 1e-3 {
                return Err(format!(
                    "tier {}: ledger {ledger} usec vs tsdb {scraped} usec ({:.3}% apart)",
                    tier.label(),
                    100.0 * diff / base
                ));
            }
            report.push((tier, ledger, scraped));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim_core::time::SimDuration;
    use ks_telemetry::export::{parse_prometheus_text, unescape_label_value};
    use ks_telemetry::tsdb::Scraper;

    #[test]
    fn accrual_is_request_times_time() {
        let mut m = Meter::new();
        let t0 = SimTime::ZERO;
        m.open(t0, Uid(1), "acme", Tier::Premium, 0.5);
        m.close(t0 + SimDuration::from_secs(10), Uid(1));
        let recs = m.billing_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].tenant, "acme");
        assert!((recs[0].gpu_seconds - 5.0).abs() < 1e-9);
        assert_eq!(recs[0].intervals, 1);
    }

    #[test]
    fn double_open_and_close_are_idempotent() {
        let mut m = Meter::new();
        m.open(SimTime::ZERO, Uid(1), "a", Tier::Free, 1.0);
        m.open(SimTime::from_secs(5), Uid(1), "a", Tier::Free, 1.0);
        m.close(SimTime::from_secs(10), Uid(1));
        m.close(SimTime::from_secs(20), Uid(1));
        assert!((m.billing_records()[0].gpu_seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn finalize_closes_open_intervals() {
        let mut m = Meter::new();
        m.open(SimTime::ZERO, Uid(1), "a", Tier::Free, 0.25);
        m.open(SimTime::ZERO, Uid(2), "b", Tier::Standard, 0.75);
        m.finalize(SimTime::from_secs(4));
        assert_eq!(m.open_intervals(), 0);
        assert_eq!(m.billing_records().len(), 2);
        assert_eq!(m.tier_gpu_usec(Tier::Free), 1_000_000);
        assert_eq!(m.tier_gpu_usec(Tier::Standard), 3_000_000);
    }

    #[test]
    fn reconciles_against_scraped_counter() {
        let telemetry = Telemetry::enabled();
        let mut m = Meter::new();
        m.set_telemetry(telemetry.clone());
        m.open(SimTime::ZERO, Uid(1), "a", Tier::Premium, 0.5);
        m.close(SimTime::from_secs(100), Uid(1));
        let mut scraper = Scraper::new(SimDuration::from_secs(1), 64);
        scraper.force(SimTime::from_secs(100), &telemetry);
        let report = m
            .reconcile(scraper.tsdb(), SimTime::from_secs(100))
            .expect("ledger and tsdb agree");
        let premium = report.iter().find(|(t, _, _)| *t == Tier::Premium).unwrap();
        assert_eq!(premium.1, 50_000_000);
        assert_eq!(premium.1, premium.2);
    }

    #[test]
    fn reconcile_detects_divergence() {
        let telemetry = Telemetry::enabled();
        let mut m = Meter::new();
        m.set_telemetry(telemetry.clone());
        m.open(SimTime::ZERO, Uid(1), "a", Tier::Free, 1.0);
        m.close(SimTime::from_secs(10), Uid(1));
        // Out-of-band usage the ledger never saw.
        telemetry
            .counter(GPU_USAGE_COUNTER, &[("tier", "free")])
            .add(5_000_000);
        let mut scraper = Scraper::new(SimDuration::from_secs(1), 64);
        scraper.force(SimTime::from_secs(10), &telemetry);
        assert!(m.reconcile(scraper.tsdb(), SimTime::from_secs(10)).is_err());
    }

    #[test]
    fn hostile_tenant_ids_render_and_parse() {
        let mut m = Meter::new();
        let hostile = "evil\"tenant\\with\nnewlines";
        m.open(SimTime::ZERO, Uid(1), hostile, Tier::Free, 1.0);
        m.close(SimTime::from_secs(1), Uid(1));
        let text = m.prometheus_billing();
        let series = parse_prometheus_text(&text).expect("parseable exposition");
        assert_eq!(series.len(), 1);
        let id = series.keys().next().unwrap();
        assert!(id.contains("evil"));
        // The escaped value in the series id unescapes back to the
        // original hostile string.
        let escaped = id
            .split("tenant=\"")
            .nth(1)
            .unwrap()
            .split("\",tier")
            .next()
            .unwrap();
        assert_eq!(unescape_label_value(escaped).unwrap(), hostile);
    }
}
