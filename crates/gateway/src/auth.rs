//! Pluggable authentication.
//!
//! The gateway never trusts a tenant id sent in the clear: a request
//! carries a bearer token, and an [`Authenticator`] maps it to the tenant
//! identity and provisioned tier (or refuses it). Two implementations:
//!
//! - [`StaticTokenAuth`] — an explicit token table, the natural choice
//!   for tests and small fleets;
//! - [`DerivedTokenAuth`] — tokens carry the tenant id, tier tag, and an
//!   FNV-1a signature keyed by a gateway secret. Verification is O(1)
//!   with **zero per-tenant storage**, which is what lets the load
//!   generator drive millions of distinct tenants without building a
//!   million-entry credential table first.

use std::collections::HashMap;

use crate::tenant::Tier;

/// Maps bearer tokens to authenticated tenant identities.
pub trait Authenticator {
    /// The tenant id and tier behind `token`, or `None` to refuse.
    fn authenticate(&self, token: &str) -> Option<(String, Tier)>;
}

/// An explicit token table.
#[derive(Debug, Default)]
pub struct StaticTokenAuth {
    tokens: HashMap<String, (String, Tier)>,
}

impl StaticTokenAuth {
    /// An empty table (refuses everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a token (builder style).
    pub fn with_token(
        mut self,
        token: impl Into<String>,
        tenant: impl Into<String>,
        tier: Tier,
    ) -> Self {
        self.add_token(token, tenant, tier);
        self
    }

    /// Registers a token.
    pub fn add_token(&mut self, token: impl Into<String>, tenant: impl Into<String>, tier: Tier) {
        self.tokens.insert(token.into(), (tenant.into(), tier));
    }
}

impl Authenticator for StaticTokenAuth {
    fn authenticate(&self, token: &str) -> Option<(String, Tier)> {
        self.tokens.get(token).cloned()
    }
}

/// 64-bit FNV-1a over `data`, seeded with `seed`.
fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stateless signed tokens: `"<tenant>.<tier-tag>.<sig-hex>"`.
///
/// The signature binds tenant and tier to the gateway secret, so a tenant
/// can neither impersonate another nor upgrade its own tier by editing
/// the token. (FNV-1a is not a cryptographic MAC; in the simulated
/// control plane it stands in for one, with the same interface shape.)
#[derive(Debug, Clone, Copy)]
pub struct DerivedTokenAuth {
    secret: u64,
}

impl DerivedTokenAuth {
    /// An authenticator keyed by `secret`.
    pub fn new(secret: u64) -> Self {
        DerivedTokenAuth { secret }
    }

    fn sign(&self, tenant: &str, tier: Tier) -> u64 {
        let mut data = Vec::with_capacity(tenant.len() + 2);
        data.extend_from_slice(tenant.as_bytes());
        data.push(b'.');
        data.push(tier.tag() as u8);
        fnv1a(self.secret, &data)
    }

    /// Mints the valid token for a tenant — the provisioning side of the
    /// scheme (the load generator uses it to act as each tenant).
    pub fn token_for(&self, tenant: &str, tier: Tier) -> String {
        format!("{tenant}.{}.{:016x}", tier.tag(), self.sign(tenant, tier))
    }
}

impl Authenticator for DerivedTokenAuth {
    fn authenticate(&self, token: &str) -> Option<(String, Tier)> {
        // rsplitn: tenant ids may themselves contain '.', the two
        // gateway-added fields never do.
        let mut parts = token.rsplitn(3, '.');
        let sig = parts.next()?;
        let tier = Tier::from_tag(parts.next()?.chars().next()?)?;
        let tenant = parts.next()?;
        if tenant.is_empty() {
            return None;
        }
        let sig = u64::from_str_radix(sig, 16).ok()?;
        (sig == self.sign(tenant, tier)).then(|| (tenant.to_string(), tier))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_authenticates_known_tokens_only() {
        let auth = StaticTokenAuth::new().with_token("tok-1", "acme", Tier::Premium);
        assert_eq!(
            auth.authenticate("tok-1"),
            Some(("acme".to_string(), Tier::Premium))
        );
        assert_eq!(auth.authenticate("tok-2"), None);
    }

    #[test]
    fn derived_tokens_round_trip() {
        let auth = DerivedTokenAuth::new(42);
        for tier in Tier::ALL {
            let tok = auth.token_for("tenant-007", tier);
            assert_eq!(
                auth.authenticate(&tok),
                Some(("tenant-007".to_string(), tier))
            );
        }
    }

    #[test]
    fn derived_tokens_resist_tampering() {
        let auth = DerivedTokenAuth::new(42);
        let tok = auth.token_for("alice", Tier::Free);
        // Tier upgrade with the old signature.
        let upgraded = tok.replacen(".f.", ".p.", 1);
        assert_eq!(auth.authenticate(&upgraded), None);
        // Tenant swap with the old signature.
        let swapped = tok.replacen("alice", "bob", 1);
        assert_eq!(auth.authenticate(&swapped), None);
        // Wrong secret.
        assert_eq!(DerivedTokenAuth::new(43).authenticate(&tok), None);
        // Garbage.
        assert_eq!(auth.authenticate("not-a-token"), None);
        assert_eq!(auth.authenticate(""), None);
    }

    #[test]
    fn tenant_ids_containing_dots_survive() {
        let auth = DerivedTokenAuth::new(7);
        let tok = auth.token_for("org.team.user", Tier::Standard);
        assert_eq!(
            auth.authenticate(&tok),
            Some(("org.team.user".to_string(), Tier::Standard))
        );
    }
}
