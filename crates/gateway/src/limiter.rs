//! Token-bucket rate limiting on the simulated clock.
//!
//! Each tenant owns one bucket. The bucket refills lazily — no timer
//! events, just arithmetic against the DES clock at each take — so a
//! million idle tenants cost nothing per tick.
//!
//! Invariant (property-tested in `tests/properties.rs`): over any
//! interval of length `t`, a bucket admits at most
//! `burst + per_sec · t` requests. Admission never borrows from the
//! future and the level never exceeds `burst`.

use ks_sim_core::time::SimTime;

/// Bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained refill rate, tokens per simulated second.
    pub per_sec: f64,
    /// Bucket capacity: the burst an idle tenant may fire at once.
    pub burst: f64,
}

/// A lazily-refilled token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    limit: RateLimit,
    /// Tokens available; `<= limit.burst` at all times.
    level: f64,
    /// Clock of the last refill.
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket as of `now`.
    pub fn new(limit: RateLimit, now: SimTime) -> Self {
        TokenBucket {
            limit,
            level: limit.burst,
            last: now,
        }
    }

    /// Brings the level up to date with the clock.
    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.level = (self.level + self.limit.per_sec * dt).min(self.limit.burst);
        self.last = self.last.max(now);
    }

    /// Takes `cost` tokens if available. Returns whether the request is
    /// admitted; a refused take consumes nothing.
    pub fn try_take(&mut self, now: SimTime, cost: f64) -> bool {
        self.refill(now);
        if self.level + 1e-9 >= cost {
            self.level -= cost;
            true
        } else {
            false
        }
    }

    /// The current level after refilling to `now` (observability only).
    pub fn level(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.level
    }

    /// The configured limit.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Swaps in a new limit as of `now` (admission tightening/relaxing).
    /// The level first refills at the old rate up to `now`, then clamps
    /// to the new burst — tokens already accrued are never minted or
    /// inflated by the change, so the admission bound holds piecewise
    /// across reconfigurations.
    pub fn set_limit(&mut self, limit: RateLimit, now: SimTime) {
        self.refill(now);
        self.limit = limit;
        self.level = self.level.min(limit.burst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim_core::time::SimDuration;

    const LIMIT: RateLimit = RateLimit {
        per_sec: 2.0,
        burst: 4.0,
    };

    #[test]
    fn burst_then_starve_then_refill() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(LIMIT, t0);
        for _ in 0..4 {
            assert!(b.try_take(t0, 1.0));
        }
        assert!(!b.try_take(t0, 1.0), "burst exhausted");
        // 1s later: 2 tokens refilled.
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(b.try_take(t1, 1.0));
        assert!(b.try_take(t1, 1.0));
        assert!(!b.try_take(t1, 1.0));
    }

    #[test]
    fn level_caps_at_burst() {
        let mut b = TokenBucket::new(LIMIT, SimTime::ZERO);
        assert_eq!(b.level(SimTime::from_secs(3600)), LIMIT.burst);
    }

    #[test]
    fn refused_take_consumes_nothing() {
        let mut b = TokenBucket::new(LIMIT, SimTime::ZERO);
        assert!(!b.try_take(SimTime::ZERO, 5.0));
        assert_eq!(b.level(SimTime::ZERO), LIMIT.burst);
    }

    #[test]
    fn set_limit_clamps_level_and_switches_rate() {
        let t0 = SimTime::ZERO;
        let mut b = TokenBucket::new(LIMIT, t0);
        // Tighten to half the rate and a burst of 1: the full level (4)
        // clamps down to 1 — no stored credit survives the shrink.
        b.set_limit(
            RateLimit {
                per_sec: 1.0,
                burst: 1.0,
            },
            t0,
        );
        assert!(b.try_take(t0, 1.0));
        assert!(!b.try_take(t0, 1.0));
        // Refill now runs at the new rate.
        let t1 = t0 + SimDuration::from_millis(500);
        assert!(!b.try_take(t1, 1.0), "only 0.5 tokens at 1/s");
        let t2 = t0 + SimDuration::from_secs(1);
        assert!(b.try_take(t2, 1.0));
        // Relaxing back does not mint tokens: the level stays where the
        // tight period left it and grows at the restored rate.
        b.set_limit(LIMIT, t2);
        assert!(b.level(t2) < 1e-9);
        let t3 = t2 + SimDuration::from_secs(1);
        assert!((b.level(t3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let mut b = TokenBucket::new(LIMIT, SimTime::from_secs(10));
        assert!(b.try_take(SimTime::from_secs(5), 1.0));
        assert!(b.level(SimTime::from_secs(5)) <= LIMIT.burst);
    }
}
