//! Tenant identity and service tiers.
//!
//! The gateway is the only KubeShare layer that knows who a request
//! belongs to. A tenant is identified by an opaque string (its id doubles
//! as the Kubernetes namespace its sharePods live in), and every tenant
//! is provisioned into one of three service tiers that fix its priority
//! class, token-bucket rate, and admission quota.
//!
//! Per-tenant state is created lazily on first contact, so a deployment
//! with millions of provisioned tenants only pays for the ones that
//! actually talk to the gateway.

use crate::limiter::{RateLimit, TokenBucket};
use crate::quota::{Quota, QuotaAccount};
use ks_sim_core::time::SimTime;

/// Service tier of a tenant. Order matters: higher tiers carry higher
/// priority classes and win contention through preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Tier {
    /// Best-effort: lowest priority, tightest rate and quota.
    #[default]
    Free,
    /// Paid baseline.
    Standard,
    /// Business tier: preempts everything below it under contention.
    Premium,
}

impl Tier {
    /// Every tier, lowest first.
    pub const ALL: [Tier; 3] = [Tier::Free, Tier::Standard, Tier::Premium];

    /// The priority class stamped on the tier's sharePods. Gaps leave
    /// room for future tiers without renumbering.
    pub fn priority(self) -> u8 {
        match self {
            Tier::Free => 0,
            Tier::Standard => 5,
            Tier::Premium => 10,
        }
    }

    /// Metric label value (`tier` dimension).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Free => "free",
            Tier::Standard => "standard",
            Tier::Premium => "premium",
        }
    }

    /// One-character wire tag used inside derived auth tokens.
    pub fn tag(self) -> char {
        match self {
            Tier::Free => 'f',
            Tier::Standard => 's',
            Tier::Premium => 'p',
        }
    }

    /// Inverse of [`Tier::tag`].
    pub fn from_tag(tag: char) -> Option<Tier> {
        match tag {
            'f' => Some(Tier::Free),
            's' => Some(Tier::Standard),
            'p' => Some(Tier::Premium),
            _ => None,
        }
    }

    /// Default token-bucket parameters: sustained submissions per second
    /// and the burst a quiet tenant may fire at once.
    pub fn rate_limit(self) -> RateLimit {
        match self {
            Tier::Free => RateLimit {
                per_sec: 0.05,
                burst: 2.0,
            },
            Tier::Standard => RateLimit {
                per_sec: 0.2,
                burst: 4.0,
            },
            Tier::Premium => RateLimit {
                per_sec: 1.0,
                burst: 8.0,
            },
        }
    }

    /// Default admission quota: concurrently live sharePods and the sum
    /// of their fractional GPU requests.
    pub fn quota(self) -> Quota {
        match self {
            Tier::Free => Quota {
                max_inflight: 1,
                max_gpu_units: 0.5,
            },
            Tier::Standard => Quota {
                max_inflight: 4,
                max_gpu_units: 2.0,
            },
            Tier::Premium => Quota {
                max_inflight: 16,
                max_gpu_units: 8.0,
            },
        }
    }
}

/// The gateway's per-tenant state, built lazily on the first
/// authenticated request.
#[derive(Debug)]
pub struct TenantState {
    /// Provisioned tier.
    pub tier: Tier,
    /// Submission rate limiter.
    pub bucket: TokenBucket,
    /// Live resource usage counted against the tier quota.
    pub used: QuotaAccount,
    /// Requests currently parked in the admission queue.
    pub queued: u32,
    /// When the tenant first contacted the gateway (bucket birth).
    pub first_seen: SimTime,
    /// Tokens the bucket has granted, checked against the analytic
    /// window bound `burst + rate·t` by the gateway's tripwire.
    pub taken: u64,
}

impl TenantState {
    /// Fresh state with the tier's default limits, bucket full at `now`.
    pub fn new(tier: Tier, now: SimTime) -> Self {
        TenantState {
            tier,
            bucket: TokenBucket::new(tier.rate_limit(), now),
            used: QuotaAccount::default(),
            queued: 0,
            first_seen: now,
            taken: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_by_priority() {
        assert!(Tier::Premium.priority() > Tier::Standard.priority());
        assert!(Tier::Standard.priority() > Tier::Free.priority());
    }

    #[test]
    fn tags_round_trip() {
        for t in Tier::ALL {
            assert_eq!(Tier::from_tag(t.tag()), Some(t));
        }
        assert_eq!(Tier::from_tag('x'), None);
    }

    #[test]
    fn higher_tiers_get_more() {
        assert!(Tier::Premium.rate_limit().per_sec > Tier::Free.rate_limit().per_sec);
        assert!(Tier::Premium.quota().max_gpu_units > Tier::Free.quota().max_gpu_units);
    }
}
