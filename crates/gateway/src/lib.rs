//! # ks-gateway — the multi-tenant front door
//!
//! KubeShare's core (paper §4, Algorithm 1) schedules whatever it is
//! handed; it has no notion of *who* asked. This crate adds the missing
//! multi-tenant control plane in front of [`kubeshare::KubeShareSystem`]:
//!
//! ```text
//!  request(token, spec)
//!     │
//!     ▼
//!  ┌─────────┐   ┌──────────────┐   ┌──────────────┐   ┌───────────────┐
//!  │  auth    │──▶│ rate limiter │──▶│ quota gate   │──▶│  Algorithm 1  │
//!  │ token →  │   │ token bucket │   │ live-footprint│  │ (priority-    │
//!  │ tenant + │   │ per tenant   │   │ reservation; │   │  ordered batch│
//!  │ tier     │   │              │   │ else queue   │   │  drain)       │
//!  └─────────┘   └──────────────┘   └──────┬───────┘   └───────────────┘
//!      │ reject        │ reject            │ park                │
//!      ▼               ▼                   ▼                     ▼
//!   unauthenticated  rate_limited   priority admission      vGPU binding,
//!                                   queue (bounded)         metering
//! ```
//!
//! - **Identity** ([`auth`]): bearer tokens map to a tenant id and a
//!   service [`Tier`]; the tenant id doubles as the namespace its
//!   sharePods live in. [`DerivedTokenAuth`] verifies signed tokens with
//!   zero per-tenant storage, so fleets of millions of tenants cost
//!   nothing until they speak.
//! - **Rate limiting** ([`limiter`]): per-tenant token buckets bound the
//!   submission *flow* — never more than `burst + rate·t` grants in any
//!   window (property-tested, plus a live tripwire).
//! - **Quota admission** ([`quota`]): per-tenant bounds on the live
//!   *stock* (inflight sharePods, summed GPU fractions). Over-quota work
//!   parks in a bounded priority queue instead of reaching the scheduler.
//! - **Priority & preemption** ([`gateway`]): tiers carry priority
//!   classes; [`Gateway::pump`] evicts strictly-lower-priority sharePods
//!   when a higher class is starved, then drains pending work
//!   highest-class-first.
//! - **Metering & billing** ([`metering`]): GPU-seconds accrue per tenant
//!   from `SharePodRunning` to stop/preempt/terminate, roll up into
//!   billing records, and must reconcile with the TSDB-derived per-tier
//!   counters within 0.1%.
//! - **SLOs** ([`slo`]): per-tier admission-wait objectives plus
//!   zero-tolerance tripwires on the pipeline's own invariants.
//!
//! Everything is deterministic under the DES clock: same seed, same
//! admissions, same bills.

pub mod auth;
pub mod gateway;
pub mod limiter;
pub mod metering;
pub mod quota;
pub mod slo;
pub mod tenant;

pub use auth::{Authenticator, DerivedTokenAuth, StaticTokenAuth};
pub use gateway::{Gateway, GatewayConfig, GatewayStats, PumpReport, RejectReason, SubmitOutcome};
pub use limiter::{RateLimit, TokenBucket};
pub use metering::{BillingRecord, Meter, GPU_USAGE_COUNTER};
pub use quota::{Quota, QuotaAccount};
pub use slo::gateway_catalogue;
pub use tenant::{TenantState, Tier};

#[cfg(test)]
mod tests {
    use super::*;
    use ks_cluster::api::pod::PodSpec;
    use ks_cluster::api::{NodeConfig, ResourceList};
    use ks_cluster::device_plugin::UnitAssignPolicy;
    use ks_cluster::latency::LatencyModel;
    use ks_cluster::scheduler::ScorePolicy;
    use ks_cluster::sim::{ClusterConfig, GpuPluginKind};
    use ks_sim_core::time::{SimDuration, SimTime};
    use ks_vgpu::ShareSpec;
    use kubeshare::sharepod::{SharePodPhase, SharePodSpec};
    use kubeshare::system::{KsConfig, KsEmit, KubeShareSystem, PoolPolicy};

    fn spec(request: f64) -> SharePodSpec {
        SharePodSpec::new(
            PodSpec::new("tf:2.1", ResourceList::cpu_mem(1000, 1 << 30)),
            ShareSpec::new(request, 1.0, 0.25).unwrap(),
        )
    }

    /// Runs the wrapped system until quiescent, routing events back
    /// through the gateway so metering sees every notice.
    fn settle(gw: &mut Gateway<DerivedTokenAuth>, now: &mut SimTime, out: &mut KsEmit) {
        let mut notices = Vec::new();
        let mut guard = 0;
        while !out.is_empty() {
            let idx = out
                .iter()
                .enumerate()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(i, _)| i)
                .unwrap();
            let (at, ev) = out.remove(idx);
            *now = at.max(*now);
            gw.handle(*now, ev, out, &mut notices);
            guard += 1;
            assert!(guard < 100_000, "event storm");
        }
    }

    fn gw_with_gpus(gpus: u32) -> (Gateway<DerivedTokenAuth>, KsEmit) {
        let cluster_cfg = ClusterConfig {
            nodes: vec![NodeConfig {
                name: "node-0".to_string(),
                cpu_millis: 36_000,
                memory_bytes: 244 << 30,
                gpus,
                gpu_memory_bytes: 16 << 30,
            }],
            latency: LatencyModel::default(),
            gpu_plugin: GpuPluginKind::WholeDevice,
            assign_policy: UnitAssignPolicy::Sequential,
            score: ScorePolicy::LeastAllocated,
        };
        let ks_cfg = KsConfig {
            // Preempted capacity stays warm for the preemptor.
            pool_policy: PoolPolicy::Reservation { max_idle: 64 },
            ..KsConfig::default()
        };
        let system = KubeShareSystem::new(cluster_cfg, ks_cfg);
        let mut gw = Gateway::new(system, DerivedTokenAuth::new(7), GatewayConfig::default());
        gw.set_telemetry(ks_telemetry::Telemetry::enabled());
        (gw, Vec::new())
    }

    #[test]
    fn pipeline_rejects_then_admits_then_meters() {
        let (mut gw, mut out) = gw_with_gpus(2);
        let auth = DerivedTokenAuth::new(7);
        let mut now = SimTime::ZERO;

        // Bad token refused at the first gate.
        assert_eq!(
            gw.submit(now, "garbage", "sp-x", spec(0.5), &mut out),
            SubmitOutcome::Rejected {
                reason: RejectReason::Unauthenticated
            }
        );

        // A premium tenant admits straight through.
        let tok = auth.token_for("acme", Tier::Premium);
        let SubmitOutcome::Admitted { sp } = gw.submit(now, &tok, "sp-1", spec(0.5), &mut out)
        else {
            panic!("premium within quota admits");
        };
        settle(&mut gw, &mut now, &mut out);
        let mut notices = Vec::new();
        gw.pump(now, &mut out, &mut notices);
        settle(&mut gw, &mut now, &mut out);
        assert_eq!(
            gw.system().sharepod(sp).unwrap().status.phase,
            SharePodPhase::Running
        );
        assert_eq!(
            gw.system().sharepod(sp).unwrap().meta.namespace,
            "acme",
            "sharePods live in the tenant namespace"
        );
        assert!(gw.meter().open_intervals() == 1, "metering started");
        assert!(gw.conservation_holds());
    }

    #[test]
    fn free_tier_rate_limit_kicks_in_at_burst() {
        let (mut gw, mut out) = gw_with_gpus(8);
        let auth = DerivedTokenAuth::new(7);
        let tok = auth.token_for("freeloader", Tier::Free);
        let now = SimTime::ZERO;
        // Free burst is 2: the first two pass the bucket (one admits, one
        // parks on quota), the third is rate-limited.
        let a = gw.submit(now, &tok, "sp-1", spec(0.4), &mut out);
        let b = gw.submit(now, &tok, "sp-2", spec(0.4), &mut out);
        let c = gw.submit(now, &tok, "sp-3", spec(0.4), &mut out);
        assert!(matches!(a, SubmitOutcome::Admitted { .. }));
        assert!(
            matches!(b, SubmitOutcome::Queued { .. }),
            "over quota parks"
        );
        assert_eq!(
            c,
            SubmitOutcome::Rejected {
                reason: RejectReason::RateLimited
            }
        );
        assert!(gw.conservation_holds());
    }

    #[test]
    fn queued_request_readmits_after_release() {
        let (mut gw, mut out) = gw_with_gpus(4);
        let auth = DerivedTokenAuth::new(7);
        let tok = auth.token_for("acme", Tier::Free);
        let mut now = SimTime::ZERO;

        let SubmitOutcome::Admitted { sp } = gw.submit(now, &tok, "sp-1", spec(0.5), &mut out)
        else {
            panic!("first admits");
        };
        let SubmitOutcome::Queued { .. } = gw.submit(now, &tok, "sp-2", spec(0.5), &mut out) else {
            panic!("second parks on the inflight cap");
        };
        settle(&mut gw, &mut now, &mut out);
        let mut notices = Vec::new();
        gw.pump(now, &mut out, &mut notices);
        settle(&mut gw, &mut now, &mut out);
        // The meter opened somewhere in (0, startup]: bound, don't pin.
        let startup = now.as_secs_f64();

        // Finishing the first frees the quota; the next pump re-admits.
        now += SimDuration::from_secs(30);
        gw.delete(now, sp, &mut out, &mut notices);
        settle(&mut gw, &mut now, &mut out);
        let report = gw.pump(now, &mut out, &mut notices);
        assert_eq!(report.readmitted, 1);
        settle(&mut gw, &mut now, &mut out);
        assert_eq!(gw.queue_len(), 0);
        assert!(gw.conservation_holds());
        assert_eq!(gw.stats().admitted_from_queue, 1);

        // The finished sharePod was metered: 0.5 GPU × (30 s + the slice
        // of startup latency it was already running for).
        let recs = gw.meter().billing_records();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].gpu_seconds >= 15.0 - 1e-6);
        assert!(recs[0].gpu_seconds <= 15.0 + 0.5 * startup + 1e-6);
    }

    #[test]
    fn premium_preempts_free_under_contention() {
        // One GPU, fully held by a free-tier sharePod.
        let (mut gw, mut out) = gw_with_gpus(1);
        let auth = DerivedTokenAuth::new(7);
        let free_tok = auth.token_for("hobbyist", Tier::Free);
        let prem_tok = auth.token_for("bigcorp", Tier::Premium);
        let mut now = SimTime::ZERO;
        let mut notices = Vec::new();

        let SubmitOutcome::Admitted { sp: free_sp } =
            gw.submit(now, &free_tok, "sp-free", spec(0.5), &mut out)
        else {
            panic!("free admits on the empty cluster");
        };
        settle(&mut gw, &mut now, &mut out);
        gw.pump(now, &mut out, &mut notices);
        settle(&mut gw, &mut now, &mut out);
        assert_eq!(
            gw.system().sharepod(free_sp).unwrap().status.phase,
            SharePodPhase::Running
        );

        // Premium wants more than what's left of the device.
        now += SimDuration::from_secs(10);
        let SubmitOutcome::Admitted { sp: prem_sp } =
            gw.submit(now, &prem_tok, "sp-prem", spec(0.8), &mut out)
        else {
            panic!("premium within quota admits");
        };
        settle(&mut gw, &mut now, &mut out);
        let report = gw.pump(now, &mut out, &mut notices);
        assert_eq!(report.preempted, 1, "the free sharePod is evicted");
        settle(&mut gw, &mut now, &mut out);
        // Let retries / anchor churn settle through a few pumps.
        for _ in 0..5 {
            now += SimDuration::from_secs(10);
            gw.pump(now, &mut out, &mut notices);
            settle(&mut gw, &mut now, &mut out);
        }
        assert_eq!(
            gw.system().sharepod(prem_sp).unwrap().status.phase,
            SharePodPhase::Running,
            "premium runs after preemption"
        );
        assert_ne!(
            gw.system().sharepod(free_sp).unwrap().status.phase,
            SharePodPhase::Running,
            "the single GPU cannot hold both"
        );
        assert_eq!(gw.stats().preemptions, 1);

        // The victim's meter closed at eviction; only its pre-eviction
        // usage is billed: at least the 10 contended seconds, at most its
        // whole lifetime, at 0.5 GPU.
        let hobby = gw
            .meter()
            .billing_records()
            .into_iter()
            .find(|r| r.tenant == "hobbyist")
            .expect("victim billed for its run");
        assert!(hobby.gpu_seconds >= 5.0 - 1e-6);
        assert!(hobby.gpu_seconds <= 0.5 * now.as_secs_f64() + 1e-6);
        assert!(gw.conservation_holds());
    }
}
