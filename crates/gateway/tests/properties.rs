//! Property tests for the gateway's admission machinery.
//!
//! Two invariants the front door stakes its isolation guarantees on:
//!
//! 1. **Rate-limit window bound** — a token bucket never admits more than
//!    `burst + per_sec · t` requests inside *any* time window of length
//!    `t`, no matter how adversarially the takes are spaced.
//! 2. **Quota conservation** — every submitted request is accounted for
//!    exactly once: `submitted == admitted + rejected + queued`, under
//!    arbitrary interleavings of submission, pumping, event settlement,
//!    and deletion — and under genuinely concurrent submission from
//!    multiple threads.

use ks_cluster::api::pod::PodSpec;
use ks_cluster::api::{NodeConfig, ResourceList, Uid};
use ks_cluster::device_plugin::UnitAssignPolicy;
use ks_cluster::latency::LatencyModel;
use ks_cluster::scheduler::ScorePolicy;
use ks_cluster::sim::{ClusterConfig, GpuPluginKind};
use ks_gateway::{
    DerivedTokenAuth, Gateway, GatewayConfig, RateLimit, SubmitOutcome, Tier, TokenBucket,
};
use ks_sim_core::prelude::*;
use ks_vgpu::ShareSpec;
use kubeshare::sharepod::SharePodSpec;
use kubeshare::system::{KsConfig, KsEmit, KsNotice, KubeShareSystem, PoolPolicy};
use proptest::prelude::*;

fn spec(request: f64) -> SharePodSpec {
    SharePodSpec::new(
        PodSpec::new("tf:2.1", ResourceList::cpu_mem(1000, 1 << 30)),
        ShareSpec::new(request, 1.0, 0.25).unwrap(),
    )
}

fn gw_with_gpus(gpus: u32) -> Gateway<DerivedTokenAuth> {
    let cluster = ClusterConfig {
        nodes: vec![NodeConfig {
            name: "node-0".into(),
            cpu_millis: 256_000,
            memory_bytes: 1 << 40,
            gpus,
            gpu_memory_bytes: 16 << 30,
        }],
        latency: LatencyModel::default(),
        gpu_plugin: GpuPluginKind::WholeDevice,
        assign_policy: UnitAssignPolicy::Sequential,
        score: ScorePolicy::LeastAllocated,
    };
    let ks_cfg = KsConfig {
        pool_policy: PoolPolicy::Reservation {
            max_idle: gpus as usize,
        },
        ..KsConfig::default()
    };
    Gateway::new(
        KubeShareSystem::new(cluster, ks_cfg),
        DerivedTokenAuth::new(7),
        GatewayConfig::default(),
    )
}

/// Drains every emitted event through the gateway in time order.
fn settle(gw: &mut Gateway<DerivedTokenAuth>, now: &mut SimTime, out: &mut KsEmit) {
    let mut notices: Vec<KsNotice> = Vec::new();
    let mut guard = 0;
    while !out.is_empty() {
        let i = out
            .iter()
            .enumerate()
            .min_by_key(|(_, (t, _))| *t)
            .map(|(i, _)| i)
            .expect("non-empty");
        let (at, ev) = out.swap_remove(i);
        *now = (*now).max(at);
        gw.handle(*now, ev, out, &mut notices);
        guard += 1;
        assert!(guard < 100_000, "event storm");
    }
}

proptest! {
    /// Over ANY window `[t_i, t_j]`, the number of admitted takes is at
    /// most `burst + per_sec · (t_j - t_i)` (one extra grant allowed at
    /// the closed left edge: the bound counts the bucket level at entry).
    #[test]
    fn bucket_never_exceeds_window_bound(
        per_sec in 0.01f64..4.0,
        burst in 1.0f64..16.0,
        // Inter-arrival gaps in milliseconds; 0 = hammering the same instant.
        gaps in proptest::collection::vec(0u64..5_000, 1..120),
    ) {
        let limit = RateLimit { per_sec, burst };
        let mut bucket = TokenBucket::new(limit, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut granted: Vec<SimTime> = Vec::new();
        for gap in gaps {
            now += SimDuration::from_millis(gap);
            if bucket.try_take(now, 1.0) {
                granted.push(now);
            }
        }
        for (i, &t0) in granted.iter().enumerate() {
            for &t1 in &granted[i..] {
                let inside = granted
                    .iter()
                    .filter(|&&t| t >= t0 && t <= t1)
                    .count() as f64;
                let bound = burst + per_sec * t1.saturating_since(t0).as_secs_f64();
                prop_assert!(
                    inside <= bound + 1.0 + 1e-6,
                    "window [{t0:?}, {t1:?}] admitted {inside}, bound {bound}"
                );
            }
        }
    }

    /// Arbitrary interleavings of submit / pump / settle / delete across
    /// several tenants and tiers never lose or double-count a request:
    /// `submitted == admitted + rejected + queued` after every step.
    #[test]
    fn quota_conservation_under_interleaving(
        ops in proptest::collection::vec((0u8..6, 0u8..4, 0u64..2_000), 1..60),
    ) {
        let mut gw = gw_with_gpus(2);
        let auth = DerivedTokenAuth::new(7);
        let tenants = ["acme", "globex", "initech", "umbrella"];
        let tiers = [Tier::Free, Tier::Standard, Tier::Premium, Tier::Free];
        let mut now = SimTime::ZERO;
        let mut out: KsEmit = Vec::new();
        let mut notices: Vec<KsNotice> = Vec::new();
        let mut admitted: Vec<Uid> = Vec::new();
        let mut n = 0u32;
        for (op, who, advance_ms) in ops {
            now += SimDuration::from_millis(advance_ms);
            let who = who as usize;
            match op {
                // Submit from one of the tenants (most common op).
                0..=2 => {
                    let tok = auth.token_for(tenants[who], tiers[who]);
                    n += 1;
                    let outcome =
                        gw.submit(now, &tok, format!("sp-{n}"), spec(0.5), &mut out);
                    if let SubmitOutcome::Admitted { sp } = outcome {
                        admitted.push(sp);
                    }
                }
                // A bad token: must count as rejected, not vanish.
                3 => {
                    let _ = gw.submit(now, "not-a-token", "bad", spec(0.5), &mut out);
                }
                4 => {
                    gw.pump(now, &mut out, &mut notices);
                }
                _ => {
                    if let Some(sp) = admitted.pop() {
                        gw.delete(now, sp, &mut out, &mut notices);
                    } else {
                        settle(&mut gw, &mut now, &mut out);
                    }
                }
            }
            prop_assert!(
                gw.conservation_holds(),
                "conservation broke mid-stream: {:?} + queue {}",
                gw.stats(),
                gw.queue_len()
            );
        }
        settle(&mut gw, &mut now, &mut out);
        let mut report = gw.pump(now, &mut out, &mut notices);
        settle(&mut gw, &mut now, &mut out);
        // Pump until quiescent so queued work lands in a terminal count
        // or stays queued — conservation must hold in either resting state.
        let mut rounds = 0;
        while report.readmitted > 0 && rounds < 100 {
            report = gw.pump(now, &mut out, &mut notices);
            settle(&mut gw, &mut now, &mut out);
            rounds += 1;
        }
        prop_assert!(gw.conservation_holds());
        let s = gw.stats();
        prop_assert_eq!(
            s.submitted,
            s.admitted() + s.rejected() + gw.queue_len() as u64
        );
    }
}

/// Conservation under *actual* concurrency: several threads hammer one
/// gateway behind a mutex with interleaved submissions; whatever order
/// the OS schedules, no request is lost or double-counted.
#[test]
fn quota_conservation_under_concurrent_submission() {
    use std::sync::{Arc, Mutex};
    let gw = Arc::new(Mutex::new(gw_with_gpus(4)));
    let auth = DerivedTokenAuth::new(7);
    let threads = 4;
    let per_thread = 200u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let gw = Arc::clone(&gw);
            let tok = auth.token_for(&format!("tenant-{t}"), Tier::ALL[(t % 3) as usize]);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // Each thread walks its own clock; interleaving across
                    // threads is whatever the scheduler produces.
                    let now = SimTime::from_millis(i * 37 + t * 11);
                    let mut out: KsEmit = Vec::new();
                    let mut g = gw.lock().unwrap();
                    let _ = g.submit(now, &tok, format!("t{t}-sp{i}"), spec(0.25), &mut out);
                    // Settle this submission's events while holding the
                    // lock so the system stays internally consistent.
                    let mut now = now;
                    let mut notices: Vec<KsNotice> = Vec::new();
                    while let Some(i) = out
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (t, _))| *t)
                        .map(|(i, _)| i)
                    {
                        let (at, ev) = out.swap_remove(i);
                        now = now.max(at);
                        g.handle(now, ev, &mut out, &mut notices);
                    }
                    assert!(g.conservation_holds());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let g = gw.lock().unwrap();
    let s = g.stats();
    assert_eq!(s.submitted, threads * per_thread);
    assert_eq!(
        s.submitted,
        s.admitted() + s.rejected() + g.queue_len() as u64,
        "concurrent submission lost requests: {s:?}"
    );
}

/// Tightening admission mid-flight shrinks the effective rate limit
/// without ever tripping the analytic window-bound tripwire
/// (`ks_gw_limit_violations_total`): `set_admission_scale` re-baselines
/// each tenant's bound at the moment the limit changes, so the bound
/// holds piecewise. Relaxing back restores the configured behavior
/// without minting stored credit.
#[test]
fn admission_scale_tightens_without_tripping_violation_tripwire() {
    let mut gw = gw_with_gpus(2);
    let telemetry = ks_telemetry::Telemetry::enabled();
    gw.set_telemetry(telemetry.clone());
    let auth = DerivedTokenAuth::new(7);
    let tok = auth.token_for("acme", Tier::Premium);
    let mut out: KsEmit = Vec::new();

    // A fixed hammering pattern: 12 submissions 100ms apart. Premium is
    // 1.0/s with burst 8, so at full scale most pass the rate check.
    let hammer = |gw: &mut Gateway<DerivedTokenAuth>, start: SimTime, out: &mut KsEmit| {
        let mut now = start;
        for i in 0..12 {
            let name = format!("sp-{}-{i}", start.as_micros());
            let _ = gw.submit(now, &tok, name, spec(0.25), out);
            now += SimDuration::from_millis(100);
        }
        settle(gw, &mut now, out);
        now
    };

    let mut now = hammer(&mut gw, SimTime::from_secs(10), &mut out);
    let base_rejected = gw.stats().rejected_rate;
    assert!(
        base_rejected <= 4,
        "full-scale Premium should absorb most of the burst: {base_rejected}"
    );

    // Tighten to a quarter: per_sec 0.25, burst 2. The same pattern must
    // now bounce far more submissions off the rate limiter.
    now += SimDuration::from_secs(60); // let the bucket refill fully first
    assert!(gw.set_admission_scale(now, 0.25));
    assert!(!gw.set_admission_scale(now, 0.25), "same scale is a no-op");
    assert_eq!(gw.admission_scale(), 0.25);
    let end = hammer(&mut gw, now, &mut out);
    let tight_rejected = gw.stats().rejected_rate - base_rejected;
    assert!(
        tight_rejected >= 8,
        "quarter-scale should reject the bulk of the burst: {tight_rejected}"
    );
    assert!(tight_rejected > base_rejected);

    // The tripwire never fired: the per-tenant bound was re-baselined at
    // the reconfiguration instant, so tightening is not a "violation".
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counter_value("ks_gw_limit_violations_total", &[])
            .unwrap_or(0),
        0,
        "admission rescale must not trip the window-bound tripwire"
    );
    assert_eq!(
        snap.counter_value("ks_gw_admission_rescale_total", &[]),
        Some(1)
    );

    // Relax back to full scale: after a refill interval the tenant gets
    // its configured burst again — but no tokens were minted at the
    // relax instant itself.
    let relax_at = end + SimDuration::from_secs(1);
    assert!(gw.set_admission_scale(relax_at, 1.0));
    let mut now = relax_at + SimDuration::from_secs(20); // refill to full burst (8)
    let before = gw.stats().rejected_rate;
    for i in 0..6 {
        let _ = gw.submit(now, &tok, format!("post-{i}"), spec(0.25), &mut out);
    }
    settle(&mut gw, &mut now, &mut out);
    assert_eq!(
        gw.stats().rejected_rate,
        before,
        "restored burst of 8 admits a 6-wide salvo at one instant"
    );
    assert_eq!(
        telemetry
            .snapshot()
            .counter_value("ks_gw_limit_violations_total", &[])
            .unwrap_or(0),
        0
    );
    assert!(gw.conservation_holds());
}
