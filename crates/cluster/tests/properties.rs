//! Property-based tests for the cluster control plane: resource accounting
//! must be conserved under arbitrary submit/delete interleavings.

use ks_cluster::api::pod::PodSpec;
use ks_cluster::api::{NodeConfig, ResourceList, Uid, NVIDIA_GPU};
use ks_cluster::device_plugin::UnitAssignPolicy;
use ks_cluster::latency::LatencyModel;
use ks_cluster::scheduler::ScorePolicy;
use ks_cluster::sim::{ClusterConfig, ClusterEvent, ClusterNotice, ClusterSim, GpuPluginKind};
use ks_sim_core::prelude::*;
use proptest::prelude::*;

struct World {
    cluster: ClusterSim,
    running: Vec<Uid>,
    deleted: usize,
}

struct Ev(ClusterEvent);

impl SimEvent<World> for Ev {
    fn fire(self, now: SimTime, w: &mut World, q: &mut EventQueue<Self>) {
        let mut out = Vec::new();
        let mut notes = Vec::new();
        w.cluster.handle(now, self.0, &mut out, &mut notes);
        for n in notes {
            match n {
                ClusterNotice::PodRunning { pod } => w.running.push(pod),
                ClusterNotice::PodDeleted { .. } => w.deleted += 1,
                _ => {}
            }
        }
        for (at, e) in out {
            q.schedule_at(at, Ev(e));
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Submit a pod with (cpu_millis, gpus).
    Submit(u64, u64),
    /// Delete the i-th currently running pod (modulo the live count).
    DeleteRunning(usize),
    /// Let the simulation advance this many seconds.
    Advance(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (100u64..4000, 0u64..3).prop_map(|(c, g)| Op::Submit(c, g)),
        (0usize..8).prop_map(Op::DeleteRunning),
        (1u64..20).prop_map(Op::Advance),
    ]
}

fn config() -> ClusterConfig {
    ClusterConfig {
        nodes: (0..2)
            .map(|i| NodeConfig {
                name: format!("n{i}"),
                cpu_millis: 16_000,
                memory_bytes: 64 << 30,
                gpus: 2,
                gpu_memory_bytes: 16 << 30,
            })
            .collect(),
        latency: LatencyModel::default(),
        gpu_plugin: GpuPluginKind::WholeDevice,
        assign_policy: UnitAssignPolicy::Sequential,
        score: ScorePolicy::LeastAllocated,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the interleaving: free resources never exceed allocatable,
    /// never go negative (checked_sub would panic), and after deleting
    /// everything the cluster returns to full capacity.
    #[test]
    fn accounting_is_conserved(ops in proptest::collection::vec(op(), 1..60)) {
        let mut eng = Engine::new(World {
            cluster: ClusterSim::new(config()),
            running: Vec::new(),
            deleted: 0,
        });
        let mut submitted = Vec::new();
        let mut horizon = SimTime::ZERO;
        for o in &ops {
            let now = eng.now().max(horizon);
            match o {
                Op::Submit(cpu, gpus) => {
                    let mut requests = ResourceList::cpu_mem(*cpu, 1 << 30);
                    if *gpus > 0 {
                        requests = requests.with_extended(NVIDIA_GPU, *gpus);
                    }
                    let mut out = Vec::new();
                    let uid = eng.world.cluster.submit_pod(
                        now,
                        format!("p{}", submitted.len()),
                        PodSpec::new("img", requests),
                        &mut out,
                    );
                    submitted.push(uid);
                    for (at, e) in out {
                        eng.queue.schedule_at(at, Ev(e));
                    }
                }
                Op::DeleteRunning(i) => {
                    if !eng.world.running.is_empty() {
                        let idx = i % eng.world.running.len();
                        let uid = eng.world.running.remove(idx);
                        let mut out = Vec::new();
                        let mut notes = Vec::new();
                        eng.world.cluster.delete_pod(now, uid, &mut out, &mut notes);
                        for (at, e) in out {
                            eng.queue.schedule_at(at, Ev(e));
                        }
                    }
                }
                Op::Advance(secs) => {
                    horizon = now + SimDuration::from_secs(*secs);
                    eng.run_until(horizon);
                }
            }
            // Invariant: free fits inside allocatable on every node.
            for name in eng.world.cluster.node_names() {
                let free = eng.world.cluster.node_free(&name).unwrap();
                prop_assert!(free.cpu_millis <= 16_000);
                prop_assert!(free.extended_count(NVIDIA_GPU) <= 2);
            }
        }
        // Drain all pending control-plane work, then delete everything.
        eng.run_to_completion(1_000_000);
        let now = eng.now();
        for &uid in &submitted {
            let mut out = Vec::new();
            let mut notes = Vec::new();
            eng.world.cluster.delete_pod(now, uid, &mut out, &mut notes);
            for (at, e) in out {
                eng.queue.schedule_at(at, Ev(e));
            }
        }
        eng.run_to_completion(1_000_000);
        for name in eng.world.cluster.node_names() {
            let free = eng.world.cluster.node_free(&name).unwrap();
            prop_assert_eq!(free.cpu_millis, 16_000, "cpu restored on {}", name);
            prop_assert_eq!(free.extended_count(NVIDIA_GPU), 2, "gpus restored on {}", name);
        }
    }

    /// GPU exclusivity: at no sampled instant do more pods run than there
    /// are GPUs, and no two running pods share a device UUID.
    #[test]
    fn whole_device_plugin_is_exclusive(n_pods in 1usize..12) {
        let mut eng = Engine::new(World {
            cluster: ClusterSim::new(config()),
            running: Vec::new(),
            deleted: 0,
        });
        let mut out = Vec::new();
        for i in 0..n_pods {
            eng.world.cluster.submit_pod(
                SimTime::ZERO,
                format!("p{i}"),
                PodSpec::new(
                    "img",
                    ResourceList::cpu_mem(100, 1 << 20).with_extended(NVIDIA_GPU, 1),
                ),
                &mut out,
            );
        }
        for (at, e) in out {
            eng.queue.schedule_at(at, Ev(e));
        }
        eng.run_to_completion(1_000_000);
        let running = &eng.world.running;
        prop_assert!(running.len() <= 4, "only 4 GPUs exist");
        let mut uuids: Vec<String> = running
            .iter()
            .map(|&u| {
                eng.world
                    .cluster
                    .pod(u)
                    .unwrap()
                    .visible_devices()
                    .unwrap()
                    .to_string()
            })
            .collect();
        let before = uuids.len();
        uuids.sort();
        uuids.dedup();
        prop_assert_eq!(uuids.len(), before, "two pods share a GPU");
    }
}
